"""MetricsRegistry semantics: instruments, snapshots, Prometheus exposition."""

from __future__ import annotations

import json
import math
import re
import threading

import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
)


class TestCounter:
    def test_inc_and_value_per_label_set(self):
        counter = Counter("c")
        counter.inc(backend="a")
        counter.inc(2, backend="a")
        counter.inc(backend="b")
        assert counter.value(backend="a") == 3
        assert counter.value(backend="b") == 1
        assert counter.value(backend="missing") == 0
        assert counter.total() == 4

    def test_label_order_is_irrelevant(self):
        counter = Counter("c")
        counter.inc(x="1", y="2")
        assert counter.value(y="2", x="1") == 1

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_concurrent_increments_exact(self):
        counter = Counter("c")

        def hammer():
            for _ in range(500):
                counter.inc(backend="x")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(backend="x") == 4000


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g")
        gauge.set(5, pool="p")
        gauge.inc(pool="p")
        gauge.dec(2, pool="p")
        assert gauge.value(pool="p") == 4


class TestHistogram:
    def test_count_sum_and_bucketing(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 3
        assert histogram.sum() == pytest.approx(5.55)
        ((_, (counts, count, total)),) = histogram.series()
        assert counts == [1, 1]  # 5.0 is over the top finite bucket
        assert count == 3

    def test_buckets_are_sorted(self):
        histogram = Histogram("h", buckets=(1.0, 0.1))
        assert histogram.buckets == (0.1, 1.0)


class TestRegistry:
    def test_idempotent_creation_returns_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("requests", "help")
        again = registry.counter("requests")
        assert first is again

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("m")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.histogram("m")

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("c", "a counter").inc(backend="b")
        registry.gauge("g").set(2.5)
        registry.histogram("h", buckets=(0.1, 1.0)).observe(0.05)
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must serialize as-is
        assert snapshot["c"]["type"] == "counter"
        assert snapshot["c"]["series"] == [
            {"labels": {"backend": "b"}, "value": 1.0}
        ]
        assert snapshot["h"]["series"][0]["count"] == 1
        assert snapshot["h"]["series"][0]["buckets"]["0.1"] == 1


#: One Prometheus sample line: name, optional {labels}, numeric value.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})?"
    r" (\+Inf|-?[0-9.e+-]+)$"
)


class TestPrometheusExposition:
    def make_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "Executions.").inc(
            3, backend="sqlite-memory"
        )
        registry.gauge("repro_pool_size", "Members.").set(2, backend="duckdb")
        histogram = registry.histogram(
            "repro_query_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value, backend="duckdb")
        return registry

    def test_every_line_parses(self):
        text = self.make_registry().to_prometheus()
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"

    def test_type_lines_precede_samples(self):
        lines = self.make_registry().to_prometheus().splitlines()
        seen_types = {}
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                seen_types[name] = kind
        assert seen_types == {
            "repro_pool_size": "gauge",
            "repro_queries_total": "counter",
            "repro_query_seconds": "histogram",
        }

    def test_histogram_buckets_cumulative_with_inf(self):
        text = self.make_registry().to_prometheus()
        buckets = {
            match.group(1): float(match.group(2))
            for match in re.finditer(
                r'repro_query_seconds_bucket\{backend="duckdb",le="([^"]+)"\} (\d+)',
                text,
            )
        }
        assert buckets == {"0.1": 1, "1": 2, "+Inf": 3}
        assert 'repro_query_seconds_count{backend="duckdb"} 3' in text
        sum_line = next(
            line
            for line in text.splitlines()
            if line.startswith("repro_query_seconds_sum")
        )
        assert float(sum_line.rsplit(" ", 1)[1]) == pytest.approx(5.55)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(q='say "hi"\nplease\\now')
        text = registry.to_prometheus()
        assert '\\"hi\\"' in text
        assert "\\n" in text
        assert "\\\\now" in text

    def test_infinite_value_renders_plus_inf(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(math.inf)
        assert "g +Inf" in registry.to_prometheus()

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_seconds=0.1)
        assert not log.record("fast", "b", 0.05)
        assert log.record("slow", "b", 0.2, rows=4)
        (entry,) = log.entries()
        assert entry.cypher_text == "slow"
        assert entry.attributes == {"rows": 4}
        assert entry.to_dict()["ms"] == 200.0

    def test_capacity_bounds_ring(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        for index in range(4):
            log.record(f"q{index}", "b", 1.0)
        assert [entry.cypher_text for entry in log.entries()] == ["q2", "q3"]

    def test_clear(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.record("q", "b", 1.0)
        log.clear()
        assert log.entries() == ()

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match=">= 1"):
            SlowQueryLog(capacity=0)
