"""explain_query / render_span_tree: the ``repro explain`` seam."""

from __future__ import annotations

import json

import pytest

from repro.backends.service import GraphitiService
from repro.benchmarks.universes import SOCIAL
from repro.observability.explain import ExplainReport, explain_query, render_span_tree
from repro.observability.tracing import NOOP_TRACER, span_from_dict

VAR_LENGTH = "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN b.uname"
SCAN = "MATCH (a:USER) RETURN a.uname"


@pytest.fixture()
def service():
    with GraphitiService(SOCIAL.graph_schema, pool_size=2) as svc:
        svc.load_mock(30, seed=7)
        yield svc


class TestExplainQuery:
    def test_trace_has_the_full_lifecycle(self, service):
        report = explain_query(service, VAR_LENGTH)
        trace = report.trace
        assert trace.name == "query"
        prepare = trace.find("query.prepare")
        assert prepare is not None
        assert prepare.find("cache.lookup") is not None
        # First-ever preparation: parse/transpile/planner all ran.
        for stage in ("query.parse", "query.transpile", "optimize.planner"):
            assert prepare.find(stage) is not None, stage
        assert trace.find("pool.checkout") is not None
        execute = trace.find("execute")
        assert execute is not None
        assert execute.attributes["rows"] == report.rows

    def test_cache_hit_run_still_reports_the_plan(self, service):
        first = explain_query(service, VAR_LENGTH)
        second = explain_query(service, VAR_LENGTH)
        # Second run hits the in-memory cache: no parse/transpile spans...
        prepare = second.trace.find("query.prepare")
        assert prepare.attributes["cached"] == "memory"
        assert prepare.find("query.parse") is None
        # ...but the plan travelled with the cached PreparedQuery.
        assert second.plan is not None
        assert second.plan.to_dict() == first.plan.to_dict()
        assert any(t.choice in {"recursive", "unrolled"} for t in second.plan.traversals)

    def test_tracer_swap_is_restored(self, service):
        assert service.tracer is NOOP_TRACER
        explain_query(service, SCAN)
        assert service.tracer is NOOP_TRACER

    def test_tracer_swap_restored_on_error(self, service):
        before = service.tracer
        with pytest.raises(Exception):
            explain_query(service, "MATCH (x:NOPE) RETURN x.name")
        assert service.tracer is before

    def test_explicit_backend_and_opt_level(self, service):
        report = explain_query(service, SCAN, backend="sqlite-memory", opt_level=0)
        assert report.backend == "sqlite-memory"
        assert report.opt_level == 0
        assert report.trace.attributes["backend"] == "sqlite-memory"

    def test_json_document_round_trips(self, service):
        report = explain_query(service, VAR_LENGTH)
        document = report.to_dict()
        decoded = json.loads(json.dumps(document))
        assert decoded["cypher"] == VAR_LENGTH
        assert decoded["rows"] == report.rows
        assert decoded["plan"]["traversals"]
        rebuilt = span_from_dict(decoded["trace"])
        assert [s.name for s in rebuilt.walk()] == [
            s.name for s in report.trace.walk()
        ]


class TestRendering:
    def test_render_span_tree_shows_stages_and_timings(self, service):
        report = explain_query(service, VAR_LENGTH)
        lines = render_span_tree(report.trace)
        assert lines[0].startswith("query (")
        assert "ms)" in lines[0]
        text = "\n".join(lines)
        assert "pool.checkout" in text
        assert "execute" in text
        # Tree glyphs: every non-root line is branch-prefixed.
        for line in lines[1:]:
            assert "├─ " in line or "└─ " in line

    def test_verbose_attributes_hidden_from_tree(self, service):
        report = explain_query(service, VAR_LENGTH)
        text = "\n".join(render_span_tree(report.trace))
        assert "cypher=" not in text
        assert "sql=" not in text
        assert "backend=" in text

    def test_report_render_sections(self, service):
        report = explain_query(service, VAR_LENGTH)
        text = "\n".join(report.render())
        assert "== trace" in text
        assert "== plan ==" in text
        assert "traversal" in text
        assert "== sql ==" in text
        assert f"== result: {report.rows} row(s) ==" in text

    def test_render_can_suppress_sql(self, service):
        report = explain_query(service, SCAN)
        text = "\n".join(report.render(show_sql=False))
        assert "== sql ==" not in text
        assert "SELECT" not in text

    def test_render_without_plan_omits_plan_section(self, service):
        report = explain_query(service, SCAN)
        stripped = ExplainReport(
            cypher_text=report.cypher_text,
            backend=report.backend,
            opt_level=report.opt_level,
            trace=report.trace,
            sql_text=report.sql_text,
            plan=None,
            rows=report.rows,
            metrics={},
        )
        text = "\n".join(stripped.render())
        assert "== plan ==" not in text
        assert stripped.to_dict()["plan"] is None
