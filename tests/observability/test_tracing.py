"""Tracer/Span semantics: nesting, parenting, retention, serialization."""

from __future__ import annotations

import threading

import pytest

from repro.observability.tracing import (
    NOOP_SPAN,
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
    current_span,
    span_from_dict,
)


class TestImplicitNesting:
    def test_nested_spans_parent_under_current(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.children == [inner]
        assert inner.parent_id == outer.span_id

    def test_current_span_tracks_entry_and_exit(self):
        tracer = Tracer()
        assert current_span() is None
        with tracer.span("outer") as outer:
            assert current_span() is outer
            with tracer.span("inner") as inner:
                assert current_span() is inner
            assert current_span() is outer
        assert current_span() is None

    def test_only_roots_are_retained(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [span.name for span in tracer.traces()] == ["root"]

    def test_sibling_spans_in_order(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        assert [child.name for child in root.children] == ["first", "second"]


class TestExplicitParenting:
    def test_parent_keyword_crosses_thread_boundary(self):
        tracer = Tracer()
        with tracer.span("batch") as batch:

            def worker(index: int) -> None:
                # A fresh thread has no current span; the explicit parent
                # attaches the subtree, and spans inside nest thread-locally.
                assert current_span() is None
                with tracer.span("query", parent=batch, index=index):
                    with tracer.span("execute"):
                        pass

            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(batch.children) == 4
        for child in batch.children:
            assert child.name == "query"
            assert [grand.name for grand in child.children] == ["execute"]

    def test_parent_none_forces_new_root(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("standalone", parent=None):
                pass
        assert {span.name for span in tracer.traces()} == {"outer", "standalone"}

    def test_noop_span_parent_means_root(self):
        tracer = Tracer()
        with tracer.span("child-of-noop", parent=NOOP_SPAN) as span:
            pass
        assert span.parent_id is None
        assert tracer.last_trace() is span


class TestSpanRecording:
    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("s", backend="duckdb") as span:
            span.set("rows", 7)
        assert span.attributes == {"backend": "duckdb", "rows": 7}

    def test_events_are_zero_duration_children(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.event("cache-hit", tier="memory")
        (event,) = span.children
        assert event.name == "cache-hit"
        assert event.duration_seconds == 0.0
        assert event.attributes == {"tier": "memory"}

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing") as span:
                raise ValueError("boom")
        assert span.attributes["error"] == "ValueError: boom"
        assert span.end is not None
        assert tracer.last_trace() is span

    def test_durations_are_monotonic(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert outer.duration_seconds >= inner.duration_seconds >= 0.0

    def test_find_and_find_all(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("stage"):
                with tracer.span("leaf"):
                    pass
            with tracer.span("stage"):
                pass
        assert root.find("leaf").name == "leaf"
        assert root.find("missing") is None
        assert len(root.find_all("stage")) == 2


class TestRetention:
    def test_ring_buffer_bounds_roots(self):
        tracer = Tracer(max_traces=3)
        for index in range(5):
            with tracer.span(f"root{index}"):
                pass
        assert [span.name for span in tracer.traces()] == [
            "root2",
            "root3",
            "root4",
        ]

    def test_reset_clears_traces(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        tracer.reset()
        assert tracer.traces() == ()
        assert tracer.last_trace() is None


class TestSerialization:
    def test_round_trip_preserves_shape_attributes_timing(self):
        tracer = Tracer()
        with tracer.span("root", backend="b") as root:
            with tracer.span("child", rows=3):
                pass
        document = root.to_dict()
        rebuilt = span_from_dict(document)
        assert [(s.name, s.attributes) for s in rebuilt.walk()] == [
            (s.name, s.attributes) for s in root.walk()
        ]
        assert rebuilt.duration_ms == pytest.approx(
            round(root.duration_ms, 3), abs=1e-6
        )
        # Child offsets in a re-serialization must match the original's.
        assert rebuilt.to_dict() == document

    def test_offsets_are_root_relative(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
        document = root.to_dict()
        nested = document["children"][0]["children"][0]
        # b starts after a, which starts after root: offsets increase inward.
        assert nested["offset_ms"] >= document["children"][0]["offset_ms"] >= 0


class TestNoop:
    def test_noop_tracer_returns_shared_span(self):
        assert NOOP_TRACER.span("anything", backend="x") is NOOP_SPAN
        assert not NOOP_TRACER.enabled

    def test_noop_span_absorbs_recording(self):
        with NOOP_TRACER.span("s") as span:
            span.set("k", "v")
            span.event("e")
        assert NOOP_TRACER.traces() == ()
        assert NOOP_TRACER.last_trace() is None

    def test_noop_does_not_become_a_parent(self):
        tracer = Tracer()
        with NOOP_TRACER.span("outer"):
            with tracer.span("real") as span:
                pass
        assert span.parent_id is None

    def test_fresh_noop_tracer_equivalent(self):
        tracer = NoopTracer()
        assert tracer.span("s") is NOOP_SPAN


class TestSpanDirect:
    def test_walk_yields_depth_first(self):
        root = Span("root")
        a, b = Span("a"), Span("b")
        a.children.append(b)
        root.children.append(a)
        assert [span.name for span in root.walk()] == ["root", "a", "b"]
