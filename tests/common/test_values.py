"""Three-valued logic and value-domain unit tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.values import (
    NULL,
    Null,
    is_null,
    sort_key,
    sql_and,
    sql_not,
    sql_or,
    truth_value,
    value_eq,
    value_lt,
)

TRUTHS = [True, False, NULL]


class TestNullSingleton:
    def test_null_equals_null(self):
        assert NULL == Null()

    def test_null_not_equal_to_scalars(self):
        for scalar in (0, "", False, 0.0):
            assert NULL != scalar

    def test_null_is_falsy(self):
        assert not NULL

    def test_null_hash_is_stable(self):
        assert hash(NULL) == hash(Null())

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)


class TestKleeneLogic:
    def test_and_truth_table(self):
        assert sql_and(True, True) is True
        assert sql_and(True, False) is False
        assert sql_and(False, NULL) is False
        assert sql_and(NULL, False) is False
        assert is_null(sql_and(True, NULL))
        assert is_null(sql_and(NULL, NULL))

    def test_or_truth_table(self):
        assert sql_or(False, False) is False
        assert sql_or(True, NULL) is True
        assert sql_or(NULL, True) is True
        assert is_null(sql_or(False, NULL))
        assert is_null(sql_or(NULL, NULL))

    def test_not_truth_table(self):
        assert sql_not(True) is False
        assert sql_not(False) is True
        assert is_null(sql_not(NULL))

    @given(st.sampled_from(TRUTHS), st.sampled_from(TRUTHS))
    def test_de_morgan(self, a, b):
        assert sql_not(sql_and(a, b)) == sql_or(sql_not(a), sql_not(b))

    @given(st.sampled_from(TRUTHS), st.sampled_from(TRUTHS))
    def test_commutativity(self, a, b):
        assert sql_and(a, b) == sql_and(b, a)
        assert sql_or(a, b) == sql_or(b, a)


class TestComparisons:
    def test_eq_null_propagates(self):
        assert is_null(value_eq(NULL, 1))
        assert is_null(value_eq(1, NULL))
        assert is_null(value_eq(NULL, NULL))

    def test_eq_scalars(self):
        assert value_eq(1, 1) is True
        assert value_eq(1, 2) is False
        assert value_eq("a", "a") is True

    def test_eq_mixed_numeric(self):
        assert value_eq(1, 1.0) is True

    def test_bool_not_equal_to_int(self):
        assert value_eq(True, 1) is False

    def test_lt_null_propagates(self):
        assert is_null(value_lt(NULL, 1))

    def test_lt_scalars(self):
        assert value_lt(1, 2) is True
        assert value_lt(2, 1) is False
        assert value_lt("a", "b") is True

    def test_lt_incomparable_raises(self):
        from repro.common.errors import SemanticsError

        with pytest.raises(SemanticsError):
            value_lt(1, "a")


class TestTruthValue:
    def test_numbers(self):
        assert truth_value(0) is False
        assert truth_value(3) is True

    def test_null(self):
        assert is_null(truth_value(NULL))

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            truth_value("yes")


class TestSortKey:
    def test_null_sorts_first(self):
        values = [3, NULL, "a", True, 1.5]
        ordered = sorted(values, key=sort_key)
        assert is_null(ordered[0])

    def test_strings_after_numbers(self):
        assert sort_key(5) < sort_key("a")

    def test_total_order_is_consistent(self):
        values = [NULL, False, True, -1, 0, 2.5, "x", "y"]
        ordered = sorted(values, key=sort_key)
        assert sorted(ordered, key=sort_key) == ordered
