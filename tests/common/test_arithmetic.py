"""Scalar arithmetic shared by both evaluators."""

import pytest

from repro.common.arithmetic import apply_binary
from repro.common.values import NULL, is_null


class TestNullPropagation:
    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%"])
    def test_null_left(self, op):
        assert is_null(apply_binary(op, NULL, 1))

    @pytest.mark.parametrize("op", ["+", "-", "*", "/", "%"])
    def test_null_right(self, op):
        assert is_null(apply_binary(op, 1, NULL))


class TestDivision:
    def test_integer_division_truncates_toward_zero(self):
        assert apply_binary("/", 5, 2) == 2
        assert apply_binary("/", -5, 2) == -2  # SQLite/Neo4j style

    def test_float_division(self):
        assert apply_binary("/", 5.0, 2) == 2.5

    def test_division_by_zero_is_null(self):
        assert is_null(apply_binary("/", 1, 0))

    def test_modulo(self):
        assert apply_binary("%", 7, 3) == 1
        assert apply_binary("%", -7, 3) == -1  # fmod semantics

    def test_modulo_by_zero_is_null(self):
        assert is_null(apply_binary("%", 1, 0))


class TestBasics:
    def test_add(self):
        assert apply_binary("+", 2, 3) == 5

    def test_subtract(self):
        assert apply_binary("-", 2, 3) == -1

    def test_multiply(self):
        assert apply_binary("*", 2, 3) == 6

    def test_string_concat_via_add(self):
        assert apply_binary("+", "a", "b") == "ab"

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            apply_binary("**", 2, 3)
