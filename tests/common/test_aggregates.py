"""Aggregate combination semantics (paper Appendix A quirks included)."""

import pytest

from repro.common.aggregates import combine, count_rows
from repro.common.values import NULL, is_null


class TestCount:
    def test_counts_non_null(self):
        assert combine("Count", [1, NULL, 2]) == 2

    def test_all_null_yields_null(self):
        # Paper Appendix A: an all-NULL argument column aggregates to NULL
        # (standard SQL would say 0 — the paper's semantics is what both
        # reference evaluators must share).
        assert is_null(combine("Count", [NULL, NULL]))

    def test_empty_group_yields_null(self):
        assert is_null(combine("Count", []))

    def test_distinct(self):
        assert combine("Count", [1, 1, 2], distinct=True) == 2

    def test_count_rows(self):
        assert count_rows(0) == 0
        assert count_rows(5) == 5


class TestSum:
    def test_sums_non_null(self):
        assert combine("Sum", [1, 2, NULL, 3]) == 6

    def test_all_null(self):
        assert is_null(combine("Sum", [NULL]))

    def test_distinct_sums_unique(self):
        assert combine("Sum", [2, 2, 3], distinct=True) == 5


class TestAvg:
    def test_avg_ignores_nulls(self):
        assert combine("Avg", [2, 4, NULL]) == 3.0

    def test_avg_true_division(self):
        assert combine("Avg", [1, 2]) == 1.5


class TestMinMax:
    def test_min(self):
        assert combine("Min", [3, NULL, 1]) == 1

    def test_max(self):
        assert combine("Max", [3, NULL, 1]) == 3

    def test_min_strings(self):
        assert combine("Min", ["b", "a"]) == "a"


def test_unknown_function_rejected():
    with pytest.raises(ValueError):
        combine("Median", [1])
