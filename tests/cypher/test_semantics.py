"""Cypher reference semantics (paper Appendix A)."""

import pytest

from repro.common.values import NULL, is_null
from repro.cypher.parser import parse_cypher
from repro.cypher.semantics import evaluate_query
from repro.graph.builder import GraphBuilder
from repro.relational.instance import Table, tables_equivalent


def run(text, schema, graph):
    return evaluate_query(parse_cypher(text, schema), graph)


class TestMatch:
    def test_node_scan(self, emp_dept_schema, emp_dept_graph):
        result = run("MATCH (n:EMP) RETURN n.name", emp_dept_schema, emp_dept_graph)
        assert sorted(result.column("n.name")) == ["A", "B"]

    def test_one_hop(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert tables_equivalent(
            result, Table.of(("a", "b"), [("A", "CS"), ("B", "CS")])
        )

    def test_reverse_direction(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (m:DEPT)<-[e:WORK_AT]-(n:EMP) RETURN n.name",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert sorted(result.column("n.name")) == ["A", "B"]

    def test_where_filter(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) WHERE n.id = 1 RETURN n.name",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert result.column("n.name") == ["A"]

    def test_where_null_comparison_drops_row(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        builder.add_node("EMP", id=1, name=NULL)
        graph = builder.build()
        result = run(
            "MATCH (n:EMP) WHERE n.name = 'A' RETURN n.id", emp_dept_schema, graph
        )
        assert len(result) == 0

    def test_shared_variable_across_matches(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) "
            "RETURN n.name, n2.name",
            emp_dept_schema,
            emp_dept_graph,
        )
        # 2 workers × 2 workers sharing the CS department.
        assert len(result) == 4


class TestOptionalMatch:
    def test_null_padding(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        a = builder.add_node("EMP", id=1, name="A")
        b = builder.add_node("EMP", id=2, name="B")
        cs = builder.add_node("DEPT", dnum=1, dname="CS")
        builder.add_edge("WORK_AT", a, cs, wid=10)
        graph = builder.build()
        result = run(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN n.name, m.dname",
            emp_dept_schema,
            graph,
        )
        rows = set(result.rows)
        assert ("A", "CS") in rows
        assert ("B", NULL) in rows

    def test_no_shared_variables_is_cross_product(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) OPTIONAL MATCH (d:DEPT) RETURN n.name, d.dname",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert len(result) == 4  # 2 emps × 2 depts

    def test_predicate_failure_nullifies(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "WHERE m.dnum = 99 RETURN n.name, m.dname",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert all(is_null(value) for value in result.column("m.dname"))


class TestWith:
    def test_with_projects_and_renames(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m AS kept "
            "RETURN kept.dname",
            emp_dept_schema,
            emp_dept_graph,
        )
        # Multiplicity preserved: one row per original match.
        assert result.column("kept.dname") == ["CS", "CS"]


class TestAggregation:
    def test_count_star_groups(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert result.rows == [("CS", 2)]

    def test_count_variable_skips_nulls(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        a = builder.add_node("EMP", id=1, name="A")
        builder.add_node("EMP", id=2, name="B")
        cs = builder.add_node("DEPT", dnum=1, dname="CS")
        builder.add_edge("WORK_AT", a, cs, wid=10)
        graph = builder.build()
        result = run(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN Count(m) AS c, Count(*) AS total",
            emp_dept_schema,
            graph,
        )
        assert result.rows == [(1, 2)]

    def test_empty_input_yields_no_groups(self, emp_dept_schema):
        graph = GraphBuilder(emp_dept_schema).build()
        result = run(
            "MATCH (n:EMP) RETURN Count(*) AS c", emp_dept_schema, graph
        )
        # Paper Appendix A: Groups over an empty match list is empty.
        assert len(result) == 0

    def test_sum_avg_min_max(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) RETURN Sum(n.id) AS s, Avg(n.id) AS a, "
            "Min(n.id) AS lo, Max(n.id) AS hi",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert result.rows == [(3, 1.5, 1, 2)]


class TestExists:
    def test_exists_filters(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        a = builder.add_node("EMP", id=1, name="A")
        builder.add_node("EMP", id=2, name="B")
        cs = builder.add_node("DEPT", dnum=1, dname="CS")
        builder.add_edge("WORK_AT", a, cs, wid=10)
        graph = builder.build()
        result = run(
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
            "RETURN n.name",
            emp_dept_schema,
            graph,
        )
        assert result.column("n.name") == ["A"]

    def test_exists_with_inner_predicate(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "WHERE m.dname = 'EE' } RETURN n.name",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert len(result) == 0


class TestQueryForms:
    def test_union_deduplicates(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) RETURN n.name UNION MATCH (m:EMP) RETURN m.name",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert sorted(result.column("n.name")) == ["A", "B"]

    def test_union_all_keeps_duplicates(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) RETURN n.name UNION ALL MATCH (m:EMP) RETURN m.name",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert len(result) == 4

    def test_order_by_desc_limit(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) RETURN n.name AS who, n.id AS k ORDER BY k DESC LIMIT 1",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert result.ordered
        assert result.rows == [("B", 2)]

    def test_distinct(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN DISTINCT m.dname",
            emp_dept_schema,
            emp_dept_graph,
        )
        assert result.rows == [("CS",)]

    def test_arithmetic_projection(self, emp_dept_schema, emp_dept_graph):
        result = run(
            "MATCH (n:EMP) RETURN n.id * 10 AS v", emp_dept_schema, emp_dept_graph
        )
        assert sorted(result.column("v")) == [10, 20]
