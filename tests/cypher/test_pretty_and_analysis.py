"""Cypher pretty-printer round trips and static analyses."""

import pytest

from repro.cypher import ast
from repro.cypher.analysis import (
    ast_size,
    collect_variables,
    has_aggregate,
    uses_aggregation,
    uses_optional_match,
)
from repro.cypher.parser import parse_cypher
from repro.cypher.pretty import pretty

ROUND_TRIP_QUERIES = [
    "MATCH (n:EMP) RETURN n.name AS out",
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id = 3 RETURN n.name AS a, m.dname AS b",
    "MATCH (m:DEPT)<-[e:WORK_AT]-(n:EMP) RETURN DISTINCT n.name AS who",
    "MATCH (n:EMP) WHERE n.id IN [1, 2] RETURN n.name AS who",
    "MATCH (n:EMP) WHERE n.name IS NOT NULL RETURN n.id AS i",
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS grp, Count(*) AS c",
    "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS d",
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m AS kept RETURN kept.dname AS d",
    "MATCH (n:EMP) RETURN n.name AS a UNION MATCH (m:EMP) RETURN m.name AS a",
    "MATCH (n:EMP) RETURN n.name AS w, n.id AS k ORDER BY k DESC LIMIT 2",
    "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } RETURN n.id AS i",
]


class TestRoundTrip:
    @pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
    def test_parse_pretty_parse(self, text, emp_dept_schema):
        first = parse_cypher(text, emp_dept_schema)
        rendered = pretty(first)
        second = parse_cypher(rendered, emp_dept_schema)
        assert first == second, rendered


class TestAstSize:
    def test_monotone_in_pattern_length(self, emp_dept_schema):
        short = parse_cypher("MATCH (n:EMP) RETURN n.name", emp_dept_schema)
        long = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name", emp_dept_schema
        )
        assert ast_size(long) > ast_size(short)

    def test_union_sums_sides(self, emp_dept_schema):
        left = parse_cypher("MATCH (n:EMP) RETURN n.name", emp_dept_schema)
        union = parse_cypher(
            "MATCH (n:EMP) RETURN n.name UNION MATCH (m:EMP) RETURN m.name",
            emp_dept_schema,
        )
        assert ast_size(union) == 1 + 2 * ast_size(left)

    def test_rejects_non_nodes(self):
        with pytest.raises(TypeError):
            ast_size("not a node")


class TestCollectVariables:
    def test_match_chain(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) RETURN n2.name",
            emp_dept_schema,
        )
        variables = collect_variables(query.clause)
        assert variables == {
            "n": "EMP", "e": "WORK_AT", "m": "DEPT", "n2": "EMP", "e2": "WORK_AT",
        }

    def test_with_narrows_scope(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m AS kept RETURN kept.dname",
            emp_dept_schema,
        )
        assert collect_variables(query.clause) == {"kept": "DEPT"}


class TestFeatureChecks:
    def test_has_aggregate(self):
        assert has_aggregate(ast.Aggregate("Count", None))
        assert has_aggregate(
            ast.BinaryOp("+", ast.Literal(1), ast.Aggregate("Sum", ast.Literal(2)))
        )
        assert not has_aggregate(ast.Literal(1))

    def test_uses_aggregation(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) RETURN Count(*) AS c", emp_dept_schema
        )
        assert uses_aggregation(query)

    def test_uses_optional_match(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN m.dname",
            emp_dept_schema,
        )
        assert uses_optional_match(query)
        plain = parse_cypher("MATCH (n:EMP) RETURN n.name", emp_dept_schema)
        assert not uses_optional_match(plain)
