"""Variable-length relationship patterns: parsing, printing, and the BFS
reference evaluator (cycle-safe reachability semantics)."""

import pytest

from repro.common.errors import ParseError, SemanticsError
from repro.cypher import ast
from repro.cypher.analysis import (
    collect_variables,
    pattern_bindable_variables,
    uses_var_length,
    var_length_step_error,
)
from repro.cypher.parser import parse_cypher
from repro.cypher.pretty import pretty
from repro.cypher.semantics import evaluate_query
from repro.graph.builder import GraphBuilder
from repro.graph.schema import EdgeType, GraphSchema, NodeType

SCHEMA = GraphSchema.of(
    [NodeType("USER", ("uid", "uname")), NodeType("POST", ("pid", "title"))],
    [
        EdgeType("FOLLOWS", "USER", "USER", ("fid",)),
        EdgeType("WROTE", "USER", "POST", ("wrid",)),
    ],
)


def edge_of(text: str) -> ast.VarLengthEdgePattern:
    query = parse_cypher(text, SCHEMA)
    clause = query.clause
    (edge,) = [
        e for e in clause.pattern if isinstance(e, ast.VarLengthEdgePattern)
    ]
    return edge


class TestParsing:
    @pytest.mark.parametrize(
        ("hops", "lo", "hi"),
        [
            ("*", 1, None),
            ("*2", 2, 2),
            ("*1..3", 1, 3),
            ("*2..", 2, None),
            ("*..3", 1, 3),
            ("*0..2", 0, 2),
            ("*0..", 0, None),
            ("*0", 0, 0),
        ],
    )
    def test_hop_bound_forms(self, hops, lo, hi):
        edge = edge_of(
            f"MATCH (a:USER)-[f:FOLLOWS{hops}]->(b:USER) RETURN a.uid"
        )
        assert (edge.min_hops, edge.max_hops) == (lo, hi)
        assert edge.direction is ast.Direction.OUT

    def test_direction_and_anonymous_variable(self):
        edge = edge_of("MATCH (a:USER)<-[:FOLLOWS*1..2]-(b:USER) RETURN a.uid")
        assert edge.direction is ast.Direction.IN
        assert edge.variable.startswith("_a")
        both = edge_of("MATCH (a:USER)-[:FOLLOWS*2]-(b:USER) RETURN a.uid")
        assert both.direction is ast.Direction.BOTH

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ParseError):
            parse_cypher("MATCH (a:USER)-[:FOLLOWS*3..1]->(b:USER) RETURN a.uid", SCHEMA)

    def test_fractional_bound_rejected(self):
        with pytest.raises(ParseError):
            parse_cypher("MATCH (a:USER)-[:FOLLOWS*1.5]->(b:USER) RETURN a.uid", SCHEMA)

    def test_label_inferred_from_schema(self):
        edge = edge_of("MATCH (a:USER)-[*1..2]->(b:USER) RETURN a.uid")
        assert edge.label == "FOLLOWS"

    def test_round_trip_through_pretty(self):
        for text in (
            "MATCH (a:USER)-[f:FOLLOWS*]->(b:USER) RETURN a.uid, b.uid",
            "MATCH (a:USER)-[f:FOLLOWS*2]->(b:USER) RETURN a.uid",
            "MATCH (a:USER)<-[f:FOLLOWS*1..3]-(b:USER) RETURN a.uid",
            "MATCH (a:USER)-[f:FOLLOWS*2..]-(b:USER) RETURN a.uid",
        ):
            query = parse_cypher(text, SCHEMA)
            assert parse_cypher(pretty(query), SCHEMA) == query

    def test_ast_validation(self):
        with pytest.raises(ValueError):
            ast.VarLengthEdgePattern("f", "FOLLOWS", ast.Direction.OUT, -1, None)
        with pytest.raises(ValueError):
            ast.VarLengthEdgePattern("f", "FOLLOWS", ast.Direction.OUT, 3, 2)


class TestAnalysis:
    def test_traversal_variable_is_not_bindable(self):
        query = parse_cypher(
            "MATCH (a:USER)-[f:FOLLOWS*1..2]->(b:USER) RETURN a.uid", SCHEMA
        )
        variables = collect_variables(query.clause)
        assert "f" not in variables
        assert set(variables) == {"a", "b"}
        assert set(pattern_bindable_variables(query.clause.pattern)) == {"a", "b"}

    def test_uses_var_length(self):
        plain = parse_cypher("MATCH (a:USER) RETURN a.uid", SCHEMA)
        star = parse_cypher(
            "MATCH (a:USER)-[:FOLLOWS*]->(b:USER) RETURN a.uid", SCHEMA
        )
        exists = parse_cypher(
            "MATCH (a:USER) WHERE EXISTS { MATCH (a:USER)-[:FOLLOWS*2]->(b:USER) } "
            "RETURN a.uid",
            SCHEMA,
        )
        assert not uses_var_length(plain)
        assert uses_var_length(star)
        assert uses_var_length(exists)

    def test_step_error_requires_self_referential_edge(self):
        left = ast.NodePattern("a", "USER")
        right = ast.NodePattern("p", "POST")
        edge = ast.VarLengthEdgePattern("w", "WROTE", ast.Direction.OUT, 1, 2)
        assert var_length_step_error(left, edge, right, SCHEMA) is not None
        follows = ast.VarLengthEdgePattern("f", "FOLLOWS", ast.Direction.OUT, 1, 2)
        assert (
            var_length_step_error(left, follows, ast.NodePattern("b", "USER"), SCHEMA)
            is None
        )
        mislabeled = var_length_step_error(left, follows, right, SCHEMA)
        assert mislabeled is not None and "POST" in mislabeled


def cycle_graph():
    """1 → 2 → 3 → 1 plus 3 → 4 (a directed cycle with one tail)."""
    builder = GraphBuilder(SCHEMA)
    nodes = [builder.add_node("USER", uid=i, uname=f"u{i}") for i in range(1, 5)]
    edges = [(1, 2), (2, 3), (3, 1), (3, 4)]
    for fid, (s, t) in enumerate(edges, 1):
        builder.add_edge("FOLLOWS", nodes[s - 1], nodes[t - 1], fid=fid)
    return builder.build()


def rows(text: str, graph) -> list:
    return sorted(evaluate_query(parse_cypher(text, SCHEMA), graph).rows)


class TestEvaluator:
    def test_unbounded_star_is_cycle_safe(self):
        graph = cycle_graph()
        got = rows("MATCH (a:USER)-[:FOLLOWS*]->(b:USER) RETURN a.uid, b.uid", graph)
        # Every cycle member reaches every node (including itself); 4 reaches nothing.
        assert got == sorted((a, b) for a in (1, 2, 3) for b in (1, 2, 3, 4))

    def test_exact_hops(self):
        graph = cycle_graph()
        got = rows("MATCH (a:USER)-[:FOLLOWS*2]->(b:USER) RETURN a.uid, b.uid", graph)
        assert got == [(1, 3), (2, 1), (2, 4), (3, 2)]

    def test_zero_hop_includes_identity(self):
        graph = cycle_graph()
        got = rows("MATCH (a:USER)-[:FOLLOWS*0..1]->(b:USER) RETURN a.uid, b.uid", graph)
        assert got == sorted(
            [(n, n) for n in (1, 2, 3, 4)] + [(1, 2), (2, 3), (3, 1), (3, 4)]
        )

    def test_zero_hop_only(self):
        graph = cycle_graph()
        got = rows("MATCH (a:USER)-[:FOLLOWS*0]->(b:USER) RETURN a.uid, b.uid", graph)
        assert got == [(n, n) for n in (1, 2, 3, 4)]

    def test_reversed_direction(self):
        graph = cycle_graph()
        forward = rows("MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid", graph)
        backward = rows("MATCH (b:USER)<-[:FOLLOWS*1..2]-(a:USER) RETURN a.uid, b.uid", graph)
        assert forward == backward

    def test_distinct_pair_semantics(self):
        """Two parallel edges still yield ONE binding per endpoint pair."""
        builder = GraphBuilder(SCHEMA)
        a = builder.add_node("USER", uid=1, uname="a")
        b = builder.add_node("USER", uid=2, uname="b")
        builder.add_edge("FOLLOWS", a, b, fid=1)
        builder.add_edge("FOLLOWS", a, b, fid=2)
        graph = builder.build()
        got = rows("MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid", graph)
        assert got == [(1, 2)]

    def test_back_to_self_requires_cycle(self):
        graph = cycle_graph()
        got = rows("MATCH (a:USER)-[:FOLLOWS*1..]->(a:USER) RETURN a.uid", graph)
        assert got == [(1,), (2,), (3,)]

    def test_min_hops_beyond_reach(self):
        graph = cycle_graph()
        # node 4 is a sink: nothing reaches depth >= 1 from it, and the
        # saturating frontier still terminates with min above the diameter.
        got = rows("MATCH (a:USER)-[:FOLLOWS*7..]->(b:USER) RETURN a.uid, b.uid", graph)
        assert got == sorted((a, b) for a in (1, 2, 3) for b in (1, 2, 3, 4))

    def test_optional_match_nullifies_endpoint_not_traversal(self):
        graph = cycle_graph()
        table = evaluate_query(
            parse_cypher(
                "MATCH (a:USER) OPTIONAL MATCH (a:USER)-[:FOLLOWS*3]->(b:USER) "
                "RETURN a.uid, b.uid",
                SCHEMA,
            ),
            graph,
        )
        from repro.common.values import is_null

        by_source = {}
        for a, b in table.rows:
            by_source.setdefault(a, []).append(b)
        assert all(is_null(b) for b in by_source[4])

    def test_ill_typed_traversal_rejected(self):
        graph = cycle_graph()
        with pytest.raises(SemanticsError):
            evaluate_query(
                parse_cypher(
                    "MATCH (a:USER)-[:WROTE*1..2]->(p:POST) RETURN a.uid", SCHEMA
                ),
                graph,
            )
