"""Cypher surface-syntax parsing."""

import pytest

from repro.common.errors import ParseError
from repro.cypher import ast
from repro.cypher.parser import parse_cypher


class TestPatterns:
    def test_single_hop(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name", emp_dept_schema
        )
        assert isinstance(query, ast.Return)
        clause = query.clause
        assert isinstance(clause, ast.Match)
        assert len(clause.pattern) == 3
        assert clause.pattern[1].direction is ast.Direction.OUT

    def test_incoming_edge(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (m:DEPT)<-[e:WORK_AT]-(n:EMP) RETURN n.name", emp_dept_schema
        )
        assert query.clause.pattern[1].direction is ast.Direction.IN

    def test_undirected_edge(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]-(m:DEPT) RETURN n.name", emp_dept_schema
        )
        assert query.clause.pattern[1].direction is ast.Direction.BOTH

    def test_anonymous_edge_gets_fresh_variable(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[:WORK_AT]->(m:DEPT) RETURN n.name", emp_dept_schema
        )
        assert query.clause.pattern[1].variable.startswith("_a")

    def test_edge_label_inference(self, emp_dept_schema):
        query = parse_cypher("MATCH (n:EMP)-[]->(m:DEPT) RETURN n.name", emp_dept_schema)
        assert query.clause.pattern[1].label == "WORK_AT"

    def test_node_label_inference(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n)-[e:WORK_AT]->(m:DEPT) RETURN m.dname", emp_dept_schema
        )
        assert query.clause.pattern[0].label == "EMP"

    def test_uninferable_label_rejected(self, emp_dept_schema):
        with pytest.raises(ParseError, match="cannot infer"):
            parse_cypher("MATCH (n) RETURN n.name", emp_dept_schema)

    def test_inline_properties_desugar_to_where(self, emp_dept_schema):
        query = parse_cypher("MATCH (n:EMP {id: 3}) RETURN n.name", emp_dept_schema)
        predicate = query.clause.predicate
        assert isinstance(predicate, ast.Comparison)
        assert predicate.left == ast.PropertyRef("n", "id")
        assert predicate.right == ast.Literal(3)

    def test_comma_patterns_desugar_to_nested_match(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP), (m:DEPT) WHERE n.id = m.dnum RETURN n.name",
            emp_dept_schema,
        )
        outer = query.clause
        assert isinstance(outer, ast.Match)
        assert isinstance(outer.previous, ast.Match)
        assert outer.previous.previous is None


class TestClauses:
    def test_multiple_match_clauses(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) RETURN n2.name",
            emp_dept_schema,
        )
        assert query.clause.previous is not None

    def test_optional_match(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname",
            emp_dept_schema,
        )
        assert isinstance(query.clause, ast.OptMatch)

    def test_optional_match_cannot_open(self, emp_dept_schema):
        with pytest.raises(ParseError, match="cannot open"):
            parse_cypher("OPTIONAL MATCH (n:EMP) RETURN n.name", emp_dept_schema)

    def test_with_renames(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m AS kept RETURN kept.dname",
            emp_dept_schema,
        )
        clause = query.clause
        assert isinstance(clause, ast.With)
        assert clause.old_names == ("m",)
        assert clause.new_names == ("kept",)

    def test_with_expression_rejected(self, emp_dept_schema):
        with pytest.raises(ParseError, match="bare variables"):
            parse_cypher(
                "MATCH (n:EMP) WITH n.name AS x RETURN x.name", emp_dept_schema
            )


class TestReturnAndQuery:
    def test_aliases(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS name, Count(*) AS num",
            emp_dept_schema,
        )
        assert query.names == ("name", "num")
        assert query.expressions[1] == ast.Aggregate("Count", None)

    def test_count_variable_becomes_identity_count(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN Count(n) AS c", emp_dept_schema
        )
        aggregate = query.expressions[0]
        assert aggregate == ast.Aggregate("Count", ast.VariableRef("n"))

    def test_distinct(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN DISTINCT m.dname",
            emp_dept_schema,
        )
        assert query.distinct

    def test_order_by_alias(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) RETURN n.name AS who ORDER BY who DESC LIMIT 3",
            emp_dept_schema,
        )
        assert isinstance(query, ast.OrderBy)
        assert query.keys == ("who",)
        assert query.ascending == (False,)
        assert query.limit == 3

    def test_order_by_unknown_alias_rejected(self, emp_dept_schema):
        with pytest.raises(ParseError, match="does not name"):
            parse_cypher(
                "MATCH (n:EMP) RETURN n.name AS who ORDER BY nothere", emp_dept_schema
            )

    def test_union(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) RETURN n.name UNION MATCH (m:EMP) RETURN m.name",
            emp_dept_schema,
        )
        assert isinstance(query, ast.Union)

    def test_union_all(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) RETURN n.name UNION ALL MATCH (m:EMP) RETURN m.name",
            emp_dept_schema,
        )
        assert isinstance(query, ast.UnionAll)


class TestPredicates:
    def test_comparison_operators(self, emp_dept_schema):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            query = parse_cypher(
                f"MATCH (n:EMP) WHERE n.id {op} 3 RETURN n.name", emp_dept_schema
            )
            assert isinstance(query.clause.predicate, ast.Comparison)

    def test_bang_equals_normalised(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE n.id != 3 RETURN n.name", emp_dept_schema
        )
        assert query.clause.predicate.op == "<>"

    def test_is_null(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE n.name IS NULL RETURN n.id", emp_dept_schema
        )
        assert isinstance(query.clause.predicate, ast.IsNull)

    def test_is_not_null(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE n.name IS NOT NULL RETURN n.id", emp_dept_schema
        )
        assert query.clause.predicate.negated

    def test_in_list(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE n.id IN [1, 2, 3] RETURN n.name", emp_dept_schema
        )
        assert query.clause.predicate == ast.InValues(
            ast.PropertyRef("n", "id"), (1, 2, 3)
        )

    def test_boolean_connectives(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE n.id = 1 OR NOT n.id = 2 AND n.id < 5 RETURN n.name",
            emp_dept_schema,
        )
        assert isinstance(query.clause.predicate, ast.Or)

    def test_exists_braces(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
            "RETURN n.name",
            emp_dept_schema,
        )
        assert isinstance(query.clause.predicate, ast.Exists)

    def test_exists_with_inner_where(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "WHERE m.dnum = 1 } RETURN n.name",
            emp_dept_schema,
        )
        exists = query.clause.predicate
        assert isinstance(exists.predicate, ast.Comparison)

    def test_arithmetic_precedence(self, emp_dept_schema):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE n.id + 2 * 3 = 7 RETURN n.name", emp_dept_schema
        )
        comparison = query.clause.predicate
        assert isinstance(comparison.left, ast.BinaryOp)
        assert comparison.left.op == "+"
        assert comparison.left.right.op == "*"


class TestErrors:
    def test_trailing_garbage(self, emp_dept_schema):
        with pytest.raises(ParseError):
            parse_cypher("MATCH (n:EMP) RETURN n.name garbage", emp_dept_schema)

    def test_missing_return(self, emp_dept_schema):
        with pytest.raises(ParseError):
            parse_cypher("MATCH (n:EMP)", emp_dept_schema)

    def test_bad_character(self, emp_dept_schema):
        with pytest.raises(ParseError):
            parse_cypher("MATCH (n:EMP) RETURN n.name ~", emp_dept_schema)
