"""Relational-schema declaration syntax."""

import pytest

from repro.common.errors import ParseError
from repro.relational.parser import parse_relational_schema

TEXT = """
table emp(eid, ename, deptno)
table dept(dno, dname)
pk emp.eid
pk dept.dno
fk emp.deptno -> dept.dno
notnull emp.deptno
"""


class TestParse:
    def test_tables(self):
        schema = parse_relational_schema(TEXT)
        assert schema.relation("emp").attributes == ("eid", "ename", "deptno")

    def test_constraints(self):
        schema = parse_relational_schema(TEXT)
        assert schema.primary_key_of("emp") == "eid"
        fks = schema.constraints.foreign_keys_of("emp")
        assert fks[0].referenced == "dept"
        assert ("emp", "deptno") in {
            (nn.relation, nn.attribute) for nn in schema.constraints.not_nulls
        }

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_relational_schema("# nothing")

    def test_bad_line_rejected(self):
        with pytest.raises(ParseError, match="cannot parse"):
            parse_relational_schema("table emp(eid)\nprimary emp.eid")
