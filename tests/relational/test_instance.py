"""Tables, databases, constraints, and Definition-4.4 table equivalence."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SchemaError
from repro.common.values import NULL
from repro.relational.instance import Database, Table, tables_equivalent, tables_equivalent_ordered
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
)


def schema_with_constraints() -> RelationalSchema:
    return RelationalSchema.of(
        [Relation("r", ("a", "b")), Relation("s", ("c",))],
        IntegrityConstraints(
            (PrimaryKey("r", "a"),),
            (ForeignKey("r", "b", "s", "c"),),
            (NotNull("s", "c"),),
        ),
    )


class TestTable:
    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            Table.of(("a", "b"), [(1,)])

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Table.of(("a", "a"))

    def test_column_access(self):
        table = Table.of(("a", "b"), [(1, 2), (3, 4)])
        assert table.column("b") == [2, 4]
        assert table.value((1, 2), "a") == 1

    def test_as_dicts(self):
        table = Table.of(("a",), [(1,)])
        assert table.as_dicts() == [{"a": 1}]


class TestDatabase:
    def test_insert_and_lookup(self):
        db = Database(schema_with_constraints())
        db.insert("s", (1,))
        db.insert("r", (1, 1))
        assert len(db.table("r")) == 1
        assert db.total_rows() == 2

    def test_unknown_table(self):
        db = Database(schema_with_constraints())
        with pytest.raises(SchemaError):
            db.table("zzz")

    def test_pk_violation_detected(self):
        db = Database(schema_with_constraints())
        db.insert("r", (1, NULL))
        db.insert("r", (1, NULL))
        assert "duplicate key" in db.constraint_violation()

    def test_pk_null_detected(self):
        db = Database(schema_with_constraints())
        db.insert("r", (NULL, NULL))
        assert "NULL key" in db.constraint_violation()

    def test_fk_violation_detected(self):
        db = Database(schema_with_constraints())
        db.insert("r", (1, 99))
        assert "dangling" in db.constraint_violation()

    def test_fk_null_is_allowed(self):
        db = Database(schema_with_constraints())
        db.insert("r", (1, NULL))
        assert db.satisfies_constraints()

    def test_not_null_violation_detected(self):
        db = Database(schema_with_constraints())
        db.insert("s", (NULL,))
        assert "NULL value" in db.constraint_violation()

    def test_valid_instance(self):
        db = Database(schema_with_constraints())
        db.insert("s", (5,))
        db.insert("r", (1, 5))
        assert db.satisfies_constraints()


class TestTableEquivalence:
    def test_identical_tables(self):
        t = Table.of(("a", "b"), [(1, 2), (3, 4)])
        assert tables_equivalent(t, t)

    def test_column_names_ignored(self):
        left = Table.of(("a", "b"), [(1, 2)])
        right = Table.of(("x", "y"), [(1, 2)])
        assert tables_equivalent(left, right)

    def test_column_order_ignored(self):
        left = Table.of(("a", "b"), [(1, 2), (3, 4)])
        right = Table.of(("b", "a"), [(2, 1), (4, 3)])
        assert tables_equivalent(left, right)

    def test_multiplicities_matter(self):
        left = Table.of(("a",), [(1,), (1,)])
        right = Table.of(("a",), [(1,)])
        assert not tables_equivalent(left, right)

    def test_row_order_ignored_for_bags(self):
        left = Table.of(("a",), [(1,), (2,)])
        right = Table.of(("a",), [(2,), (1,)])
        assert tables_equivalent(left, right)

    def test_arity_mismatch(self):
        left = Table.of(("a",), [(1,)])
        right = Table.of(("a", "b"), [(1, 2)])
        assert not tables_equivalent(left, right)

    def test_null_cells_compare(self):
        left = Table.of(("a",), [(NULL,)])
        right = Table.of(("x",), [(NULL,)])
        assert tables_equivalent(left, right)

    def test_tricky_permutation(self):
        # Both columns share the same value bag; only one mapping works.
        left = Table.of(("a", "b"), [(1, 2), (2, 1), (1, 1)])
        right = Table.of(("x", "y"), [(2, 1), (1, 2), (1, 1)])
        assert tables_equivalent(left, right)

    def test_same_signatures_but_no_valid_mapping(self):
        left = Table.of(("a", "b"), [(1, 2), (2, 1)])
        right = Table.of(("x", "y"), [(1, 1), (2, 2)])
        assert not tables_equivalent(left, right)

    def test_ordered_requires_same_positions(self):
        left = Table.of(("a",), [(1,), (2,)], ordered=True)
        right = Table.of(("a",), [(2,), (1,)], ordered=True)
        assert not tables_equivalent(left, right)

    def test_ordered_equal(self):
        left = Table.of(("a",), [(1,), (2,)], ordered=True)
        right = Table.of(("x",), [(1,), (2,)], ordered=True)
        assert tables_equivalent(left, right)

    def test_ordered_with_column_permutation(self):
        left = Table.of(("a", "b"), [(1, "x"), (2, "y")], ordered=True)
        right = Table.of(("p", "q"), [("x", 1), ("y", 2)], ordered=True)
        assert tables_equivalent_ordered(left, right)


rows_strategy = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=6
)


class TestEquivalenceProperties:
    @given(rows_strategy)
    def test_reflexive(self, rows):
        table = Table.of(("a", "b"), rows)
        assert tables_equivalent(table, table)

    @given(rows_strategy)
    def test_symmetric_under_column_swap(self, rows):
        left = Table.of(("a", "b"), rows)
        right = Table.of(("b2", "a2"), [(b, a) for a, b in rows])
        assert tables_equivalent(left, right)
        assert tables_equivalent(right, left)

    @given(rows_strategy, st.randoms(use_true_random=False))
    def test_row_shuffle_preserves_equivalence(self, rows, rng):
        left = Table.of(("a", "b"), rows)
        shuffled = list(rows)
        rng.shuffle(shuffled)
        right = Table.of(("a", "b"), shuffled)
        assert tables_equivalent(left, right)

    @given(rows_strategy)
    def test_extra_row_breaks_equivalence(self, rows):
        left = Table.of(("a", "b"), rows)
        right = Table.of(("a", "b"), rows + [(9, 9)])
        assert not tables_equivalent(left, right)
