"""Relational schema construction and lookups (Definition 3.5)."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    PrimaryKey,
    Relation,
    RelationalSchema,
)


class TestRelation:
    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Relation("r", ("a", "a"))

    def test_str(self):
        assert str(Relation("r", ("a", "b"))) == "r(a, b)"


class TestRelationalSchema:
    def test_duplicate_relation_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationalSchema.of([Relation("r", ("a",)), Relation("r", ("b",))])

    def test_lookup(self):
        schema = RelationalSchema.of([Relation("r", ("a",))])
        assert schema.relation("r").attributes == ("a",)
        assert schema.has_relation("r")
        assert not schema.has_relation("s")

    def test_primary_key_defaults_to_first_attribute(self):
        schema = RelationalSchema.of([Relation("r", ("a", "b"))])
        assert schema.primary_key_of("r") == "a"

    def test_declared_primary_key_wins(self):
        schema = RelationalSchema.of(
            [Relation("r", ("a", "b"))],
            IntegrityConstraints((PrimaryKey("r", "b"),)),
        )
        assert schema.primary_key_of("r") == "b"

    def test_merge_concatenates(self):
        left = RelationalSchema.of(
            [Relation("r", ("a",))], IntegrityConstraints((PrimaryKey("r", "a"),))
        )
        right = RelationalSchema.of(
            [Relation("s", ("b",))], IntegrityConstraints((PrimaryKey("s", "b"),))
        )
        merged = left.merge(right)
        assert merged.has_relation("r") and merged.has_relation("s")
        assert len(merged.constraints.primary_keys) == 2


class TestConstraints:
    def test_foreign_keys_of(self):
        constraints = IntegrityConstraints(
            foreign_keys=(
                ForeignKey("r", "b", "s", "c"),
                ForeignKey("t", "x", "s", "c"),
            )
        )
        assert len(constraints.foreign_keys_of("r")) == 1
        assert constraints.foreign_keys_of("zzz") == ()

    def test_str_renders_all(self):
        constraints = IntegrityConstraints(
            (PrimaryKey("r", "a"),), (ForeignKey("r", "b", "s", "c"),)
        )
        text = str(constraints)
        assert "PK(r) = a" in text and "FK(r.b) = s.c" in text

    def test_empty_constraints_are_true(self):
        assert str(IntegrityConstraints()) == "TRUE"
