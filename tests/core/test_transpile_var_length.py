"""Transpilation of variable-length patterns (PT-Reach)."""

import pytest

from repro.common.errors import TranspileError
from repro.core.sdt import infer_sdt
from repro.core.transpile import REACH_DEPTH, REACH_SOURCE, REACH_TARGET, transpile
from repro.cypher.parser import parse_cypher
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.sql import ast as sq
from repro.sql.analysis import iter_nodes, output_attributes, uses_recursion

SCHEMA = GraphSchema.of(
    [NodeType("USER", ("uid", "uname")), NodeType("POST", ("pid", "title"))],
    [
        EdgeType("FOLLOWS", "USER", "USER", ("fid",)),
        EdgeType("WROTE", "USER", "POST", ("wrid",)),
    ],
)
SDT = infer_sdt(SCHEMA)


def transpiled(text: str) -> sq.Query:
    return transpile(parse_cypher(text, SCHEMA), SCHEMA, SDT)


def reach_nodes(query: sq.Query) -> list[sq.RecursiveQuery]:
    return [n for n in iter_nodes(query) if isinstance(n, sq.RecursiveQuery)]


class TestReachTranslation:
    def test_emits_recursive_cte_with_reach_info(self):
        query = transpiled("MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN a.uid, b.uid")
        (reach,) = reach_nodes(query)
        assert reach.columns == (REACH_SOURCE, REACH_TARGET, REACH_DEPTH)
        assert not reach.union_all  # distinct union = cycle safety
        info = reach.reach
        assert info is not None
        assert info.edge_table == "FOLLOWS"
        assert (info.min_hops, info.max_hops) == (1, 3)
        assert info.fanout_columns == ("SRC",)

    def test_direction_fanout_columns(self):
        incoming = reach_nodes(
            transpiled("MATCH (a:USER)<-[:FOLLOWS*1..2]-(b:USER) RETURN a.uid")
        )[0]
        assert incoming.reach.fanout_columns == ("TGT",)
        undirected = reach_nodes(
            transpiled("MATCH (a:USER)-[:FOLLOWS*1..2]-(b:USER) RETURN a.uid")
        )[0]
        assert undirected.reach.fanout_columns == ("SRC", "TGT")

    def test_traversal_variable_has_no_output_columns(self):
        query = transpiled("MATCH (a:USER)-[f:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid")
        attributes = output_attributes(query, SDT.schema)
        assert attributes == ("a.uid", "b.uid")
        inner = query.query if isinstance(query, sq.Projection) else query
        flattened = output_attributes(inner, SDT.schema)
        assert flattened is not None
        assert not any("f_" in attribute for attribute in flattened)

    def test_two_traversals_get_distinct_fixpoints(self):
        query = transpiled(
            "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER)-[:FOLLOWS*1..2]->(c:USER) "
            "RETURN a.uid, c.uid"
        )
        names = {reach.name for reach in reach_nodes(query)}
        assert len(names) == 2

    def test_zero_hops_only_skips_the_fixpoint(self):
        query = transpiled("MATCH (a:USER)-[:FOLLOWS*0]->(b:USER) RETURN a.uid, b.uid")
        assert not uses_recursion(query)

    def test_open_bound_step_saturates_depth(self):
        query = transpiled("MATCH (a:USER)-[:FOLLOWS*2..]->(b:USER) RETURN a.uid")
        (reach,) = reach_nodes(query)
        casts = [
            n for n in iter_nodes(reach.step) if isinstance(n, sq.CastPredicate)
        ]
        assert casts, "open upper bound must saturate depth via Cast(depth < cap)"


class TestRejections:
    def test_traversal_variable_not_referenceable(self):
        with pytest.raises(TranspileError, match="unbound"):
            transpiled("MATCH (a:USER)-[f:FOLLOWS*1..2]->(b:USER) RETURN f.fid")

    def test_non_self_referential_edge_rejected(self):
        with pytest.raises(TranspileError, match="self-referential"):
            transpiled("MATCH (a:USER)-[:WROTE*1..2]->(p:POST) RETURN a.uid")

    def test_mislabeled_endpoint_rejected(self):
        with pytest.raises(TranspileError, match="endpoint"):
            transpiled("MATCH (p:POST)-[:FOLLOWS*1..2]->(b:USER) RETURN b.uid")
