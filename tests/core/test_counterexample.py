"""Counterexample lifting: the inverse of the standard transformer."""

import pytest

from repro.common.errors import SchemaError
from repro.core.counterexample import lift_counterexample
from repro.relational.instance import Database
from repro.transformer.facts import graph_facts
from repro.transformer.semantics import transform_graph


class TestLift:
    def test_roundtrip_preserves_facts(self, emp_dept_schema, emp_dept_sdt, emp_dept_graph):
        induced = transform_graph(
            emp_dept_sdt.transformer, emp_dept_graph, emp_dept_sdt.schema
        )
        lifted = lift_counterexample(emp_dept_schema, emp_dept_sdt, induced)
        assert graph_facts(lifted) == graph_facts(emp_dept_graph)

    def test_lift_builds_valid_graph(self, emp_dept_schema, emp_dept_sdt):
        induced = Database(emp_dept_sdt.schema)
        induced.insert("EMP", (1, "A"))
        induced.insert("DEPT", (7, "CS"))
        induced.insert("WORK_AT", (3, 1, 7))
        lifted = lift_counterexample(emp_dept_schema, emp_dept_sdt, induced)
        lifted.validate()
        assert len(lifted.nodes) == 2
        assert len(lifted.edges) == 1

    def test_dangling_edge_rejected(self, emp_dept_schema, emp_dept_sdt):
        induced = Database(emp_dept_sdt.schema)
        induced.insert("EMP", (1, "A"))
        induced.insert("WORK_AT", (3, 1, 99))
        with pytest.raises(SchemaError, match="dangling"):
            lift_counterexample(emp_dept_schema, emp_dept_sdt, induced)

    def test_empty_instance_lifts_to_empty_graph(self, emp_dept_schema, emp_dept_sdt):
        induced = Database(emp_dept_sdt.schema)
        lifted = lift_counterexample(emp_dept_schema, emp_dept_sdt, induced)
        assert len(lifted) == 0
