"""End-to-end reproduction of the paper's Section-2 motivating example.

On the Figure-3 instances the Cypher query returns Count = 4 while the SQL
query returns Count = 2, and the full pipeline (Algorithm 1 with the
bounded backend) refutes equivalence with a lifted graph counterexample.
"""

import pytest

from repro import BoundedChecker, check_equivalence, evaluate_cypher, evaluate_sql
from repro.benchmarks.curated import SEMMED, curated_benchmarks
from repro.checkers.base import Verdict
from repro.graph.builder import GraphBuilder
from repro.transformer.semantics import graph_relational_equivalent, transform_graph


@pytest.fixture(scope="module")
def motivating():
    return next(b for b in curated_benchmarks() if b.id == "academic/motivating")


@pytest.fixture(scope="module")
def figure3_graph():
    """The Figure-3a instance: Atropine with two paths into sentence S0."""
    builder = GraphBuilder(SEMMED.graph_schema)
    atropine = builder.add_node("CONCEPT", CID=1, NAME="Atropine")
    builder.add_node("CONCEPT", CID=2, NAME="Aspirin")
    pa0 = builder.add_node("PA", PID=0, PACSID=0)
    pa1 = builder.add_node("PA", PID=1, PACSID=1)
    s0 = builder.add_node("SENTENCE", SID=0, PMID=0)
    builder.add_node("SENTENCE", SID=1, PMID=0)
    builder.add_edge("CS", atropine, pa0, CSID=0)
    builder.add_edge("CS", atropine, pa1, CSID=1)
    builder.add_edge("SP", pa0, s0, SPID=0)
    builder.add_edge("SP", pa1, s0, SPID=1)
    return builder.build()


class TestFigure4Results:
    def test_cypher_counts_four(self, motivating, figure3_graph):
        result = evaluate_cypher(motivating.cypher_query, figure3_graph)
        assert result.rows == [(1, 4)]  # Figure 4d

    def test_sql_counts_two(self, motivating, figure3_graph):
        target = transform_graph(
            motivating.transformer, figure3_graph, motivating.relational_schema
        )
        result = evaluate_sql(motivating.sql_query, target)
        assert result.rows == [(1, 2)]  # Figure 4b

    def test_instances_are_transformer_equivalent(self, motivating, figure3_graph):
        target = transform_graph(
            motivating.transformer, figure3_graph, motivating.relational_schema
        )
        assert graph_relational_equivalent(
            motivating.transformer, figure3_graph, target
        )


class TestPipelineRefutation:
    def test_bounded_checker_refutes(self, motivating):
        result = check_equivalence(
            motivating.graph_schema,
            motivating.cypher_query,
            motivating.relational_schema,
            motivating.sql_query,
            motivating.transformer,
            BoundedChecker(max_bound=3, samples_per_bound=250, seed=3),
        )
        assert result.verdict is Verdict.NOT_EQUIVALENT
        cex = result.counterexample
        assert cex is not None
        # The lifted instances genuinely disagree.
        from repro.relational.instance import tables_equivalent

        assert not tables_equivalent(cex.cypher_result, cex.sql_result)
        # And they are Φ-related (Definition 4.3).
        assert graph_relational_equivalent(
            motivating.transformer, cex.graph, cex.target_database
        )

    def test_corrected_query_not_refuted(self):
        fixed = next(
            b for b in curated_benchmarks() if b.id == "academic/motivating-fixed"
        )
        result = check_equivalence(
            fixed.graph_schema,
            fixed.cypher_query,
            fixed.relational_schema,
            fixed.sql_query,
            fixed.transformer,
            BoundedChecker(max_bound=3, samples_per_bound=250, seed=3),
        )
        assert result.verdict is Verdict.BOUNDED_EQUIVALENT
