"""Counterexample export as executable Cypher CREATE statements."""

import pytest

from repro.core.counterexample import graph_to_cypher_create
from repro.graph.builder import GraphBuilder


class TestCypherCreate:
    def test_nodes_and_edges_rendered(self, emp_dept_schema, emp_dept_graph):
        text = graph_to_cypher_create(emp_dept_graph)
        assert text.startswith("CREATE")
        assert text.count(":EMP") == 2
        assert text.count(":DEPT") == 2
        assert text.count("-[:WORK_AT") == 2
        assert "{id: 1, name: 'A'}" in text

    def test_string_escaping(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        builder.add_node("EMP", id=1, name="O'Brien")
        text = graph_to_cypher_create(builder.build())
        assert "O\\'Brien" in text

    def test_empty_graph(self, emp_dept_schema):
        text = graph_to_cypher_create(GraphBuilder(emp_dept_schema).build())
        assert "empty graph" in text

    def test_counterexample_carries_export(
        self, emp_dept_schema, merged_target_schema, merged_transformer
    ):
        from repro import BoundedChecker, check_equivalence, parse_cypher, parse_sql

        result = check_equivalence(
            emp_dept_schema,
            parse_cypher(
                "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN DISTINCT m.dname",
                emp_dept_schema,
            ),
            merged_target_schema,
            parse_sql(
                "SELECT d.dname FROM emp AS e JOIN dept AS d ON e.deptno = d.dno"
            ),
            merged_transformer,
            BoundedChecker(max_bound=3, samples_per_bound=200, seed=5),
        )
        assert result.counterexample is not None
        create = result.counterexample.to_cypher_create()
        assert create.startswith("CREATE")
        assert ":EMP" in create and ":DEPT" in create


class TestTransformerRoundTrip:
    def test_str_reparses_to_same_rules(self, merged_transformer):
        from repro.transformer.parser import parse_transformer

        rendered = str(merged_transformer)
        reparsed = parse_transformer(rendered)
        assert reparsed == merged_transformer

    def test_sdt_round_trips(self, emp_dept_sdt):
        from repro.transformer.parser import parse_transformer

        rendered = str(emp_dept_sdt.transformer)
        reparsed = parse_transformer(rendered)
        assert reparsed == emp_dept_sdt.transformer
