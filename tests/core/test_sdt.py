"""InferSDT: induced relational schema + standard transformer (Figure 13)."""

import pytest

from repro.common.errors import SchemaError
from repro.core.sdt import SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE, infer_sdt
from repro.graph.schema import EdgeType, GraphSchema, NodeType


class TestInducedSchema:
    def test_node_tables(self, emp_dept_sdt):
        emp = emp_dept_sdt.schema.relation("EMP")
        assert emp.attributes == ("id", "name")

    def test_edge_tables_append_src_tgt(self, emp_dept_sdt):
        work = emp_dept_sdt.schema.relation("WORK_AT")
        assert work.attributes == ("wid", SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE)

    def test_primary_keys_are_default_keys(self, emp_dept_sdt):
        constraints = emp_dept_sdt.schema.constraints
        assert constraints.primary_key_of("EMP") == "id"
        assert constraints.primary_key_of("WORK_AT") == "wid"

    def test_foreign_keys_reference_endpoints(self, emp_dept_sdt):
        fks = emp_dept_sdt.schema.constraints.foreign_keys_of("WORK_AT")
        references = {(fk.attribute, fk.referenced, fk.referenced_attribute) for fk in fks}
        assert references == {
            (SOURCE_ATTRIBUTE, "EMP", "id"),
            (TARGET_ATTRIBUTE, "DEPT", "dnum"),
        }

    def test_not_null_on_endpoints(self, emp_dept_sdt):
        not_nulls = {
            (nn.relation, nn.attribute)
            for nn in emp_dept_sdt.schema.constraints.not_nulls
        }
        assert ("WORK_AT", SOURCE_ATTRIBUTE) in not_nulls
        assert ("WORK_AT", TARGET_ATTRIBUTE) in not_nulls

    def test_table_for(self, emp_dept_sdt):
        assert emp_dept_sdt.table_for("EMP") == "EMP"
        with pytest.raises(SchemaError):
            emp_dept_sdt.table_for("NOPE")

    def test_reserved_key_rejected(self):
        schema = GraphSchema.of(
            [NodeType("A", ("x",)), NodeType("B", ("y",))],
            [EdgeType("E", "A", "B", ("SRC",))],
        )
        with pytest.raises(SchemaError, match="reserved"):
            infer_sdt(schema)


class TestStandardTransformer:
    def test_one_rule_per_type(self, emp_dept_sdt):
        assert len(emp_dept_sdt.transformer) == 3

    def test_rules_are_identity_renamings(self, emp_dept_sdt):
        for rule in emp_dept_sdt.transformer:
            assert len(rule.body) == 1
            assert rule.body[0].name == rule.head.name
            assert rule.body[0].terms == rule.head.terms

    def test_application_matches_fixture(self, emp_dept_sdt, emp_dept_graph):
        from repro.transformer.semantics import transform_graph

        induced = transform_graph(
            emp_dept_sdt.transformer, emp_dept_graph, emp_dept_sdt.schema
        )
        assert sorted(induced.table("EMP").rows) == [(1, "A"), (2, "B")]
        assert sorted(induced.table("WORK_AT").rows) == [(10, 1, 1), (11, 2, 1)]
        assert induced.satisfies_constraints()
