"""Command-line interface smoke tests."""

import pytest

from repro.cli import main


class TestTranspile:
    def test_example_schema(self, capsys):
        code = main(
            [
                "transpile",
                "--example",
                "emp-dept",
                "--cypher",
                "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "SELECT" in out
        assert "WORK_AT" in out

    def test_schema_file(self, tmp_path, capsys):
        schema_file = tmp_path / "schema.txt"
        schema_file.write_text("node A(x, y)\n")
        code = main(
            ["transpile", "--graph-schema", str(schema_file), "--cypher",
             "MATCH (a:A) RETURN a.y"]
        )
        assert code == 0
        assert '"A"' in capsys.readouterr().out

    def test_missing_schema(self):
        with pytest.raises(SystemExit):
            main(["transpile", "--cypher", "MATCH (a:A) RETURN a.x"])


class TestCheck:
    def test_benchmark_deductive(self, capsys):
        code = main(
            [
                "check",
                "--benchmark",
                "tutorial/emp-count",
                "--backend",
                "deductive",
            ]
        )
        assert code == 0
        assert "unsupported" in capsys.readouterr().out  # aggregation

    def test_benchmark_bounded_refutes(self, capsys):
        code = main(
            [
                "check",
                "--benchmark",
                "veriql/emp-dept-join",
                "--backend",
                "bounded",
                "--max-bound",
                "3",
                "--samples",
                "250",
            ]
        )
        assert code == 1  # non-equivalent exits 1
        out = capsys.readouterr().out
        assert "not-equivalent" in out
        assert "counterexample" in out

    def test_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            main(["check", "--benchmark", "nope/nothing"])

    def test_explicit_files(self, tmp_path, capsys):
        (tmp_path / "g.txt").write_text(
            "node EMP(id, name)\nnode DEPT(dnum, dname)\n"
            "edge WORK_AT(wid): EMP -> DEPT\n"
        )
        (tmp_path / "r.txt").write_text(
            "table emp(eid, ename, deptno)\ntable dept(dno, dname)\n"
            "pk emp.eid\npk dept.dno\nfk emp.deptno -> dept.dno\n"
            "notnull emp.deptno\n"
        )
        (tmp_path / "t.txt").write_text(
            "EMP(id, name), WORK_AT(wid, id, dnum) -> emp(wid, name, dnum)\n"
            "DEPT(dnum, dname) -> dept(dnum, dname)\n"
        )
        code = main(
            [
                "check",
                "--graph-schema", str(tmp_path / "g.txt"),
                "--relational-schema", str(tmp_path / "r.txt"),
                "--transformer", str(tmp_path / "t.txt"),
                "--cypher",
                "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
                "--sql",
                "SELECT e.ename, d.dname FROM emp AS e JOIN dept AS d "
                "ON e.deptno = d.dno",
                "--backend", "deductive",
            ]
        )
        assert code == 0
        assert "equivalent" in capsys.readouterr().out


class TestMisc:
    def test_suite_listing(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "academic/motivating" in out
        assert out.count("\n") == 410

    def test_no_command_shows_help(self, capsys):
        assert main([]) == 2
