"""Algorithm-1 pipeline plumbing: what check_equivalence exposes."""

import pytest

from repro import BoundedChecker, DeductiveChecker, check_equivalence
from repro.checkers.base import Verdict
from repro.cypher.parser import parse_cypher
from repro.sql.analysis import referenced_relations
from repro.sql.parser import parse_sql


@pytest.fixture
def pipeline_inputs(emp_dept_schema, merged_target_schema, merged_transformer):
    cypher = parse_cypher(
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
        emp_dept_schema,
    )
    sql = parse_sql(
        "SELECT e.ename, d.dname FROM emp AS e JOIN dept AS d ON e.deptno = d.dno"
    )
    return emp_dept_schema, cypher, merged_target_schema, sql, merged_transformer


class TestResultContents:
    def test_exposes_sdt_and_transpiled(self, pipeline_inputs):
        result = check_equivalence(*pipeline_inputs, DeductiveChecker())
        assert result.sdt.schema.has_relation("WORK_AT")
        assert referenced_relations(result.transpiled) == {"EMP", "WORK_AT", "DEPT"}

    def test_exposes_residual_over_induced_vocabulary(self, pipeline_inputs):
        result = check_equivalence(*pipeline_inputs, DeductiveChecker())
        assert result.residual.body_names() <= {"EMP", "WORK_AT", "DEPT"}
        assert result.residual.head_names() == {"emp", "dept"}

    def test_verified_and_refuted_flags(self, pipeline_inputs):
        result = check_equivalence(*pipeline_inputs, DeductiveChecker())
        assert result.verified and not result.refuted

    def test_no_counterexample_on_success(self, pipeline_inputs):
        result = check_equivalence(
            *pipeline_inputs, BoundedChecker(max_bound=2, samples_per_bound=60)
        )
        assert result.counterexample is None
        assert result.outcome.instances_checked > 0

    def test_outcome_records_bound_and_time(self, pipeline_inputs):
        result = check_equivalence(
            *pipeline_inputs, BoundedChecker(max_bound=2, samples_per_bound=60)
        )
        assert result.outcome.checked_bound == 2
        assert result.outcome.elapsed_seconds >= 0.0


class TestBackendAgreement:
    def test_backends_agree_on_equivalent_pair(self, pipeline_inputs):
        deductive = check_equivalence(*pipeline_inputs, DeductiveChecker())
        bounded = check_equivalence(
            *pipeline_inputs, BoundedChecker(max_bound=3, samples_per_bound=100)
        )
        assert deductive.verdict is Verdict.EQUIVALENT
        assert bounded.verdict is Verdict.BOUNDED_EQUIVALENT

    def test_deductive_never_refutes(
        self, emp_dept_schema, merged_target_schema, merged_transformer
    ):
        cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name", emp_dept_schema
        )
        buggy_sql = parse_sql(
            "SELECT e.ename FROM emp AS e JOIN dept AS d ON e.deptno = d.dno "
            "WHERE d.dno > 3"
        )
        result = check_equivalence(
            emp_dept_schema,
            cypher,
            merged_target_schema,
            buggy_sql,
            merged_transformer,
            DeductiveChecker(),
        )
        # Like Mediator, the deductive backend answers Unknown, never refutes.
        assert result.verdict is Verdict.UNKNOWN
