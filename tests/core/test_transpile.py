"""Syntax-directed transpilation (Figures 16-18, 21-22).

Soundness is checked semantically: for a query Q and instance G,
``⟦Q⟧_G ≡ ⟦transpile(Q)⟧_{Φsdt(G)}`` (Theorem 5.7 on concrete instances).
"""

import pytest

from repro.common.errors import TranspileError
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.cypher.semantics import evaluate_query as evaluate_cypher
from repro.graph.builder import GraphBuilder
from repro.relational.instance import tables_equivalent
from repro.sql import ast as sq
from repro.sql.semantics import evaluate_query as evaluate_sql
from repro.transformer.semantics import transform_graph


def assert_sound(text, schema, sdt, graph):
    query = parse_cypher(text, schema)
    translated = transpile(query, schema, sdt)
    induced = transform_graph(sdt.transformer, graph, sdt.schema)
    cypher_result = evaluate_cypher(query, graph)
    sql_result = evaluate_sql(translated, induced)
    assert tables_equivalent(cypher_result, sql_result), (
        f"soundness violation for {text}\n"
        f"cypher:\n{cypher_result}\nsql:\n{sql_result}"
    )
    return translated


class TestSoundnessOnFixture:
    QUERIES = [
        "MATCH (n:EMP) RETURN n.name",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
        "MATCH (m:DEPT)<-[e:WORK_AT]-(n:EMP) RETURN n.name",
        "MATCH (n:EMP)-[e:WORK_AT]-(m:DEPT) RETURN n.name",
        "MATCH (n:EMP) WHERE n.id = 1 RETURN n.name",
        "MATCH (n:EMP) WHERE n.id < 2 OR n.name = 'B' RETURN n.id",
        "MATCH (n:EMP) WHERE n.id IN [1, 5] RETURN n.name",
        "MATCH (n:EMP) WHERE n.name IS NOT NULL RETURN n.id",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname AS d, Count(n) AS c",
        "MATCH (n:EMP) RETURN Sum(n.id) AS s, Min(n.id) AS lo",
        "MATCH (n:EMP) RETURN DISTINCT n.name",
        "MATCH (n:EMP) RETURN n.id + 1 AS bumped",
        "MATCH (n:EMP) RETURN n.name UNION MATCH (m:EMP) RETURN m.name",
        "MATCH (n:EMP) RETURN n.name UNION ALL MATCH (m:EMP) RETURN m.name",
        "MATCH (n:EMP) RETURN n.name AS who, n.id AS k ORDER BY k DESC LIMIT 1",
        "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
        "RETURN n.name, m.dname",
        "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
        "RETURN n.name",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
        "MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) RETURN n.name, n2.name",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m AS kept RETURN kept.dname",
    ]

    @pytest.mark.parametrize("text", QUERIES)
    def test_sound_on_figure_15(self, text, emp_dept_schema, emp_dept_sdt, emp_dept_graph):
        assert_sound(text, emp_dept_schema, emp_dept_sdt, emp_dept_graph)

    @pytest.mark.parametrize("text", QUERIES)
    def test_sound_on_sparse_graph(self, text, emp_dept_schema, emp_dept_sdt):
        builder = GraphBuilder(emp_dept_schema)
        a = builder.add_node("EMP", id=1, name="A")
        builder.add_node("EMP", id=2, name="A")  # duplicate names
        cs = builder.add_node("DEPT", dnum=1, dname="CS")
        builder.add_node("DEPT", dnum=2, dname="EE")
        builder.add_edge("WORK_AT", a, cs, wid=10)
        builder.add_edge("WORK_AT", a, cs, wid=11)  # parallel edge
        graph = builder.build()
        assert_sound(text, emp_dept_schema, emp_dept_sdt, graph)

    @pytest.mark.parametrize("text", QUERIES)
    def test_sound_on_empty_graph(self, text, emp_dept_schema, emp_dept_sdt):
        graph = GraphBuilder(emp_dept_schema).build()
        assert_sound(text, emp_dept_schema, emp_dept_sdt, graph)


class TestTranslationShape:
    def test_match_becomes_selection_over_projection(
        self, emp_dept_schema, emp_dept_sdt
    ):
        query = parse_cypher("MATCH (n:EMP) RETURN n.name", emp_dept_schema)
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        assert isinstance(translated, sq.Projection)
        assert isinstance(translated.query, sq.Selection)

    def test_aggregation_becomes_group_by(self, emp_dept_schema, emp_dept_sdt):
        query = parse_cypher(
            "MATCH (n:EMP) RETURN n.name, Count(*)", emp_dept_schema
        )
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        assert isinstance(translated, sq.GroupBy)
        assert len(translated.keys) == 1

    def test_optional_match_becomes_left_join(self, emp_dept_schema, emp_dept_sdt):
        from repro.sql.analysis import uses_outer_join

        query = parse_cypher(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN m.dname",
            emp_dept_schema,
        )
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        assert uses_outer_join(translated)

    def test_exists_becomes_in_subquery(self, emp_dept_schema, emp_dept_sdt):
        from repro.sql.analysis import iter_nodes

        query = parse_cypher(
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
            "RETURN n.name",
            emp_dept_schema,
        )
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        assert any(isinstance(n, sq.InQuery) for n in iter_nodes(translated))

    def test_flat_attribute_invariant(self, emp_dept_schema, emp_dept_sdt):
        from repro.core.transpile import Transpiler

        transpiler = Transpiler(emp_dept_schema, emp_dept_sdt)
        clause = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name", emp_dept_schema
        ).clause
        output = transpiler.translate_clause(clause)
        from repro.sql.semantics import evaluate_query
        from repro.relational.instance import Database

        table = evaluate_query(output.query, Database(emp_dept_sdt.schema))
        assert set(table.attributes) == {
            "n_id", "n_name", "e_wid", "e_SRC", "e_TGT", "m_dnum", "m_dname",
        }


class TestErrors:
    def test_wrong_direction_rejected(self, emp_dept_schema, emp_dept_sdt):
        from repro.cypher import ast as cy

        pattern = cy.path_pattern(
            cy.NodePattern("m", "DEPT"),
            cy.EdgePattern("e", "WORK_AT", cy.Direction.OUT),
            cy.NodePattern("n", "EMP"),
        )
        query = cy.Return(cy.Match(pattern), (cy.PropertyRef("n", "name"),), ("x",))
        with pytest.raises(TranspileError, match="cannot run"):
            transpile(query, emp_dept_schema, emp_dept_sdt)

    def test_unknown_property_rejected(self, emp_dept_schema, emp_dept_sdt):
        from repro.cypher import ast as cy

        pattern = cy.path_pattern(cy.NodePattern("n", "EMP"))
        query = cy.Return(cy.Match(pattern), (cy.PropertyRef("n", "salary"),), ("x",))
        with pytest.raises(TranspileError, match="declares no property"):
            transpile(query, emp_dept_schema, emp_dept_sdt)

    def test_unbound_variable_rejected(self, emp_dept_schema, emp_dept_sdt):
        from repro.cypher import ast as cy

        pattern = cy.path_pattern(cy.NodePattern("n", "EMP"))
        query = cy.Return(cy.Match(pattern), (cy.PropertyRef("z", "name"),), ("x",))
        with pytest.raises(TranspileError, match="unbound"):
            transpile(query, emp_dept_schema, emp_dept_sdt)
