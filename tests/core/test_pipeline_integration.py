"""Cross-universe integration: every benchmark universe works end to end."""

import pytest

from repro import BoundedChecker, DeductiveChecker, check_equivalence
from repro.benchmarks import templates as T
from repro.benchmarks.universes import GENERATED_UNIVERSES
from repro.checkers.base import Verdict
from repro.cypher.parser import parse_cypher
from repro.sql.parser import parse_sql

import random


@pytest.mark.parametrize("universe", GENERATED_UNIVERSES, ids=lambda u: u.name)
class TestEveryUniverse:
    def _built(self, universe, template, seed=0, **kwargs):
        built = template(universe, random.Random(seed), **kwargs)
        return built

    def test_scan_filter_bounded_verifies(self, universe):
        built = self._built(universe, T.t_scan_filter)
        result = check_equivalence(
            universe.graph_schema,
            parse_cypher(built.cypher_text, universe.graph_schema),
            universe.relational_schema,
            parse_sql(built.sql_text),
            universe.transformer,
            BoundedChecker(max_bound=3, samples_per_bound=120, seed=8),
        )
        assert result.verdict is Verdict.BOUNDED_EQUIVALENT, built.sql_text

    def test_scan_filter_deductively_verifies(self, universe):
        built = self._built(universe, T.t_scan_filter)
        result = check_equivalence(
            universe.graph_schema,
            parse_cypher(built.cypher_text, universe.graph_schema),
            universe.relational_schema,
            parse_sql(built.sql_text),
            universe.transformer,
            DeductiveChecker(),
        )
        assert result.verdict is Verdict.EQUIVALENT, built.sql_text

    def test_wrong_constant_refuted(self, universe):
        built = self._built(universe, T.b_wrong_constant)
        result = check_equivalence(
            universe.graph_schema,
            parse_cypher(built.cypher_text, universe.graph_schema),
            universe.relational_schema,
            parse_sql(built.sql_text),
            universe.transformer,
            BoundedChecker(max_bound=3, samples_per_bound=200, seed=8),
        )
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert result.counterexample is not None
        # Counterexample instances are transformer-related (Definition 4.3).
        from repro.transformer.semantics import graph_relational_equivalent

        assert graph_relational_equivalent(
            universe.transformer,
            result.counterexample.graph,
            result.counterexample.target_database,
        )

    def test_aggregation_pair_bounded_verifies(self, universe):
        built = self._built(universe, T.t_agg_count)
        result = check_equivalence(
            universe.graph_schema,
            parse_cypher(built.cypher_text, universe.graph_schema),
            universe.relational_schema,
            parse_sql(built.sql_text),
            universe.transformer,
            BoundedChecker(max_bound=3, samples_per_bound=120, seed=8),
        )
        assert result.verdict is Verdict.BOUNDED_EQUIVALENT

    def test_multimatch_deductively_verifies(self, universe):
        built = self._built(universe, T.t_multimatch)
        result = check_equivalence(
            universe.graph_schema,
            parse_cypher(built.cypher_text, universe.graph_schema),
            universe.relational_schema,
            parse_sql(built.sql_text),
            universe.transformer,
            DeductiveChecker(),
        )
        assert result.verdict is Verdict.EQUIVALENT, built.sql_text
