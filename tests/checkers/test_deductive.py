"""Deductive verifier: UCQ normalisation, simplification, isomorphism."""

import time

import pytest

from repro.checkers.base import CheckRequest, Verdict
from repro.checkers.cq import Atom, ConjunctiveQuery, Const, Normalizer, Var
from repro.checkers.deductive import (
    DeductiveChecker,
    contained_in,
    decide_ucq_equivalence,
    isomorphic,
    simplify,
    unfold_views,
)
from repro.common.errors import UnsupportedError
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
)
from repro.sql.parser import parse_sql

DEADLINE = time.monotonic() + 10_000


def simple_schema():
    return RelationalSchema.of(
        [Relation("r", ("a", "b")), Relation("s", ("c", "d"))],
        IntegrityConstraints(
            (PrimaryKey("r", "a"), PrimaryKey("s", "c")),
            (ForeignKey("r", "b", "s", "c"),),
            (NotNull("r", "b"),),
        ),
    )


class TestNormalization:
    def test_scan_is_single_cq(self):
        cqs = Normalizer(simple_schema()).normalize(parse_sql("SELECT r.a FROM r"))
        assert len(cqs) == 1
        assert cqs[0].atoms[0].relation == "r"

    def test_join_merges_atoms(self):
        cqs = Normalizer(simple_schema()).normalize(
            parse_sql("SELECT x.a FROM r AS x JOIN s AS y ON x.b = y.c")
        )
        assert len(cqs[0].atoms) == 2
        # The equality was eliminated by unification.
        assert not cqs[0].conditions

    def test_constant_substitution(self):
        cqs = Normalizer(simple_schema()).normalize(
            parse_sql("SELECT x.b FROM r AS x WHERE x.a = 5")
        )
        atom = cqs[0].atoms[0]
        assert atom.terms[0] == Const(5)

    def test_inequality_becomes_condition(self):
        cqs = Normalizer(simple_schema()).normalize(
            parse_sql("SELECT x.a FROM r AS x WHERE x.a < 5")
        )
        assert len(cqs[0].conditions) == 1
        assert cqs[0].conditions[0].op == "<"

    def test_union_concatenates(self):
        cqs = Normalizer(simple_schema()).normalize(
            parse_sql("SELECT x.a FROM r AS x UNION ALL SELECT y.c FROM s AS y")
        )
        assert len(cqs) == 2

    def test_distinct_flag_propagates(self):
        cqs = Normalizer(simple_schema()).normalize(
            parse_sql("SELECT DISTINCT x.a FROM r AS x")
        )
        assert cqs[0].distinct

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(*) AS c FROM r",
            "SELECT x.a FROM r AS x LEFT JOIN s AS y ON x.b = y.c",
            "SELECT x.a FROM r AS x ORDER BY x.a",
            "SELECT x.a FROM r AS x WHERE x.a IN (1, 2)",
            "SELECT x.a FROM r AS x WHERE x.a IN (SELECT y.c FROM s AS y)",
            "SELECT x.a FROM r AS x WHERE x.a = 1 OR x.b = 2",
        ],
    )
    def test_unsupported_constructs(self, sql):
        with pytest.raises(UnsupportedError):
            Normalizer(simple_schema()).normalize(parse_sql(sql))


class TestIsomorphism:
    def test_renamed_variables_are_isomorphic(self):
        cq1 = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)])
        cq2 = ConjunctiveQuery([Atom("r", (Var(7), Var(8)))], [], [Var(7)])
        assert isomorphic(cq1, cq2, DEADLINE)

    def test_head_mismatch_is_not(self):
        cq1 = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)])
        cq2 = ConjunctiveQuery([Atom("r", (Var(7), Var(8)))], [], [Var(8)])
        assert not isomorphic(cq1, cq2, DEADLINE)

    def test_constants_must_agree(self):
        cq1 = ConjunctiveQuery([Atom("r", (Const(1), Var(2)))], [], [Var(2)])
        cq2 = ConjunctiveQuery([Atom("r", (Const(2), Var(8)))], [], [Var(8)])
        assert not isomorphic(cq1, cq2, DEADLINE)

    def test_self_join_symmetry(self):
        cq1 = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2))), Atom("r", (Var(2), Var(3)))],
            [],
            [Var(1)],
        )
        cq2 = ConjunctiveQuery(
            [Atom("r", (Var(8), Var(9))), Atom("r", (Var(7), Var(8)))],
            [],
            [Var(7)],
        )
        assert isomorphic(cq1, cq2, DEADLINE)

    def test_atom_count_must_match(self):
        cq1 = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)])
        cq2 = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2))), Atom("r", (Var(1), Var(2)))],
            [],
            [Var(1)],
        )
        assert not isomorphic(cq1, cq2, DEADLINE)


class TestContainment:
    def test_homomorphism_found(self):
        # sub: r(x,y), r(y,z) head x   ⊆   sup: r(a,b) head a  via a→x, b→y.
        sub = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2))), Atom("r", (Var(2), Var(3)))],
            [],
            [Var(1)],
        )
        sup = ConjunctiveQuery([Atom("r", (Var(10), Var(11)))], [], [Var(10)])
        assert contained_in(sub, sup, DEADLINE)
        assert not contained_in(sup, sub, DEADLINE)


class TestSimplification:
    def test_pk_self_join_collapse(self):
        schema = simple_schema()
        cq = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2))), Atom("r", (Var(1), Var(3)))],
            [],
            [Var(2), Var(3)],
        )
        simplified = simplify(cq, schema)
        assert len(simplified.atoms) == 1
        assert simplified.head[0] == simplified.head[1]

    def test_fk_lookup_pruned(self):
        schema = simple_schema()
        # r joins s through its NOT NULL FK; s contributes nothing else.
        cq = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2))), Atom("s", (Var(2), Var(3)))],
            [],
            [Var(1)],
        )
        simplified = simplify(cq, schema)
        assert [a.relation for a in simplified.atoms] == ["r"]

    def test_used_lookup_not_pruned(self):
        schema = simple_schema()
        cq = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2))), Atom("s", (Var(2), Var(3)))],
            [],
            [Var(1), Var(3)],  # s's payload is projected: keep the atom
        )
        simplified = simplify(cq, schema)
        assert len(simplified.atoms) == 2

    def test_constant_guarded_lookup_not_pruned(self):
        schema = simple_schema()
        cq = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2))), Atom("s", (Var(2), Const(5)))],
            [],
            [Var(1)],
        )
        simplified = simplify(cq, schema)
        assert len(simplified.atoms) == 2


class TestUcqDecision:
    def test_bag_equivalence_via_matching(self):
        cq_a = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)])
        cq_b = ConjunctiveQuery([Atom("s", (Var(1), Var(2)))], [], [Var(1)])
        assert decide_ucq_equivalence([cq_a, cq_b], [cq_b, cq_a], DEADLINE)

    def test_cardinality_mismatch(self):
        cq_a = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)])
        assert not decide_ucq_equivalence([cq_a, cq_a], [cq_a], DEADLINE)

    def test_head_permutation_is_global(self):
        cq1 = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1), Var(2)])
        cq2 = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(2), Var(1)])
        assert decide_ucq_equivalence([cq1], [cq2], DEADLINE)

    def test_mixed_distinct_flags_fail(self):
        cq1 = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)], True)
        cq2 = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)], False)
        assert not decide_ucq_equivalence([cq1], [cq2], DEADLINE)


class TestEndToEnd:
    def test_full_pipeline_verdicts(self, emp_dept_schema, merged_target_schema, merged_transformer):
        from repro.core.equivalence import check_equivalence
        from repro.cypher.parser import parse_cypher

        cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            emp_dept_schema,
        )
        sql = parse_sql(
            "SELECT e.ename, d.dname FROM emp AS e JOIN dept AS d "
            "ON e.deptno = d.dno"
        )
        result = check_equivalence(
            emp_dept_schema,
            cypher,
            merged_target_schema,
            sql,
            merged_transformer,
            DeductiveChecker(),
        )
        assert result.verdict is Verdict.EQUIVALENT

    def test_unknown_on_unprovable(self, emp_dept_schema, merged_target_schema, merged_transformer):
        from repro.core.equivalence import check_equivalence
        from repro.cypher.parser import parse_cypher

        cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id < 3 RETURN n.name",
            emp_dept_schema,
        )
        sql = parse_sql(
            "SELECT e.ename FROM emp AS e JOIN dept AS d ON e.deptno = d.dno "
            "WHERE e.eid < 3 AND e.eid < 7"
        )
        result = check_equivalence(
            emp_dept_schema,
            cypher,
            merged_target_schema,
            sql,
            merged_transformer,
            DeductiveChecker(),
        )
        assert result.verdict is Verdict.UNKNOWN

    def test_unsupported_on_aggregation(self, emp_dept_schema, merged_target_schema, merged_transformer):
        from repro.core.equivalence import check_equivalence
        from repro.cypher.parser import parse_cypher

        cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)",
            emp_dept_schema,
        )
        sql = parse_sql(
            "SELECT d.dname, COUNT(*) FROM emp AS e JOIN dept AS d "
            "ON e.deptno = d.dno GROUP BY d.dname"
        )
        result = check_equivalence(
            emp_dept_schema,
            cypher,
            merged_target_schema,
            sql,
            merged_transformer,
            DeductiveChecker(),
        )
        assert result.verdict is Verdict.UNSUPPORTED
