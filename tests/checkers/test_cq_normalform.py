"""UCQ normal form: CTEs, unions, unfolding corner cases."""

import time

import pytest

from repro.checkers.cq import Atom, ConjunctiveQuery, Const, Normalizer, Var
from repro.checkers.deductive import decide_ucq_equivalence, unfold_views
from repro.common.errors import UnsupportedError
from repro.relational.schema import Relation, RelationalSchema
from repro.sql.parser import parse_sql
from repro.transformer.parser import parse_transformer

DEADLINE = time.monotonic() + 10_000


def schema():
    return RelationalSchema.of(
        [Relation("r", ("a", "b")), Relation("s", ("c", "d"))]
    )


class TestCteNormalization:
    def test_cte_inlined(self):
        cqs = Normalizer(schema()).normalize(
            parse_sql("WITH t AS (SELECT x.a AS v FROM r AS x) SELECT t.v FROM t")
        )
        assert len(cqs) == 1
        assert cqs[0].atoms[0].relation == "r"

    def test_cte_reused_twice_gets_fresh_variables(self):
        cqs = Normalizer(schema()).normalize(
            parse_sql(
                "WITH t AS (SELECT x.a AS v FROM r AS x) "
                "SELECT p.v, q.v FROM t AS p, t AS q"
            )
        )
        assert len(cqs) == 1
        assert len(cqs[0].atoms) == 2
        # The two scans must not share variables.
        first, second = cqs[0].atoms
        assert set(first.terms).isdisjoint(set(second.terms))

    def test_union_cte_in_join_unsupported(self):
        with pytest.raises(UnsupportedError):
            Normalizer(schema()).normalize(
                parse_sql(
                    "WITH t AS (SELECT x.a AS v FROM r AS x UNION ALL "
                    "SELECT y.c AS v FROM s AS y) "
                    "SELECT t.v, z.c FROM t, s AS z"
                )
            )


class TestViewUnfolding:
    def test_constant_head_filters(self):
        # rule: R'(x, y) -> v(x, 5): the view's second column is constant.
        rdt = parse_transformer("rsrc(x, y) -> v(x, 5)")
        cq = ConjunctiveQuery([Atom("v", (Var(1), Var(2)))], [], [Var(1), Var(2)])
        unfolded = unfold_views([cq], rdt)
        assert len(unfolded) == 1
        # Variable 2 was forced to the constant 5 everywhere.
        assert unfolded[0].head[1] == Const(5)

    def test_contradictory_constant_drops_disjunct(self):
        rdt = parse_transformer("rsrc(x) -> v(3)")
        cq = ConjunctiveQuery([Atom("v", (Const(4),))], [], [Const(1)])
        assert unfold_views([cq], rdt) == []

    def test_repeated_head_variable_unifies(self):
        # rule: R'(x) -> v(x, x): both columns carry the same value.
        rdt = parse_transformer("rsrc(x) -> v(x, x)")
        cq = ConjunctiveQuery(
            [Atom("v", (Var(1), Var(2)))], [], [Var(1), Var(2)]
        )
        unfolded = unfold_views([cq], rdt)
        assert unfolded[0].head[0] == unfolded[0].head[1]

    def test_multiple_rules_unsupported(self):
        rdt = parse_transformer("a(x) -> v(x)\nb(x) -> v(x)")
        cq = ConjunctiveQuery([Atom("v", (Var(1),))], [], [Var(1)])
        with pytest.raises(UnsupportedError, match="several defining rules"):
            unfold_views([cq], rdt)

    def test_untouched_relations_pass_through(self):
        rdt = parse_transformer("rsrc(x, y) -> v(x, y)")
        cq = ConjunctiveQuery([Atom("w", (Var(1),))], [], [Var(1)])
        unfolded = unfold_views([cq], rdt)
        assert unfolded[0].atoms[0].relation == "w"


class TestUnionDecision:
    def test_empty_ucqs_are_equivalent(self):
        assert decide_ucq_equivalence([], [], DEADLINE)

    def test_empty_vs_nonempty(self):
        cq = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)])
        assert not decide_ucq_equivalence([], [cq], DEADLINE)

    def test_set_semantics_absorbs_contained_disjunct(self):
        # r(x,y) ∪ r(x,y)⋈r(y,z)  ≡  r(x,y)  under set semantics.
        broad = ConjunctiveQuery(
            [Atom("r", (Var(1), Var(2)))], [], [Var(1)], distinct=True
        )
        narrow = ConjunctiveQuery(
            [Atom("r", (Var(3), Var(4))), Atom("r", (Var(4), Var(5)))],
            [],
            [Var(3)],
            distinct=True,
        )
        assert decide_ucq_equivalence([broad, narrow], [broad], DEADLINE)

    def test_bag_semantics_does_not_absorb(self):
        broad = ConjunctiveQuery([Atom("r", (Var(1), Var(2)))], [], [Var(1)])
        narrow = ConjunctiveQuery(
            [Atom("r", (Var(3), Var(4))), Atom("r", (Var(4), Var(5)))],
            [],
            [Var(3)],
        )
        assert not decide_ucq_equivalence([broad, narrow], [broad], DEADLINE)
