"""Bounded model checker: generation, refutation, shrinking."""

import pytest

from repro.checkers.base import CheckRequest, Verdict
from repro.checkers.bounded import BoundedChecker
from repro.checkers.generation import InstanceGenerator, collect_constant_seeds
from repro.checkers.random_testing import RandomTester
from repro.core.equivalence import check_equivalence
from repro.cypher.parser import parse_cypher
from repro.sql.parser import parse_sql


class TestGeneration:
    def test_instances_satisfy_constraints(self, emp_dept_sdt):
        generator = InstanceGenerator(emp_dept_sdt.schema)
        for _ in range(50):
            instance = generator.random_instance(3)
            assert instance.constraint_violation() is None, str(instance)

    def test_bound_respected(self, emp_dept_sdt):
        generator = InstanceGenerator(emp_dept_sdt.schema)
        for _ in range(30):
            instance = generator.random_instance(2)
            for table in instance.tables.values():
                assert len(table) <= 2

    def test_constant_seeding(self):
        seeds = collect_constant_seeds(
            [parse_sql("SELECT e.name FROM emp AS e WHERE e.id = 42")], []
        )
        assert 42 in seeds["id"]

    def test_arithmetic_literals_seed_global_pool(self):
        seeds = collect_constant_seeds(
            [parse_sql("SELECT e.id + 7 AS x FROM emp AS e")], []
        )
        assert 7 in seeds[""]

    def test_in_values_seeded(self):
        seeds = collect_constant_seeds(
            [parse_sql("SELECT e.id FROM emp AS e WHERE e.name IN ('x', 'y')")], []
        )
        assert seeds["name"] == {"x", "y"}


class TestVerdicts:
    def _check(self, cypher_text, sql_text, schema, target_schema, transformer, **kw):
        checker = BoundedChecker(
            max_bound=kw.pop("max_bound", 3),
            samples_per_bound=kw.pop("samples", 200),
            time_budget_seconds=10.0,
            seed=kw.pop("seed", 5),
        )
        return check_equivalence(
            schema,
            parse_cypher(cypher_text, schema),
            target_schema,
            parse_sql(sql_text),
            transformer,
            checker,
        )

    def test_equivalent_pair_not_refuted(
        self, emp_dept_schema, merged_target_schema, merged_transformer
    ):
        result = self._check(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            "SELECT e.ename, d.dname FROM emp AS e JOIN dept AS d ON e.deptno = d.dno",
            emp_dept_schema,
            merged_target_schema,
            merged_transformer,
        )
        assert result.verdict is Verdict.BOUNDED_EQUIVALENT
        assert result.outcome.checked_bound >= 1

    def test_filter_bug_refuted_with_counterexample(
        self, emp_dept_schema, merged_target_schema, merged_transformer
    ):
        result = self._check(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE m.dnum = 1 RETURN n.name",
            "SELECT e.ename FROM emp AS e JOIN dept AS d ON e.deptno = d.dno "
            "WHERE d.dno = 2",
            emp_dept_schema,
            merged_target_schema,
            merged_transformer,
        )
        assert result.verdict is Verdict.NOT_EQUIVALENT
        assert result.counterexample is not None

    def test_shrunk_counterexample_is_minimal_ish(
        self, emp_dept_schema, merged_target_schema, merged_transformer
    ):
        result = self._check(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN DISTINCT m.dname",
            "SELECT d.dname FROM emp AS e JOIN dept AS d ON e.deptno = d.dno",
            emp_dept_schema,
            merged_target_schema,
            merged_transformer,
        )
        assert result.verdict is Verdict.NOT_EQUIVALENT
        # Missing DISTINCT needs two joining rows; shrinking should not go
        # far above that.
        assert result.counterexample.induced_database.total_rows() <= 6

    def test_counterexample_satisfies_transformer(
        self, emp_dept_schema, merged_target_schema, merged_transformer
    ):
        from repro.transformer.semantics import graph_relational_equivalent

        result = self._check(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.id + 1 AS x",
            "SELECT e.eid + 2 AS x FROM emp AS e JOIN dept AS d ON e.deptno = d.dno",
            emp_dept_schema,
            merged_target_schema,
            merged_transformer,
        )
        assert result.verdict is Verdict.NOT_EQUIVALENT
        cex = result.counterexample
        assert graph_relational_equivalent(
            merged_transformer, cex.graph, cex.target_database
        )


class TestRandomTester:
    def test_wraps_bounded_checker(
        self, emp_dept_schema, merged_target_schema, merged_transformer
    ):
        tester = RandomTester(bound=3, samples=120, seed=1)
        result = check_equivalence(
            emp_dept_schema,
            parse_cypher(
                "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name", emp_dept_schema
            ),
            merged_target_schema,
            parse_sql(
                "SELECT e.ename FROM emp AS e JOIN dept AS d ON e.deptno = d.dno"
            ),
            merged_transformer,
            tester,
        )
        assert result.verdict is Verdict.BOUNDED_EQUIVALENT
