"""Shared fixtures: the Figure-14 EMP/DEPT universe and sample instances."""

from __future__ import annotations

import pytest

from repro import (
    Database,
    EdgeType,
    GraphBuilder,
    GraphSchema,
    NodeType,
    Relation,
    RelationalSchema,
    parse_transformer,
)
from repro.core.sdt import infer_sdt
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
)


@pytest.fixture
def emp_dept_schema() -> GraphSchema:
    """The paper's Figure-14 graph schema."""
    return GraphSchema.of(
        [NodeType("EMP", ("id", "name")), NodeType("DEPT", ("dnum", "dname"))],
        [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
    )


@pytest.fixture
def emp_dept_sdt(emp_dept_schema):
    return infer_sdt(emp_dept_schema)


@pytest.fixture
def emp_dept_graph(emp_dept_schema) -> object:
    """The Figure-15 instance: A and B work at CS; EE is empty."""
    builder = GraphBuilder(emp_dept_schema)
    a = builder.add_node("EMP", id=1, name="A")
    b = builder.add_node("EMP", id=2, name="B")
    cs = builder.add_node("DEPT", dnum=1, dname="CS")
    builder.add_node("DEPT", dnum=2, dname="EE")
    builder.add_edge("WORK_AT", a, cs, wid=10)
    builder.add_edge("WORK_AT", b, cs, wid=11)
    return builder.build()


@pytest.fixture
def merged_target_schema() -> RelationalSchema:
    """A merged-design target: emp(id, name, deptno), dept(dno, dname)."""
    return RelationalSchema.of(
        [
            Relation("emp", ("eid", "ename", "deptno")),
            Relation("dept", ("dno", "dname")),
        ],
        IntegrityConstraints(
            (PrimaryKey("emp", "eid"), PrimaryKey("dept", "dno")),
            (ForeignKey("emp", "deptno", "dept", "dno"),),
            (NotNull("emp", "deptno"),),
        ),
    )


@pytest.fixture
def merged_transformer():
    return parse_transformer(
        """
        EMP(id, name), WORK_AT(wid, id, dnum) -> emp(wid, name, dnum)
        DEPT(dnum, dname) -> dept(dnum, dname)
        """
    )
