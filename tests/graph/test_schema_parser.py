"""Graph-schema declaration syntax."""

import pytest

from repro.common.errors import ParseError
from repro.graph.parser import parse_graph_schema

EMP_DEPT = """
# employees and departments
node EMP(id, name)
node DEPT(dnum, dname)
edge WORK_AT(wid): EMP -> DEPT
"""


class TestParse:
    def test_parses_nodes_and_edges(self):
        schema = parse_graph_schema(EMP_DEPT)
        assert schema.node_type("EMP").keys == ("id", "name")
        edge = schema.edge_type("WORK_AT")
        assert edge.source == "EMP"
        assert edge.target == "DEPT"

    def test_comments_ignored(self):
        schema = parse_graph_schema("node A(x)  -- trailing\n# whole line\n")
        assert schema.node_type("A").keys == ("x",)

    def test_case_insensitive_keywords(self):
        schema = parse_graph_schema("NODE A(x)\nNode B(y)\nEDGE E(z): A -> B")
        assert schema.has_edge_type("E")

    def test_empty_schema_rejected(self):
        with pytest.raises(ParseError):
            parse_graph_schema("\n\n")

    def test_bad_declaration_rejected(self):
        with pytest.raises(ParseError, match="cannot parse"):
            parse_graph_schema("nodes A(x)")

    def test_missing_keys_rejected(self):
        with pytest.raises(ParseError):
            parse_graph_schema("node A()")

    def test_dangling_edge_rejected(self):
        with pytest.raises(Exception):
            parse_graph_schema("node A(x)\nedge E(z): A -> MISSING")
