"""Graph-schema validation (paper Definitions 3.1-3.2)."""

import pytest

from repro.common.errors import SchemaError
from repro.graph.schema import EdgeType, GraphSchema, NodeType


class TestNodeType:
    def test_default_key_is_first(self):
        node = NodeType("EMP", ("id", "name"))
        assert node.default_key == "id"

    def test_requires_label(self):
        with pytest.raises(SchemaError):
            NodeType("", ("id",))

    def test_requires_keys(self):
        with pytest.raises(SchemaError):
            NodeType("EMP", ())

    def test_rejects_duplicate_keys(self):
        with pytest.raises(SchemaError):
            NodeType("EMP", ("id", "id"))


class TestEdgeType:
    def test_fields(self):
        edge = EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))
        assert edge.source == "EMP"
        assert edge.target == "DEPT"
        assert edge.default_key == "wid"

    def test_requires_keys(self):
        with pytest.raises(SchemaError):
            EdgeType("E", "A", "B", ())


class TestGraphSchema:
    def test_lookup_by_label(self, emp_dept_schema):
        assert emp_dept_schema.node_type("EMP").label == "EMP"
        assert emp_dept_schema.edge_type("WORK_AT").label == "WORK_AT"

    def test_unknown_label_raises(self, emp_dept_schema):
        with pytest.raises(SchemaError):
            emp_dept_schema.node_type("NOPE")
        with pytest.raises(SchemaError):
            emp_dept_schema.edge_type("NOPE")

    def test_type_of_resolves_both_kinds(self, emp_dept_schema):
        assert emp_dept_schema.type_of("EMP").label == "EMP"
        assert emp_dept_schema.type_of("WORK_AT").label == "WORK_AT"

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema.of(
                [NodeType("A", ("x",)), NodeType("A", ("y",))],
            )

    def test_node_edge_label_clash_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema.of(
                [NodeType("A", ("x",)), NodeType("B", ("y",))],
                [EdgeType("A", "A", "B", ("z",))],
            )

    def test_dangling_edge_endpoint_rejected(self):
        with pytest.raises(SchemaError):
            GraphSchema.of(
                [NodeType("A", ("x",))],
                [EdgeType("E", "A", "MISSING", ("z",))],
            )

    def test_property_keys_unique_across_schema(self):
        with pytest.raises(SchemaError):
            GraphSchema.of(
                [NodeType("A", ("id", "x")), NodeType("B", ("bid", "x"))],
            )

    def test_owner_of_key(self, emp_dept_schema):
        assert emp_dept_schema.owner_of_key("dname").label == "DEPT"
        with pytest.raises(SchemaError):
            emp_dept_schema.owner_of_key("unknown")

    def test_edges_between(self, emp_dept_schema):
        labels = [e.label for e in emp_dept_schema.edges_between("EMP", "DEPT")]
        assert labels == ["WORK_AT"]
        assert list(emp_dept_schema.edges_between("DEPT", "EMP")) == []

    def test_str_rendering(self, emp_dept_schema):
        text = str(emp_dept_schema)
        assert "EMP" in text and "WORK_AT" in text
