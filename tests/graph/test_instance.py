"""Property-graph instances and validation (Definition 3.3)."""

import pytest

from repro.common.errors import SchemaError
from repro.common.values import NULL, is_null
from repro.graph.builder import GraphBuilder
from repro.graph.instance import Node, PropertyGraph


class TestNodeAndEdge:
    def test_node_property_lookup(self):
        node = Node.of("EMP", {"id": 1, "name": "A"})
        assert node.value("id") == 1
        assert node.value("name") == "A"

    def test_missing_property_is_null(self):
        node = Node.of("EMP", {"id": 1})
        assert is_null(node.value("name"))

    def test_uids_are_unique(self):
        first = Node.of("EMP", {"id": 1})
        second = Node.of("EMP", {"id": 1})
        assert first.uid != second.uid


class TestGraphLookups:
    def test_nodes_with_label(self, emp_dept_graph):
        assert len(list(emp_dept_graph.nodes_with_label("EMP"))) == 2
        assert len(list(emp_dept_graph.nodes_with_label("DEPT"))) == 2

    def test_edges_with_label(self, emp_dept_graph):
        assert len(list(emp_dept_graph.edges_with_label("WORK_AT"))) == 2

    def test_edge_endpoints(self, emp_dept_graph):
        edge = next(emp_dept_graph.edges_with_label("WORK_AT"))
        assert emp_dept_graph.source_of(edge).label == "EMP"
        assert emp_dept_graph.target_of(edge).label == "DEPT"

    def test_type_of(self, emp_dept_graph):
        node = next(emp_dept_graph.nodes_with_label("EMP"))
        assert emp_dept_graph.type_of(node).default_key == "id"

    def test_len_counts_nodes_and_edges(self, emp_dept_graph):
        assert len(emp_dept_graph) == 6


class TestValidation:
    def test_valid_graph_passes(self, emp_dept_graph):
        emp_dept_graph.validate()

    def test_duplicate_default_key_rejected(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        builder.add_node("EMP", id=1, name="A")
        builder.add_node("EMP", id=1, name="B")
        with pytest.raises(SchemaError, match="duplicate default-key"):
            builder.build()

    def test_null_default_key_rejected(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        builder.add_node("EMP", id=NULL, name="A")
        with pytest.raises(SchemaError, match="NULL default property key"):
            builder.build()

    def test_wrong_endpoint_label_rejected(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        a = builder.add_node("EMP", id=1, name="A")
        b = builder.add_node("EMP", id=2, name="B")
        # Bypass the builder's checks by constructing the graph directly.
        from repro.graph.instance import Edge

        edge = Edge.of("WORK_AT", a, b, {"wid": 1})
        graph = PropertyGraph(emp_dept_schema, [a, b], [edge])
        with pytest.raises(SchemaError, match="target has label"):
            graph.validate()

    def test_undeclared_property_rejected(self, emp_dept_schema):
        node = Node.of("EMP", {"id": 1, "bogus": 2})
        graph = PropertyGraph(emp_dept_schema, [node])
        with pytest.raises(SchemaError, match="undeclared property key"):
            graph.validate()


class TestBuilder:
    def test_builder_requires_default_key(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        with pytest.raises(SchemaError, match="default key"):
            builder.add_node("EMP", name="A")

    def test_builder_rejects_unknown_keys(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        with pytest.raises(SchemaError, match="does not declare"):
            builder.add_node("EMP", id=1, salary=3)

    def test_builder_rejects_foreign_nodes(self, emp_dept_schema):
        builder = GraphBuilder(emp_dept_schema)
        other = GraphBuilder(emp_dept_schema)
        a = builder.add_node("EMP", id=1, name="A")
        d = other.add_node("DEPT", dnum=1, dname="CS")
        with pytest.raises(SchemaError, match="added to the builder"):
            builder.add_edge("WORK_AT", a, d, wid=1)
