"""SQL surface-syntax parsing into relational algebra."""

import pytest

from repro.common.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_sql


class TestSelectFrom:
    def test_simple_scan(self):
        query = parse_sql("SELECT e.name FROM emp AS e")
        assert isinstance(query, ast.Projection)
        assert isinstance(query.query, ast.Renaming)
        assert query.query.name == "e"

    def test_default_alias_is_table_name(self):
        query = parse_sql("SELECT emp.name FROM emp")
        assert query.query.name == "emp"

    def test_bare_alias_without_as(self):
        query = parse_sql("SELECT e.name FROM emp e")
        assert query.query.name == "e"

    def test_select_star_passthrough(self):
        query = parse_sql("SELECT * FROM emp AS e WHERE e.id = 1")
        assert isinstance(query, ast.Selection)

    def test_output_aliases(self):
        query = parse_sql("SELECT e.name AS who FROM emp AS e")
        assert query.columns[0].alias == "who"

    def test_default_output_name_is_local(self):
        query = parse_sql("SELECT e.name FROM emp AS e")
        assert query.columns[0].alias == "name"

    def test_distinct(self):
        query = parse_sql("SELECT DISTINCT e.name FROM emp AS e")
        assert query.distinct


class TestJoins:
    def test_comma_is_cross(self):
        query = parse_sql("SELECT a.x FROM r AS a, s AS b")
        join = query.query
        assert isinstance(join, ast.Join)
        assert join.kind is ast.JoinKind.CROSS

    def test_inner_join_on(self):
        query = parse_sql("SELECT a.x FROM r AS a JOIN s AS b ON a.x = b.y")
        assert query.query.kind is ast.JoinKind.INNER
        assert isinstance(query.query.predicate, ast.Comparison)

    @pytest.mark.parametrize(
        "keyword,kind",
        [
            ("LEFT JOIN", ast.JoinKind.LEFT),
            ("LEFT OUTER JOIN", ast.JoinKind.LEFT),
            ("RIGHT JOIN", ast.JoinKind.RIGHT),
            ("FULL OUTER JOIN", ast.JoinKind.FULL),
            ("CROSS JOIN", ast.JoinKind.CROSS),
        ],
    )
    def test_join_kinds(self, keyword, kind):
        query = parse_sql(f"SELECT a.x FROM r AS a {keyword} s AS b ON a.x = b.y"
                          if kind is not ast.JoinKind.CROSS
                          else f"SELECT a.x FROM r AS a {keyword} s AS b")
        assert query.query.kind is kind

    def test_from_subquery(self):
        query = parse_sql("SELECT t.x FROM (SELECT a.x FROM r AS a) AS t")
        renaming = query.query
        assert isinstance(renaming, ast.Renaming)
        assert isinstance(renaming.query, ast.Projection)


class TestGroupingAndOrdering:
    def test_group_by_with_aggregate(self):
        query = parse_sql(
            "SELECT d.name, COUNT(*) AS c FROM dept AS d GROUP BY d.name"
        )
        assert isinstance(query, ast.GroupBy)
        assert query.columns[1].expression == ast.Aggregate("Count", None)

    def test_bare_aggregate_becomes_global_group(self):
        query = parse_sql("SELECT COUNT(*) AS c FROM emp AS e")
        assert isinstance(query, ast.GroupBy)
        assert query.keys == ()

    def test_having(self):
        query = parse_sql(
            "SELECT d.name, COUNT(*) AS c FROM dept AS d GROUP BY d.name "
            "HAVING COUNT(*) > 1"
        )
        assert isinstance(query.having, ast.Comparison)

    def test_order_by_limit(self):
        query = parse_sql("SELECT e.id AS k FROM emp AS e ORDER BY k DESC LIMIT 5")
        assert isinstance(query, ast.OrderBy)
        assert query.ascending == (False,)
        assert query.limit == 5

    def test_order_by_select_item_uses_alias(self):
        query = parse_sql("SELECT e.id AS k FROM emp AS e ORDER BY e.id")
        assert query.keys == (ast.AttributeRef("k"),)


class TestSetOperations:
    def test_union(self):
        query = parse_sql("SELECT a.x FROM r AS a UNION SELECT b.y FROM s AS b")
        assert isinstance(query, ast.UnionOp)
        assert not query.all

    def test_union_all(self):
        query = parse_sql("SELECT a.x FROM r AS a UNION ALL SELECT b.y FROM s AS b")
        assert query.all


class TestSubqueriesAndPredicates:
    def test_in_subquery(self):
        query = parse_sql(
            "SELECT a.x FROM r AS a WHERE a.x IN (SELECT b.y FROM s AS b)"
        )
        predicate = query.query.predicate
        assert isinstance(predicate, ast.InQuery)

    def test_not_in_values(self):
        query = parse_sql("SELECT a.x FROM r AS a WHERE a.x NOT IN (1, 2)")
        assert isinstance(query.query.predicate, ast.Not)

    def test_exists(self):
        query = parse_sql(
            "SELECT a.x FROM r AS a WHERE EXISTS (SELECT b.y FROM s AS b)"
        )
        assert isinstance(query.query.predicate, ast.ExistsQuery)

    def test_is_null(self):
        query = parse_sql("SELECT a.x FROM r AS a WHERE a.x IS NOT NULL")
        assert query.query.predicate.negated

    def test_parenthesised_predicates(self):
        query = parse_sql(
            "SELECT a.x FROM r AS a WHERE (a.x = 1 OR a.y = 2) AND a.z = 3"
        )
        assert isinstance(query.query.predicate, ast.And)

    def test_arithmetic_in_select(self):
        query = parse_sql("SELECT a.x + 1 AS bumped FROM r AS a")
        assert isinstance(query.columns[0].expression, ast.BinaryOp)


class TestWith:
    def test_single_cte(self):
        query = parse_sql(
            "WITH t AS (SELECT a.x FROM r AS a) SELECT t.x FROM t"
        )
        assert isinstance(query, ast.WithQuery)
        assert query.name == "t"

    def test_multiple_ctes_nest(self):
        query = parse_sql(
            "WITH t1 AS (SELECT a.x FROM r AS a), "
            "t2 AS (SELECT t1.x FROM t1) SELECT t2.x FROM t2"
        )
        assert isinstance(query, ast.WithQuery)
        assert isinstance(query.body, ast.WithQuery)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT a.x FROM r AS a bogus nonsense extra")

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT 1")

    def test_distinct_star_rejected(self):
        with pytest.raises(ParseError):
            parse_sql("SELECT DISTINCT * FROM r AS a")
