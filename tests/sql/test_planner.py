"""Golden tests for the cost-based planner: specific rewrites must fire."""

import pytest

from repro.common.values import NULL
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.relational.instance import Database, tables_equivalent
from repro.relational.schema import Relation, RelationalSchema
from repro.sql import ast
from repro.sql.analysis import iter_nodes
from repro.sql.optimize import optimize
from repro.sql.planner import CardinalityEstimator, common_subplans
from repro.sql.semantics import evaluate_query
from repro.sql.stats import TableStats, collect_stats


@pytest.fixture
def db() -> Database:
    schema = RelationalSchema.of(
        [Relation("r", ("a", "b")), Relation("s", ("c", "d"))]
    )
    database = Database(schema)
    for row in [(1, 10), (2, 10), (3, NULL)]:
        database.insert("r", row)
    for row in [(10, "x"), (20, "y")]:
        database.insert("s", row)
    return database


def transpiled(cypher: str, schema, sdt) -> ast.Query:
    return transpile(parse_cypher(cypher, schema), schema, sdt)


def joins_of(query: ast.Query) -> list[ast.Join]:
    return [n for n in iter_nodes(query) if isinstance(n, ast.Join)]


def leftmost_leaf(query: ast.Query) -> ast.Query:
    while isinstance(query, (ast.Join, ast.Selection, ast.Projection)):
        query = query.left if isinstance(query, ast.Join) else query.query
    return query


class TestCrossProductElimination:
    def test_one_hop_becomes_equi_joins(self, emp_dept_schema, emp_dept_sdt):
        raw = transpiled(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            emp_dept_schema,
            emp_dept_sdt,
        )
        planned = optimize(raw, level=2, schema=emp_dept_sdt.schema)
        joins = joins_of(planned)
        assert joins, "join tree expected"
        assert all(j.kind is ast.JoinKind.INNER for j in joins)
        assert all(j.predicate != ast.TRUE for j in joins)

    def test_single_table_conjunct_pushed_to_scan(
        self, emp_dept_schema, emp_dept_sdt
    ):
        raw = transpiled(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id = 3 "
            "RETURN n.name, m.dname",
            emp_dept_schema,
            emp_dept_sdt,
        )
        planned = optimize(raw, level=2, schema=emp_dept_sdt.schema)
        # The filter must sit directly on the EMP scan, below every join.
        selections = [
            n
            for n in iter_nodes(planned)
            if isinstance(n, ast.Selection)
            and isinstance(n.query, ast.Renaming)
            and isinstance(n.query.query, ast.Relation)
            and n.query.query.name == "EMP"
        ]
        assert selections, "pushed-down selection on the EMP scan expected"


class TestJoinReordering:
    def test_skewed_stats_put_small_filtered_table_first(
        self, emp_dept_schema, emp_dept_sdt
    ):
        raw = transpiled(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            emp_dept_schema,
            emp_dept_sdt,
        )
        skewed = {
            "EMP": TableStats(100000, {"id": 100000}),
            "WORK_AT": TableStats(50000, {"SRC": 50000, "TGT": 50000}),
            "DEPT": TableStats(3, {"dnum": 3}),
        }
        planned = optimize(
            raw, level=2, schema=emp_dept_sdt.schema, stats=skewed
        )
        start = leftmost_leaf(planned)
        assert isinstance(start, ast.Renaming) and start.name == "m", (
            "the tiny DEPT scan should drive the join"
        )
        # And with the skew inverted the planner must start elsewhere.
        inverted = {
            "EMP": TableStats(3, {"id": 3}),
            "WORK_AT": TableStats(50000, {"SRC": 50000, "TGT": 50000}),
            "DEPT": TableStats(100000, {"dnum": 100000}),
        }
        replanned = optimize(
            raw, level=2, schema=emp_dept_sdt.schema, stats=inverted
        )
        assert leftmost_leaf(replanned).name == "n"

    def test_reordered_plan_keeps_output(self, emp_dept_schema, emp_dept_sdt):
        from repro.execution.datagen import MockDataGenerator

        raw = transpiled(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            emp_dept_schema,
            emp_dept_sdt,
        )
        database = MockDataGenerator(emp_dept_schema, emp_dept_sdt).induced_instance(20)
        skewed = {
            "EMP": TableStats(100000, {"id": 100000}),
            "WORK_AT": TableStats(50000, {"SRC": 50000, "TGT": 50000}),
            "DEPT": TableStats(3, {"dnum": 3}),
        }
        planned = optimize(raw, level=2, schema=emp_dept_sdt.schema, stats=skewed)
        assert tables_equivalent(
            evaluate_query(raw, database), evaluate_query(planned, database)
        )


class TestColumnPruning:
    def test_optional_match_narrows_join_sides(self, emp_dept_schema, emp_dept_sdt):
        cypher = (
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN n.name, m.dname"
        )
        raw = transpiled(cypher, emp_dept_schema, emp_dept_sdt)
        level1 = optimize(raw, level=1)
        level2 = optimize(raw, level=2, schema=emp_dept_sdt.schema)

        def widths(query):
            return sorted(
                len(n.columns)
                for n in iter_nodes(query)
                if isinstance(n, ast.Projection)
            )

        left_join = next(
            n
            for n in iter_nodes(level2)
            if isinstance(n, ast.Join) and n.kind is ast.JoinKind.LEFT
        )
        assert isinstance(left_join.right, ast.Projection)
        # The optional side used to carry every EMP/WORK_AT/DEPT attribute;
        # only the join key and the returned dname are actually consumed.
        assert {c.alias for c in left_join.right.columns} == {
            "T2.n_id",
            "T2.m_dname",
        }
        assert sum(widths(level2)) < sum(widths(level1))

    def test_root_output_is_preserved(self, emp_dept_schema, emp_dept_sdt):
        from repro.execution.datagen import MockDataGenerator

        cypher = (
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN n.name, m.dname"
        )
        raw = transpiled(cypher, emp_dept_schema, emp_dept_sdt)
        level2 = optimize(raw, level=2, schema=emp_dept_sdt.schema)
        database = MockDataGenerator(emp_dept_schema, emp_dept_sdt).induced_instance(15)
        assert tables_equivalent(
            evaluate_query(raw, database), evaluate_query(level2, database)
        )


class TestCommonSubplans:
    def _repeated_branch(self) -> ast.Query:
        return ast.Projection(
            ast.Selection(
                ast.Renaming("x", ast.Relation("r")),
                ast.Comparison("=", ast.AttributeRef("x.b"), ast.Literal(10)),
            ),
            (
                ast.OutputColumn("a", ast.AttributeRef("x.a")),
                ast.OutputColumn("b", ast.AttributeRef("x.b")),
            ),
        )

    def test_repeated_union_branch_hoisted_into_cte(self, db):
        query = ast.UnionOp(self._repeated_branch(), self._repeated_branch(), all=True)
        hoisted = common_subplans(query, db.schema)
        assert isinstance(hoisted, ast.WithQuery)
        references = [
            n
            for n in iter_nodes(hoisted.body)
            if isinstance(n, ast.Relation) and n.name == hoisted.name
        ]
        assert len(references) == 2
        assert tables_equivalent(
            evaluate_query(query, db), evaluate_query(hoisted, db)
        )

    def test_correlated_subtree_not_hoisted(self, db):
        # x.c never resolves inside the branch — hoisting would break scoping.
        correlated = ast.Projection(
            ast.Selection(
                ast.Renaming("x", ast.Relation("r")),
                ast.Comparison("=", ast.AttributeRef("outer.c"), ast.Literal(10)),
            ),
            (
                ast.OutputColumn("a", ast.AttributeRef("x.a")),
                ast.OutputColumn("b", ast.AttributeRef("x.b")),
            ),
        )
        query = ast.UnionOp(correlated, correlated, all=True)
        assert common_subplans(query, db.schema) == query


class TestEstimator:
    def test_stats_drive_cardinalities(self, db):
        stats = collect_stats(db)
        assert stats["r"].row_count == 3
        assert stats["r"].distinct_of("b") == 1  # 10, 10, NULL
        estimator = CardinalityEstimator(db.schema, stats)
        assert estimator.cardinality(ast.Relation("r")) == 3.0
        filtered = ast.Selection(
            ast.Relation("r"),
            ast.Comparison("=", ast.AttributeRef("b"), ast.Literal(10)),
        )
        assert estimator.cardinality(filtered) == pytest.approx(3.0)
        cross = ast.Join(ast.JoinKind.CROSS, ast.Relation("r"), ast.Relation("s"))
        assert estimator.cardinality(cross) == 6.0

    def test_defaults_without_stats(self, db):
        estimator = CardinalityEstimator(db.schema, None)
        assert estimator.cardinality(ast.Relation("r")) == 1000.0


class TestLevels:
    def test_level_zero_is_identity(self, emp_dept_schema, emp_dept_sdt):
        raw = transpiled(
            "MATCH (n:EMP) RETURN n.name", emp_dept_schema, emp_dept_sdt
        )
        assert optimize(raw, level=0) is raw

    def test_level_two_without_schema_falls_back_to_level_one(
        self, emp_dept_schema, emp_dept_sdt
    ):
        raw = transpiled(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name",
            emp_dept_schema,
            emp_dept_sdt,
        )
        assert optimize(raw, level=2) == optimize(raw, level=1)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            optimize(ast.Relation("r"), level=7)

    def test_optimize_is_idempotent(self, emp_dept_schema, emp_dept_sdt):
        raw = transpiled(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WHERE n.id = 1 RETURN n.name",
            emp_dept_schema,
            emp_dept_sdt,
        )
        once = optimize(raw, level=1)
        assert optimize(once, level=1) == once
