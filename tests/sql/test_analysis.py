"""SQL static analyses: sizes, relations, feature detection."""

import pytest

from repro.sql import ast
from repro.sql.analysis import (
    ast_size,
    iter_nodes,
    referenced_relations,
    uses_aggregation,
    uses_order_by,
    uses_outer_join,
)
from repro.sql.parser import parse_sql


class TestReferencedRelations:
    def test_simple(self):
        query = parse_sql("SELECT e.x FROM emp AS e JOIN dept AS d ON e.x = d.y")
        assert referenced_relations(query) == {"emp", "dept"}

    def test_subqueries_included(self):
        query = parse_sql(
            "SELECT e.x FROM emp AS e WHERE e.x IN (SELECT s.y FROM shadow AS s)"
        )
        assert referenced_relations(query) == {"emp", "shadow"}

    def test_cte_names_excluded(self):
        query = parse_sql(
            "WITH t AS (SELECT e.x FROM emp AS e) SELECT t.x FROM t"
        )
        assert referenced_relations(query) == {"emp"}


class TestFeatureDetection:
    def test_aggregation(self):
        assert uses_aggregation(parse_sql("SELECT COUNT(*) AS c FROM t"))
        assert not uses_aggregation(parse_sql("SELECT t.x FROM t"))

    def test_outer_join(self):
        assert uses_outer_join(
            parse_sql("SELECT a.x FROM r AS a LEFT JOIN s AS b ON a.x = b.y")
        )
        assert not uses_outer_join(
            parse_sql("SELECT a.x FROM r AS a JOIN s AS b ON a.x = b.y")
        )

    def test_order_by(self):
        assert uses_order_by(parse_sql("SELECT t.x AS k FROM t ORDER BY k"))
        assert not uses_order_by(parse_sql("SELECT t.x FROM t"))

    def test_features_inside_subqueries_found(self):
        query = parse_sql(
            "SELECT a.x FROM r AS a WHERE EXISTS "
            "(SELECT b.y FROM s AS b LEFT JOIN u AS c ON b.y = c.z)"
        )
        assert uses_outer_join(query)


class TestAstSize:
    def test_size_positive_and_monotone(self):
        small = parse_sql("SELECT t.x FROM t")
        large = parse_sql("SELECT t.x FROM t WHERE t.x = 1 AND t.y < 2")
        assert 0 < ast_size(small) < ast_size(large)

    def test_iter_nodes_covers_predicates(self):
        query = parse_sql("SELECT t.x FROM t WHERE t.x IS NOT NULL")
        kinds = {type(node).__name__ for node in iter_nodes(query)}
        assert "IsNull" in kinds
        assert "Relation" in kinds

    def test_rejects_non_nodes(self):
        with pytest.raises(TypeError):
            ast_size(42)
