"""Golden planner tests: the recursive-CTE vs bounded-unrolling choice.

Level 2 rewrites a bounded variable-length traversal into a UNION of
k-hop join chains when the statistics-estimated chain growth is cheap,
and keeps the cycle-safe recursive CTE otherwise (open bounds, too many
hops, or explosive fan-out).
"""

from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.sql import ast
from repro.sql.analysis import iter_nodes, uses_recursion
from repro.sql.optimize import optimize
from repro.sql.planner import (
    UNROLL_MAX_HOPS,
    CardinalityEstimator,
    expand_recursions,
)
from repro.sql.stats import TableStats

SCHEMA = GraphSchema.of(
    [NodeType("USER", ("uid", "uname"))],
    [EdgeType("FOLLOWS", "USER", "USER", ("fid",))],
)
SDT = infer_sdt(SCHEMA)


def plan(text: str, level: int = 2, stats=None) -> ast.Query:
    query = parse_cypher(text, SCHEMA)
    return optimize(
        transpile(query, SCHEMA, SDT), level=level, schema=SDT.schema, stats=stats
    )


def union_branches(query: ast.Query) -> int:
    """Distinct-union fan-in of the unrolled reach subtree."""
    return sum(
        1
        for node in iter_nodes(query)
        if isinstance(node, ast.UnionOp) and not node.all
    )


class TestPlanChoice:
    def test_bounded_traversal_unrolls_at_level_2(self):
        planned = plan("MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid")
        assert not uses_recursion(planned)

    def test_level_1_keeps_the_recursive_cte(self):
        planned = plan(
            "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid", level=1
        )
        assert uses_recursion(planned)

    def test_open_upper_bound_stays_recursive(self):
        planned = plan("MATCH (a:USER)-[:FOLLOWS*]->(b:USER) RETURN a.uid, b.uid")
        assert uses_recursion(planned)
        planned = plan("MATCH (a:USER)-[:FOLLOWS*2..]->(b:USER) RETURN a.uid, b.uid")
        assert uses_recursion(planned)

    def test_deep_bounds_stay_recursive(self):
        hops = UNROLL_MAX_HOPS + 1
        planned = plan(
            f"MATCH (a:USER)-[:FOLLOWS*1..{hops}]->(b:USER) RETURN a.uid, b.uid"
        )
        assert uses_recursion(planned)

    def test_explosive_fanout_statistics_keep_recursion(self):
        # 50k edges all leaving one node: per-hop fan-out 50k, so the
        # unrolled 3-hop chain would be astronomically large.
        stats = {
            "FOLLOWS": TableStats(50_000, {"fid": 50_000, "SRC": 1, "TGT": 50_000}),
            "USER": TableStats(1_000, {"uid": 1_000}),
        }
        planned = plan(
            "MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN a.uid, b.uid",
            stats=stats,
        )
        assert uses_recursion(planned)

    def test_modest_fanout_statistics_unroll(self):
        stats = {
            "FOLLOWS": TableStats(2_000, {"fid": 2_000, "SRC": 900, "TGT": 900}),
            "USER": TableStats(1_000, {"uid": 1_000}),
        }
        planned = plan(
            "MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN a.uid, b.uid",
            stats=stats,
        )
        assert not uses_recursion(planned)

    def test_unrolled_branch_count_matches_hop_range(self):
        # *2..3 → chains for k = 2 and k = 3, merged by one distinct union.
        query = parse_cypher(
            "MATCH (a:USER)-[:FOLLOWS*2..3]->(b:USER) RETURN a.uid, b.uid", SCHEMA
        )
        raw = transpile(query, SCHEMA, SDT)
        estimator = CardinalityEstimator(SDT.schema, None)
        expanded = expand_recursions(raw, estimator)
        assert not uses_recursion(expanded)
        assert union_branches(expanded) - union_branches(raw) == 1

    def test_zero_hop_identity_union_survives_unrolling(self):
        planned = plan("MATCH (a:USER)-[:FOLLOWS*0..2]->(b:USER) RETURN a.uid, b.uid")
        assert not uses_recursion(planned)
        # The identity branch scans the node table inside the reach subtree.
        scans = [
            node.name
            for node in iter_nodes(planned)
            if isinstance(node, ast.Relation)
        ]
        assert "USER" in scans

    def test_exists_subquery_traversals_are_planned_too(self):
        planned = plan(
            "MATCH (a:USER) WHERE EXISTS { MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) } "
            "RETURN a.uid"
        )
        assert not uses_recursion(planned)
