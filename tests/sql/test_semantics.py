"""SQL reference evaluator: bag semantics, 3VL, correlated subqueries."""

import pytest

from repro.common.errors import SemanticsError
from repro.common.values import NULL, is_null
from repro.relational.instance import Database, Table
from repro.relational.schema import Relation, RelationalSchema
from repro.sql.parser import parse_sql
from repro.sql.semantics import evaluate_query


@pytest.fixture
def db() -> Database:
    schema = RelationalSchema.of(
        [
            Relation("emp", ("id", "name", "dept")),
            Relation("dept", ("dno", "dname")),
        ]
    )
    database = Database(schema)
    for row in [(1, "A", 10), (2, "B", 10), (3, "C", NULL)]:
        database.insert("emp", row)
    for row in [(10, "CS"), (20, "EE")]:
        database.insert("dept", row)
    return database


def run(text, database):
    return evaluate_query(parse_sql(text), database)


class TestProjectionsAndSelections:
    def test_scan(self, db):
        assert len(run("SELECT e.id FROM emp AS e", db)) == 3

    def test_projection_renames(self, db):
        result = run("SELECT e.name AS who FROM emp AS e", db)
        assert result.attributes == ("who",)

    def test_where_filters(self, db):
        result = run("SELECT e.name FROM emp AS e WHERE e.dept = 10", db)
        assert sorted(result.column("name")) == ["A", "B"]

    def test_null_comparison_excluded(self, db):
        result = run("SELECT e.name FROM emp AS e WHERE e.dept <> 10", db)
        assert len(result) == 0  # C's NULL dept is UNKNOWN, not TRUE

    def test_is_null(self, db):
        result = run("SELECT e.name FROM emp AS e WHERE e.dept IS NULL", db)
        assert result.column("name") == ["C"]

    def test_distinct(self, db):
        result = run("SELECT DISTINCT e.dept FROM emp AS e WHERE e.dept = 10", db)
        assert len(result) == 1

    def test_unqualified_resolution(self, db):
        result = run("SELECT name FROM emp AS e WHERE id = 1", db)
        assert result.column("name") == ["A"]

    def test_unknown_attribute_raises(self, db):
        with pytest.raises(SemanticsError, match="unknown attribute"):
            run("SELECT e.salary FROM emp AS e", db)


class TestJoins:
    def test_inner_join(self, db):
        result = run(
            "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d ON e.dept = d.dno",
            db,
        )
        assert sorted(result.rows) == [("A", "CS"), ("B", "CS")]

    def test_left_join_null_pads(self, db):
        result = run(
            "SELECT e.name, d.dname FROM emp AS e LEFT JOIN dept AS d "
            "ON e.dept = d.dno",
            db,
        )
        assert ("C", NULL) in result.rows
        assert len(result) == 3

    def test_right_join(self, db):
        result = run(
            "SELECT e.name, d.dname FROM emp AS e RIGHT JOIN dept AS d "
            "ON e.dept = d.dno",
            db,
        )
        assert (NULL, "EE") in result.rows

    def test_full_join(self, db):
        result = run(
            "SELECT e.name, d.dname FROM emp AS e FULL JOIN dept AS d "
            "ON e.dept = d.dno",
            db,
        )
        assert ("C", NULL) in result.rows
        assert (NULL, "EE") in result.rows

    def test_cross_join_multiplicities(self, db):
        result = run("SELECT e.name, d.dname FROM emp AS e, dept AS d", db)
        assert len(result) == 6


class TestAggregation:
    def test_group_by_count(self, db):
        result = run(
            "SELECT e.dept, COUNT(*) AS c FROM emp AS e GROUP BY e.dept", db
        )
        assert sorted(result.rows, key=repr) == sorted(
            [(10, 2), (NULL, 1)], key=repr
        )

    def test_group_by_null_groups_together(self, db):
        db.insert("emp", (4, "D", NULL))
        result = run(
            "SELECT e.dept, COUNT(*) AS c FROM emp AS e GROUP BY e.dept", db
        )
        assert (NULL, 2) in result.rows

    def test_having(self, db):
        result = run(
            "SELECT e.dept, COUNT(*) AS c FROM emp AS e GROUP BY e.dept "
            "HAVING COUNT(*) > 1",
            db,
        )
        assert result.rows == [(10, 2)]

    def test_sum_avg(self, db):
        result = run("SELECT SUM(e.id) AS s, AVG(e.id) AS a FROM emp AS e", db)
        assert result.rows == [(6, 2.0)]

    def test_count_column_skips_nulls(self, db):
        result = run("SELECT COUNT(e.dept) AS c FROM emp AS e", db)
        assert result.rows == [(2,)]

    def test_empty_input_global_aggregate_is_empty(self, db):
        # The paper's Appendix-A-aligned semantics: no input rows → no groups.
        result = run("SELECT COUNT(*) AS c FROM emp AS e WHERE e.id > 99", db)
        assert len(result) == 0

    def test_aggregate_outside_group_by_rejected(self, db):
        from repro.sql import ast

        bad = ast.Projection(
            ast.Relation("emp"),
            (ast.OutputColumn("c", ast.Aggregate("Count", None)),),
        )
        with pytest.raises(SemanticsError, match="aggregate"):
            evaluate_query(bad, db)


class TestSubqueries:
    def test_uncorrelated_in(self, db):
        result = run(
            "SELECT e.name FROM emp AS e WHERE e.dept IN "
            "(SELECT d.dno FROM dept AS d)",
            db,
        )
        assert sorted(result.column("name")) == ["A", "B"]

    def test_correlated_exists(self, db):
        result = run(
            "SELECT d.dname FROM dept AS d WHERE EXISTS "
            "(SELECT e.id FROM emp AS e WHERE e.dept = d.dno)",
            db,
        )
        assert result.column("dname") == ["CS"]

    def test_not_exists(self, db):
        result = run(
            "SELECT d.dname FROM dept AS d WHERE NOT EXISTS "
            "(SELECT e.id FROM emp AS e WHERE e.dept = d.dno)",
            db,
        )
        assert result.column("dname") == ["EE"]

    def test_in_with_null_operand_is_filtered(self, db):
        result = run(
            "SELECT e.name FROM emp AS e WHERE e.dept IN (10, 20)", db
        )
        assert "C" not in result.column("name")

    def test_with_cte(self, db):
        result = run(
            "WITH big AS (SELECT e.id AS i FROM emp AS e WHERE e.id > 1) "
            "SELECT big.i FROM big",
            db,
        )
        assert sorted(result.column("i")) == [2, 3]


class TestSetOperations:
    def test_union_dedups(self, db):
        result = run(
            "SELECT e.dept FROM emp AS e UNION SELECT e2.dept FROM emp AS e2", db
        )
        assert len(result) == 2  # {10, NULL}

    def test_union_all(self, db):
        result = run(
            "SELECT e.dept FROM emp AS e UNION ALL SELECT e2.dept FROM emp AS e2",
            db,
        )
        assert len(result) == 6

    def test_union_arity_mismatch(self, db):
        with pytest.raises(SemanticsError, match="arity"):
            run(
                "SELECT e.id FROM emp AS e UNION SELECT d.dno, d.dname "
                "FROM dept AS d",
                db,
            )


class TestOrdering:
    def test_order_by_asc_desc(self, db):
        result = run("SELECT e.id AS k FROM emp AS e ORDER BY k DESC", db)
        assert result.column("k") == [3, 2, 1]
        assert result.ordered

    def test_limit(self, db):
        result = run("SELECT e.id AS k FROM emp AS e ORDER BY k LIMIT 2", db)
        assert result.column("k") == [1, 2]

    def test_nulls_sort_first(self, db):
        result = run("SELECT e.dept AS k FROM emp AS e ORDER BY k", db)
        assert is_null(result.column("k")[0])


class TestRenamingSemantics:
    def test_renaming_qualifies_attributes(self, db):
        from repro.sql import ast

        renamed = ast.Renaming("T", ast.Renaming("e", ast.Relation("emp")))
        result = evaluate_query(renamed, db)
        assert result.attributes == ("T.e_id", "T.e_name", "T.e_dept")

    def test_join_attribute_collision_rejected(self, db):
        from repro.sql import ast

        bad = ast.Join(
            ast.JoinKind.CROSS, ast.Relation("emp"), ast.Relation("emp")
        )
        with pytest.raises(SemanticsError, match="duplicate attribute"):
            evaluate_query(bad, db)
