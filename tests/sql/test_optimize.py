"""Algebra optimizer: rewrites fire and preserve semantics."""

import pytest

from repro.common.values import NULL
from repro.relational.instance import Database, tables_equivalent
from repro.relational.schema import Relation, RelationalSchema
from repro.sql import ast
from repro.sql.optimize import optimize
from repro.sql.parser import parse_sql
from repro.sql.semantics import evaluate_query


@pytest.fixture
def db() -> Database:
    schema = RelationalSchema.of(
        [Relation("r", ("a", "b")), Relation("s", ("c", "d"))]
    )
    database = Database(schema)
    for row in [(1, 10), (2, 10), (3, NULL)]:
        database.insert("r", row)
    for row in [(10, "x"), (20, "y")]:
        database.insert("s", row)
    return database


def assert_equivalent_after_optimize(query: ast.Query, db: Database) -> ast.Query:
    optimized = optimize(query)
    assert tables_equivalent(
        evaluate_query(query, db), evaluate_query(optimized, db)
    )
    return optimized


class TestRewrites:
    def test_true_selection_removed(self, db):
        query = ast.Selection(ast.Relation("r"), ast.TRUE)
        assert optimize(query) == ast.Relation("r")

    def test_selections_merge(self, db):
        inner = ast.Selection(
            ast.Relation("r"),
            ast.Comparison("=", ast.AttributeRef("b"), ast.Literal(10)),
        )
        outer = ast.Selection(
            inner, ast.Comparison("<", ast.AttributeRef("a"), ast.Literal(2))
        )
        optimized = assert_equivalent_after_optimize(outer, db)
        assert isinstance(optimized, ast.Selection)
        assert isinstance(optimized.query, ast.Relation)

    def test_projection_composition(self, db):
        inner = ast.Projection(
            ast.Relation("r"),
            (
                ast.OutputColumn("x", ast.AttributeRef("a")),
                ast.OutputColumn("y", ast.AttributeRef("b")),
            ),
        )
        outer = ast.Projection(
            inner,
            (ast.OutputColumn("z", ast.BinaryOp("+", ast.AttributeRef("x"), ast.Literal(1))),),
        )
        optimized = assert_equivalent_after_optimize(outer, db)
        assert isinstance(optimized, ast.Projection)
        assert isinstance(optimized.query, ast.Relation)

    def test_selection_pushes_below_projection(self, db):
        projected = ast.Projection(
            ast.Relation("r"), (ast.OutputColumn("x", ast.AttributeRef("a")),)
        )
        selected = ast.Selection(
            projected, ast.Comparison("=", ast.AttributeRef("x"), ast.Literal(1))
        )
        optimized = assert_equivalent_after_optimize(selected, db)
        assert isinstance(optimized, ast.Projection)

    def test_distinct_projection_not_composed(self, db):
        inner = ast.Projection(
            ast.Relation("r"),
            (ast.OutputColumn("x", ast.AttributeRef("b")),),
            distinct=True,
        )
        outer = ast.Projection(
            inner, (ast.OutputColumn("y", ast.AttributeRef("x")),)
        )
        optimized = assert_equivalent_after_optimize(outer, db)
        # The DISTINCT barrier must survive.
        assert isinstance(optimized, ast.Projection)
        assert isinstance(optimized.query, ast.Projection)
        assert optimized.query.distinct

    def test_renaming_of_projection_folds(self, db):
        inner = ast.Projection(
            ast.Relation("r"), (ast.OutputColumn("x", ast.AttributeRef("a")),)
        )
        renamed = ast.Renaming("T", inner)
        optimized = assert_equivalent_after_optimize(renamed, db)
        assert isinstance(optimized, ast.Projection)
        assert optimized.columns[0].alias == "T.x"

    def test_group_by_absorbs_projection(self, db):
        inner = ast.Projection(
            ast.Relation("r"),
            (
                ast.OutputColumn("x", ast.AttributeRef("a")),
                ast.OutputColumn("y", ast.AttributeRef("b")),
            ),
        )
        grouped = ast.GroupBy(
            inner,
            (ast.AttributeRef("y"),),
            (
                ast.OutputColumn("grp", ast.AttributeRef("y")),
                ast.OutputColumn("c", ast.Aggregate("Count", None)),
            ),
        )
        optimized = assert_equivalent_after_optimize(grouped, db)
        assert isinstance(optimized, ast.GroupBy)
        assert isinstance(optimized.query, ast.Relation)

    def test_correlated_predicate_blocks_pushdown(self, db):
        # EXISTS subqueries must not be moved through projections.
        projected = ast.Projection(
            ast.Relation("r"), (ast.OutputColumn("x", ast.AttributeRef("a")),)
        )
        selected = ast.Selection(
            projected,
            ast.ExistsQuery(
                ast.Selection(
                    ast.Renaming("s1", ast.Relation("s")),
                    ast.Comparison(
                        "=", ast.AttributeRef("s1.c"), ast.AttributeRef("x")
                    ),
                )
            ),
        )
        optimized = assert_equivalent_after_optimize(selected, db)
        assert isinstance(optimized, ast.Selection)  # unchanged shape


class TestOnParsedQueries:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT x.a FROM r AS x WHERE x.b = 10",
            "SELECT x.a, y.d FROM r AS x JOIN s AS y ON x.b = y.c",
            "SELECT x.b, COUNT(*) AS c FROM r AS x GROUP BY x.b",
            "SELECT DISTINCT x.b FROM r AS x",
            "SELECT x.a FROM r AS x UNION ALL SELECT y.c FROM s AS y",
            "SELECT x.a AS k FROM r AS x ORDER BY k DESC LIMIT 2",
        ],
    )
    def test_optimizer_preserves_semantics(self, sql, db):
        assert_equivalent_after_optimize(parse_sql(sql), db)

    def test_transpiled_query_flattens(self, emp_dept_schema, emp_dept_sdt):
        from repro.core.transpile import transpile
        from repro.cypher.parser import parse_cypher
        from repro.sql.analysis import ast_size

        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            emp_dept_schema,
        )
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        optimized = optimize(translated)
        assert ast_size(optimized) < ast_size(translated)
