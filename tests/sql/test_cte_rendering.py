"""Figure-7-style CTE rendering: presentation equals semantics."""

import pytest

from repro.checkers.generation import InstanceGenerator
from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.execution.sqlite_backend import run_sql_text
from repro.relational.instance import Table, tables_equivalent
from repro.sql.pretty import to_cte_sql
from repro.sql.semantics import evaluate_query


def cross_validate(text, schema, query, seeds=6):
    generator = InstanceGenerator(schema)
    generator.rng.seed(99)
    for _ in range(seeds):
        instance = generator.random_instance(3)
        reference = evaluate_query(query, instance)
        rendered = run_sql_text(text, instance)
        bag = Table(reference.attributes, list(reference.rows))
        assert tables_equivalent(bag, rendered), text


class TestCteRendering:
    def test_multi_match_produces_ctes(self, emp_dept_schema, emp_dept_sdt):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) RETURN n.name, n2.name",
            emp_dept_schema,
        )
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        text = to_cte_sql(translated, emp_dept_sdt.schema)
        assert text.startswith("WITH ")
        assert '"T1"' in text and '"T2"' in text
        cross_validate(text, emp_dept_sdt.schema, translated)

    def test_single_match_stays_flat(self, emp_dept_schema, emp_dept_sdt):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name", emp_dept_schema
        )
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        text = to_cte_sql(translated, emp_dept_sdt.schema)
        assert not text.startswith("WITH ")
        cross_validate(text, emp_dept_sdt.schema, translated)

    def test_motivating_example_matches_figure_7_shape(self):
        from repro.benchmarks.curated import curated_benchmarks

        benchmark = next(
            b for b in curated_benchmarks() if b.id == "academic/motivating"
        )
        sdt = infer_sdt(benchmark.graph_schema)
        translated = transpile(benchmark.cypher_query, benchmark.graph_schema, sdt)
        text = to_cte_sql(translated, sdt.schema)
        # Figure 7: two pattern CTEs joined on the shared sentence, grouped.
        assert text.count(" AS (SELECT") == 2
        assert "GROUP BY" in text
        assert "JOIN" in text
        cross_validate(text, sdt.schema, translated)

    @pytest.mark.parametrize(
        "cypher",
        [
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN n.name, m.dname",
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m AS kept "
            "RETURN kept.dname AS d",
            "MATCH (n:EMP) RETURN n.name AS a UNION MATCH (m:EMP) RETURN m.name AS a",
        ],
    )
    def test_other_shapes_cross_validate(self, cypher, emp_dept_schema, emp_dept_sdt):
        query = parse_cypher(cypher, emp_dept_schema)
        translated = transpile(query, emp_dept_schema, emp_dept_sdt)
        text = to_cte_sql(translated, emp_dept_sdt.schema)
        cross_validate(text, emp_dept_sdt.schema, translated)
