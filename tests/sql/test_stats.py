"""Statistics collection: exact vs sampled paths, canonical keys, bounds.

Covers the PR-9 estimator bugfixes: ``collect_stats`` must survive
unhashable property values (regression: it used to crash building the
per-column distinct sets), sampled statistics must honour their declared
NDV bounds, and the estimator must clamp degenerate inputs instead of
emitting 0/0 or zero-cost estimates.
"""

import math
import random

import pytest

from repro.common.values import NULL
from repro.relational.instance import Database
from repro.relational.schema import Relation, RelationalSchema
from repro.sql import ast
from repro.sql.planner import DEFAULT_ROW_COUNT, CardinalityEstimator
from repro.sql.stats import (
    SAMPLE_THRESHOLD,
    TableStats,
    canonical_key,
    collect_stats,
)


def single_table_db(rows, attributes=("a", "b")) -> Database:
    schema = RelationalSchema.of([Relation("t", tuple(attributes))])
    database = Database(schema)
    for row in rows:
        database.insert("t", row)
    return database


class Unkeyable:
    """Unhashable and with no canonical key (not a list/dict/set)."""

    __hash__ = None  # type: ignore[assignment]

    def __eq__(self, other):  # pragma: no cover - identity is irrelevant
        return isinstance(other, Unkeyable)


class TestCanonicalKey:
    def test_nested_containers_get_stable_keys(self):
        assert canonical_key([1, [2, 3]]) == canonical_key((1, (2, 3)))
        assert canonical_key({"b": 2, "a": 1}) == canonical_key({"a": 1, "b": 2})
        assert canonical_key({1, 2}) == canonical_key({2, 1})
        # Keys are hashable, so they can live in the distinct sets.
        {canonical_key({"a": [1, {2}]})}

    def test_distinguishes_different_values(self):
        assert canonical_key({"a": 1}) != canonical_key({"a": 2})
        assert canonical_key([1, 2]) != canonical_key([2, 1])

    def test_raises_for_exotic_unhashables(self):
        with pytest.raises(TypeError):
            canonical_key(Unkeyable())
        with pytest.raises(TypeError):
            canonical_key([Unkeyable()])


class TestCollectStatsUnhashable:
    def test_list_and_dict_properties_do_not_crash(self):
        # Regression: list/dict property values crashed the exact-NDV pass.
        db = single_table_db(
            [
                (1, [1, 2]),
                (2, [1, 2]),
                (3, {"k": "v"}),
                (4, {"k": "v"}),
                (5, [3]),
            ]
        )
        stats = collect_stats(db)
        assert stats["t"].row_count == 5
        assert stats["t"].distinct_of("a") == 5
        # Canonical keys make equal containers count as one value.
        assert stats["t"].distinct_of("b") == 3

    def test_exotic_unhashable_records_unknown_ndv(self):
        db = single_table_db([(1, Unkeyable()), (2, Unkeyable())])
        stats = collect_stats(db)
        assert stats["t"].row_count == 2
        assert stats["t"].distinct_of("b") is None
        assert stats["t"].bounds_of("b") is None
        # The healthy column is unaffected.
        assert stats["t"].distinct_of("a") == 2

    def test_exotic_unhashable_in_sampled_path(self):
        rows = [(i, Unkeyable()) for i in range(20)]
        db = single_table_db(rows)
        stats = collect_stats(db, sample_threshold=10, sample_size=8)
        assert stats["t"].sampled
        assert stats["t"].distinct_of("b") is None
        assert stats["t"].distinct_of("a") is not None

    def test_estimator_falls_back_to_defaults_for_unknown_ndv(self):
        db = single_table_db([(1, Unkeyable()), (1, Unkeyable())])
        stats = collect_stats(db)
        estimator = CardinalityEstimator(db.schema, stats)
        provenance = {"b": ("t", "b")}
        assert estimator.distinct_values("b", provenance) is None


class TestSampling:
    def test_threshold_switches_exact_to_sampled(self):
        at_threshold = single_table_db([(i, i % 3) for i in range(10)])
        exact = collect_stats(at_threshold, sample_threshold=10)["t"]
        assert not exact.sampled
        assert exact.sample_size == 0
        assert exact.distinct_of("a") == 10
        assert exact.distinct_of("b") == 3
        assert exact.bounds_of("b") == (3, 3)

        above = single_table_db([(i, i % 3) for i in range(11)])
        sampled = collect_stats(above, sample_threshold=10, sample_size=8)["t"]
        assert sampled.sampled
        assert sampled.sample_size == 8
        assert sampled.row_count == 11

    def test_default_threshold_keeps_small_tables_exact(self):
        db = single_table_db([(i, 0) for i in range(50)])
        assert not collect_stats(db)["t"].sampled
        assert SAMPLE_THRESHOLD >= 50

    def test_sampled_ndv_within_declared_bounds(self):
        rng = random.Random(7)
        rows = [
            (i, rng.randrange(500), rng.randrange(5))
            for i in range(10_000)
        ]
        db = single_table_db(rows, attributes=("unique", "mid", "low"))
        table = collect_stats(db, sample_threshold=4096, sample_size=1024)["t"]
        assert table.sampled
        assert table.row_count == 10_000
        for column, true_ndv in [
            ("unique", 10_000),
            ("mid", len({row[1] for row in rows})),
            ("low", 5),
        ]:
            estimate = table.distinct_of(column)
            low, high = table.bounds_of(column)
            # The declared interval is sound (contains the truth) and the
            # estimate is clamped into it.
            assert low <= true_ndv <= high
            assert low <= estimate <= high
        # GEE on a heavy-singleton column scales up; on a 5-value column
        # the sample has seen everything.
        assert table.distinct_of("unique") > 1024
        assert table.distinct_of("low") == 5

    def test_collection_is_deterministic(self):
        rows = [(i, i % 97) for i in range(6000)]
        db = single_table_db(rows)
        first = collect_stats(db)["t"]
        second = collect_stats(db)["t"]
        assert first == second
        assert first.sampled

    def test_nulls_are_not_counted_as_values(self):
        db = single_table_db([(1, NULL), (2, NULL), (3, 9)])
        assert collect_stats(db)["t"].distinct_of("b") == 1

    def test_sample_size_must_be_positive(self):
        db = single_table_db([(1, 2)])
        with pytest.raises(ValueError):
            collect_stats(db, sample_size=0)


class TestDegenerateEstimates:
    """Bugfix: empty tables / NDV-0 stats used to produce 0-cost subtrees
    (every join order containing one tied at zero) and 0/0 selectivities."""

    def schema(self) -> RelationalSchema:
        return RelationalSchema.of([Relation("t", ("a", "b"))])

    def test_empty_table_floors_at_one_row(self):
        estimator = CardinalityEstimator(
            self.schema(), {"t": TableStats(0, {"a": 0, "b": 0})}
        )
        assert estimator.cardinality(ast.Relation("t")) == 1.0

    def test_zero_ndv_does_not_zero_divide(self):
        estimator = CardinalityEstimator(
            self.schema(), {"t": TableStats(0, {"a": 0, "b": 0})}
        )
        filtered = ast.Selection(
            ast.Relation("t"),
            ast.Comparison("=", ast.AttributeRef("a"), ast.Literal(1)),
        )
        estimate = estimator.cardinality(filtered)
        assert estimate >= 1.0
        assert math.isfinite(estimate)

    def test_join_of_empty_tables_stays_positive(self):
        schema = RelationalSchema.of(
            [Relation("t", ("a", "b")), Relation("u", ("c", "d"))]
        )
        estimator = CardinalityEstimator(
            schema,
            {"t": TableStats(0, {"a": 0}), "u": TableStats(0, {"c": 0})},
        )
        cross = ast.Join(ast.JoinKind.CROSS, ast.Relation("t"), ast.Relation("u"))
        assert estimator.cardinality(cross) >= 1.0

    def test_limit_zero_floors_at_one(self):
        estimator = CardinalityEstimator(
            self.schema(), {"t": TableStats(100, {"a": 100})}
        )
        capped = ast.OrderBy(
            ast.Relation("t"),
            (ast.AttributeRef("a"),),
            (True,),
            limit=0,
        )
        assert estimator.cardinality(capped) == 1.0

    def test_row_scale_multiplies_base_rows(self):
        stats = {"t": TableStats(100, {"a": 100})}
        scaled = CardinalityEstimator(self.schema(), stats, row_scale=4.0)
        assert scaled.cardinality(ast.Relation("t")) == 400.0
        # Scaling down never goes below the one-row floor.
        tiny = CardinalityEstimator(self.schema(), stats, row_scale=1e-9)
        assert tiny.cardinality(ast.Relation("t")) == 1.0
