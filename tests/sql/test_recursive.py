"""RecursiveQuery: fixpoint evaluation, WITH RECURSIVE rendering, and
engine execution of hand-built recursive algebra."""

import pytest

from repro.backends.sqlite import SqliteMemoryBackend
from repro.common.errors import SemanticsError
from repro.relational.instance import Database, tables_equivalent
from repro.relational.schema import Relation, RelationalSchema
from repro.sql import ast
from repro.sql.analysis import ast_size, output_attributes, referenced_relations, uses_recursion
from repro.sql.pretty import to_sql_text
from repro.sql.semantics import evaluate_query

SCHEMA = RelationalSchema.of([Relation("EDGE", ("SRC", "TGT"))])


def edge_database(pairs) -> Database:
    database = Database(SCHEMA)
    for src, tgt in pairs:
        database.insert("EDGE", [src, tgt])
    return database


def closure_query(body: ast.Query | None = None) -> ast.RecursiveQuery:
    """Plain transitive closure: reach(src, tgt) over EDGE."""
    base = ast.Projection(
        ast.Relation("EDGE"),
        (
            ast.OutputColumn("src", ast.AttributeRef("SRC")),
            ast.OutputColumn("tgt", ast.AttributeRef("TGT")),
        ),
    )
    step = ast.Projection(
        ast.Join(
            ast.JoinKind.INNER,
            ast.Renaming("r", ast.Relation("reach")),
            ast.Renaming("e", ast.Relation("EDGE")),
            ast.Comparison(
                "=", ast.AttributeRef("e.SRC"), ast.AttributeRef("r.tgt")
            ),
        ),
        (
            ast.OutputColumn("src", ast.AttributeRef("r.src")),
            ast.OutputColumn("tgt", ast.AttributeRef("e.TGT")),
        ),
    )
    if body is None:
        body = ast.Projection(
            ast.Relation("reach"),
            (
                ast.OutputColumn("src", ast.AttributeRef("src")),
                ast.OutputColumn("tgt", ast.AttributeRef("tgt")),
            ),
            distinct=True,
        )
    return ast.RecursiveQuery("reach", ("src", "tgt"), base, step, body)


class TestEvaluation:
    def test_transitive_closure_on_a_cycle_terminates(self):
        database = edge_database([(1, 2), (2, 3), (3, 1)])
        table = evaluate_query(closure_query(), database)
        assert sorted(table.rows) == sorted((a, b) for a in (1, 2, 3) for b in (1, 2, 3))

    def test_chain_closure(self):
        database = edge_database([(1, 2), (2, 3), (3, 4)])
        table = evaluate_query(closure_query(), database)
        assert sorted(table.rows) == [
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4),
        ]

    def test_empty_base_case(self):
        table = evaluate_query(closure_query(), edge_database([]))
        assert table.rows == []

    def test_runaway_bag_union_hits_budget(self):
        query = closure_query()
        diverging = ast.RecursiveQuery(
            query.name, query.columns, query.base, query.step, query.body, union_all=True
        )
        with pytest.raises(SemanticsError, match="budget"):
            evaluate_query(diverging, edge_database([(1, 1)]))

    def test_arity_mismatch_rejected(self):
        query = closure_query()
        bad = ast.RecursiveQuery(query.name, ("src",), query.base, query.step, query.body)
        with pytest.raises(SemanticsError, match="columns"):
            evaluate_query(bad, edge_database([(1, 2)]))


class TestRendering:
    def test_with_recursive_shape(self):
        text = to_sql_text(closure_query(), SCHEMA, optimized=False)
        assert text.startswith('WITH RECURSIVE "reach"("src", "tgt") AS (')
        assert " UNION " in text
        # The recursive self-reference is a bare table name in FROM — never
        # wrapped in a subquery (engines reject that).
        assert '(SELECT "reach"' not in text
        assert 'FROM "reach" AS "r"' in text

    def test_union_all_keyword(self):
        query = closure_query()
        bag = ast.RecursiveQuery(
            query.name, query.columns, query.base, query.step, query.body, union_all=True
        )
        assert " UNION ALL " in to_sql_text(bag, SCHEMA, optimized=False)

    def test_sqlite_execution_matches_reference(self):
        database = edge_database([(1, 2), (2, 3), (3, 1), (3, 4), (5, 5)])
        expected = evaluate_query(closure_query(), database)
        with SqliteMemoryBackend(SCHEMA) as backend:
            backend.connect()
            backend.bulk_load(database)
            for optimized in (False, True):
                text = to_sql_text(closure_query(), SCHEMA, optimized=optimized)
                assert tables_equivalent(expected, backend.execute(text))

    def test_nonrecursive_with_folds_into_recursive_clause(self):
        wrapped = ast.WithQuery(
            "hop",
            ast.Projection(
                ast.Relation("EDGE"),
                (
                    ast.OutputColumn("src", ast.AttributeRef("SRC")),
                    ast.OutputColumn("tgt", ast.AttributeRef("TGT")),
                ),
            ),
            closure_query(),
        )
        text = to_sql_text(wrapped, SCHEMA, optimized=False)
        assert text.startswith('WITH RECURSIVE "hop" AS (')
        assert text.count("WITH") == 1  # one folded clause list


class TestAnalysis:
    def test_traversals_cover_recursive_query(self):
        query = closure_query()
        assert uses_recursion(query)
        assert not uses_recursion(query.base)
        assert ast_size(query) > ast_size(query.base)
        assert output_attributes(query, SCHEMA) == ("src", "tgt")
        assert referenced_relations(query) == {"EDGE"}

    def test_map_children_rebuilds_all_three_children(self):
        query = closure_query()
        marked = []
        rebuilt = ast.map_children(query, lambda q: (marked.append(q), q)[1])
        assert rebuilt == query
        assert len(marked) == 3
