"""Experiment-runner harness: the table generators produce paper-shaped rows."""

import pytest

from repro.benchmarks.evaluation import (
    classify_baseline,
    table1_statistics,
    table3_deductive,
    table5_baseline,
    transpilation_speed,
)
from repro.benchmarks.suite import benchmark_suite


class TestTable1:
    def test_rows_cover_categories_plus_total(self):
        rows = table1_statistics()
        assert [r.dataset for r in rows] == [
            "StackOverflow", "Tutorial", "Academic", "VeriEQL", "Mediator",
            "GPT-Translate", "Total",
        ]

    def test_total_counts_410(self):
        assert table1_statistics()[-1].count == 410

    def test_formatting(self):
        text = table1_statistics()[0].format()
        assert "SQL[" in text and "Cypher[" in text


class TestTable3:
    def test_matches_paper_totals(self):
        rows = {r.dataset: r for r in table3_deductive(time_budget_seconds=5.0)}
        assert rows["Total"].supported == 196
        assert rows["Total"].verified == 152
        assert rows["Total"].unknown == 44

    def test_verification_rate_near_paper(self):
        rows = {r.dataset: r for r in table3_deductive(time_budget_seconds=5.0)}
        rate = rows["Total"].verified / rows["Total"].supported
        assert abs(rate - 0.776) < 0.02


class TestTable5:
    def test_matches_paper_totals(self):
        rows = {r.dataset: r for r in table5_baseline(differential_samples=25)}
        assert rows["Total"].unsupported == 284
        assert rows["Total"].syntax_errors == 2
        assert rows["Total"].incorrect == 2
        assert rows["Total"].correct == 122

    def test_classify_single_benchmark(self):
        motivating = next(
            b for b in benchmark_suite() if b.id == "academic/motivating"
        )
        # The WITH pipeline is outside the baseline's fragment.
        assert classify_baseline(motivating, samples=5, seed=1) == "unsupported"


class TestTranspilationSpeed:
    def test_covers_all_queries_quickly(self):
        stats = transpilation_speed()
        assert stats.count == 410
        assert stats.avg_ms < 50
        assert stats.median_ms <= stats.max_ms
