"""Benchmark-suite invariants: counts, parseability, feature composition."""

import pytest

from repro.benchmarks import CATEGORY_COUNTS, benchmark_suite, benchmarks_by_category
from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


class TestComposition:
    def test_total_count(self, suite):
        assert len(suite) == 410

    def test_category_counts_match_table_1(self, suite):
        counts = {}
        for benchmark in suite:
            counts[benchmark.category] = counts.get(benchmark.category, 0) + 1
        assert counts == CATEGORY_COUNTS

    def test_non_equivalent_distribution_matches_table_2(self, suite):
        per_category = {}
        for benchmark in suite:
            if not benchmark.expected_equivalent:
                per_category[benchmark.category] = (
                    per_category.get(benchmark.category, 0) + 1
                )
        assert per_category == {
            "StackOverflow": 1,
            "Tutorial": 1,
            "Academic": 1,
            "VeriEQL": 4,
            "GPT-Translate": 27,
        }
        assert sum(per_category.values()) == 34

    def test_every_bug_has_a_class(self, suite):
        for benchmark in suite:
            if not benchmark.expected_equivalent:
                assert benchmark.bug_class, benchmark.id

    def test_ids_unique(self, suite):
        ids = [b.id for b in suite]
        assert len(set(ids)) == len(ids)

    def test_deterministic_generation(self):
        benchmark_suite.cache_clear()
        first = [(b.id, b.cypher_text, b.sql_text) for b in benchmark_suite()]
        benchmark_suite.cache_clear()
        second = [(b.id, b.cypher_text, b.sql_text) for b in benchmark_suite()]
        assert first == second


class TestWellFormedness:
    def test_all_parse(self, suite):
        for benchmark in suite:
            benchmark.cypher_query
            benchmark.sql_query
            benchmark.transformer

    def test_all_transpile(self, suite):
        for benchmark in suite:
            sdt = infer_sdt(benchmark.graph_schema)
            transpile(benchmark.cypher_query, benchmark.graph_schema, sdt)

    def test_transformer_speaks_target_vocabulary(self, suite):
        for benchmark in suite:
            heads = benchmark.transformer.head_names()
            relations = {r.name for r in benchmark.relational_schema.relations}
            assert heads <= relations, benchmark.id

    def test_curated_examples_present(self, suite):
        ids = {b.id for b in suite}
        assert "academic/motivating" in ids
        assert "tutorial/neo4j-volume" in ids
        assert "veriql/emp-dept-join" in ids


class TestSpotDifferentialValidation:
    """A fast spot-check of ground truth on a slice of the suite.

    (The full 410-benchmark differential validation runs in the Table-2
    bench; here we only sample to keep the unit suite quick.)
    """

    @pytest.mark.parametrize("index", [0, 13, 57, 101, 149, 203, 251, 307, 355, 401])
    def test_label_agrees_with_bounded_check(self, suite, index):
        from repro import BoundedChecker, check_equivalence
        from repro.checkers.base import Verdict

        benchmark = suite[index]
        checker = BoundedChecker(
            max_bound=3, samples_per_bound=150, time_budget_seconds=6.0, seed=23
        )
        result = check_equivalence(
            benchmark.graph_schema,
            benchmark.cypher_query,
            benchmark.relational_schema,
            benchmark.sql_query,
            benchmark.transformer,
            checker,
        )
        refuted = result.verdict is Verdict.NOT_EQUIVALENT
        assert refuted != benchmark.expected_equivalent, benchmark.id
