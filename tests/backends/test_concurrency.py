"""Concurrent serving through GraphitiService: run_many, thread hammering.

The regression tests here are the ones that fail loudly if the service's
locking discipline rots: many threads hammering ``run_many`` must lose no
statistics updates and must never hand one query's rows to another query's
caller (cross-query result corruption is the classic symptom of a shared
connection being used from two threads).
"""

import threading

import pytest

from repro.backends import GraphitiService
from repro.relational.instance import tables_equivalent

SCAN = "MATCH (n:EMP) RETURN n.name"
JOIN = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname"
AGGREGATE = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)"
DEPT_SCAN = "MATCH (m:DEPT) RETURN m.dname"


@pytest.fixture
def service(emp_dept_schema):
    with GraphitiService(emp_dept_schema, pool_size=4) as svc:
        svc.load_mock(40, seed=11)
        yield svc


class TestRunMany:
    def test_results_in_batch_order(self, service):
        batch = [SCAN, DEPT_SCAN, SCAN, DEPT_SCAN]
        results = service.run_many(batch, workers=4)
        assert len(results) == 4
        assert results[0].attributes == ("n.name",)
        assert results[1].attributes == ("m.dname",)
        assert tables_equivalent(results[0], results[2])
        assert tables_equivalent(results[1], results[3])

    def test_empty_batch(self, service):
        assert service.run_many([], workers=4) == []

    def test_single_worker_matches_parallel(self, service):
        batch = [SCAN, JOIN, AGGREGATE] * 4
        serial = service.run_many(batch, workers=1)
        parallel = service.run_many(batch, workers=4)
        for left, right in zip(serial, parallel):
            assert tables_equivalent(left, right)

    def test_concurrent_results_match_reference(self, service):
        batch = [SCAN, JOIN, AGGREGATE, DEPT_SCAN] * 3
        expected = {text: service.reference(text) for text in set(batch)}
        results = service.run_many(batch, workers=4)
        for text, result in zip(batch, results):
            assert tables_equivalent(expected[text], result)

    def test_workers_capped_by_batch_size(self, service):
        results = service.run_many([SCAN], workers=16)
        assert len(results) == 1
        # One query can use at most one worker/connection.
        assert service.pool().size <= service.pool().capacity

    def test_pool_grows_to_worker_count(self, service):
        service.run_many([SCAN] * 8, workers=6, backend="sqlite-memory")
        assert service.pool("sqlite-memory").capacity >= 6

    def test_run_many_on_explicit_backend(self, service):
        results = service.run_many([SCAN, JOIN], workers=2, backend="sqlite-file")
        assert tables_equivalent(results[0], service.reference(SCAN))
        assert tables_equivalent(results[1], service.reference(JOIN))

    def test_worker_exception_propagates(self, service):
        with pytest.raises(Exception):
            service.run_many(["MATCH (x:NOPE) RETURN x.nope"] * 3, workers=2)


class TestThreadHammer:
    def test_no_lost_stat_updates_and_no_corruption(self, service):
        """Many threads × many run_many calls: counters must add up exactly
        and every returned table must be the right query's result."""
        threads_count, rounds = 6, 5
        batch = [SCAN, JOIN, AGGREGATE, DEPT_SCAN]
        expected = {text: service.reference(text) for text in batch}
        service.reset_query_stats()
        errors = []

        def hammer():
            try:
                for _ in range(rounds):
                    results = service.run_many(batch, workers=4)
                    for text, result in zip(batch, results):
                        assert tables_equivalent(expected[text], result), text
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        workers = [threading.Thread(target=hammer) for _ in range(threads_count)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        assert not errors
        stats = {s.cypher_text: s for s in service.query_stats()}
        for text in batch:
            assert stats[text].executions == threads_count * rounds
            assert len(stats[text].samples) == threads_count * rounds
            assert abs(sum(stats[text].samples) - stats[text].total_seconds) < 1e-9

    def test_concurrent_run_calls_are_safe(self, service):
        expected = service.reference(JOIN)
        errors = []

        def worker():
            try:
                for _ in range(10):
                    assert tables_equivalent(service.run(JOIN), expected)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_concurrent_prepare_stampede_is_consistent(self, service):
        """Racing cold prepares may duplicate work but must agree on SQL."""
        rendered = []
        barrier = threading.Barrier(4)

        def worker():
            barrier.wait()
            rendered.append(service.transpile_to_sql(JOIN))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(rendered)) == 1


class TestPercentiles:
    def test_samples_accumulate_and_percentiles_order(self, service):
        for _ in range(20):
            service.run(SCAN)
        stat = {s.cypher_text: s for s in service.query_stats()}[SCAN]
        assert stat.executions == 20
        assert len(stat.samples) == 20
        assert 0.0 <= stat.p50_seconds <= stat.p95_seconds <= max(stat.samples)

    def test_percentiles_of_known_samples(self):
        from repro.backends import QueryStat

        samples = tuple(float(n) for n in range(1, 101))  # 1..100
        stat = QueryStat("q", 100, sum(samples), 100.0, samples)
        assert stat.p50_seconds == pytest.approx(50.0, abs=1.0)
        assert stat.p95_seconds == pytest.approx(95.0, abs=1.0)

    def test_empty_samples_percentile_is_zero(self):
        from repro.backends import QueryStat

        stat = QueryStat("q", 0, 0.0, 0.0)
        assert stat.p50_seconds == 0.0
        assert stat.p95_seconds == 0.0

    def test_sample_window_is_bounded(self, service):
        from repro.backends.service import MAX_LATENCY_SAMPLES

        for _ in range(MAX_LATENCY_SAMPLES + 25):
            service.run(DEPT_SCAN)
        stat = {s.cypher_text: s for s in service.query_stats()}[DEPT_SCAN]
        assert stat.executions == MAX_LATENCY_SAMPLES + 25
        assert len(stat.samples) == MAX_LATENCY_SAMPLES
