"""Query budgets: structured limits on rows, depth, and wall clock.

Covers the whole enforcement stack: the :class:`QueryBudget` contract,
the reference evaluator's fixpoint accounting, the engine-level guards
(row cap via batched fetch, sqlite progress-handler deadline), the
service's downgrade-then-raise discipline, and the invariant that a
budget abort never poisons the pool.
"""

import time

import pytest

from repro.backends import GraphitiService, QueryBudget, QueryBudgetExceeded
from repro.common.budget import BudgetTracker, as_tracker
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.sql.semantics import evaluate_query


@pytest.fixture
def social_schema() -> GraphSchema:
    return GraphSchema.of(
        [NodeType("USER", ("uid",))],
        [EdgeType("FOLLOWS", "USER", "USER", ("fid",))],
    )


@pytest.fixture
def service(social_schema):
    with GraphitiService(social_schema) as svc:
        svc.load_mock(40, seed=5)
        yield svc


SCAN = "MATCH (a:USER) RETURN a.uid"
HOPS = "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid"
OPEN = "MATCH (a:USER)-[:FOLLOWS*]->(b:USER) RETURN a.uid, b.uid"


class TestQueryBudgetContract:
    def test_rejects_non_positive_limits(self):
        with pytest.raises(ValueError):
            QueryBudget(max_rows=0)
        with pytest.raises(ValueError):
            QueryBudget(max_depth=-1)
        with pytest.raises(ValueError):
            QueryBudget(timeout_seconds=0.0)

    def test_unlimited_budget_produces_no_tracker(self):
        assert QueryBudget().unlimited
        assert as_tracker(QueryBudget()) is None
        assert as_tracker(None) is None

    def test_tracker_passthrough_and_start(self):
        tracker = QueryBudget(max_rows=10).start()
        assert isinstance(tracker, BudgetTracker)
        assert as_tracker(tracker) is tracker

    def test_charge_rows_accumulates_and_trips(self):
        tracker = QueryBudget(max_rows=5).start()
        tracker.charge_rows(3, stage="engine")
        with pytest.raises(QueryBudgetExceeded) as exc:
            tracker.charge_rows(3, stage="engine")
        error = exc.value
        assert error.dimension == "rows"
        assert error.limit == 5
        assert error.rows_produced == 6
        assert error.stage == "engine"

    def test_reset_work_keeps_the_clock(self):
        clock = [100.0]
        tracker = QueryBudget(max_rows=5, timeout_seconds=10.0).start(
            clock=lambda: clock[0]
        )
        tracker.charge_rows(4, stage="engine")
        clock[0] = 103.0
        tracker.reset_work()
        assert tracker.rows_produced == 0
        assert tracker.remaining_seconds() == pytest.approx(7.0)

    def test_timeout_diagnostics(self):
        clock = [0.0]
        tracker = QueryBudget(timeout_seconds=1.0).start(clock=lambda: clock[0])
        clock[0] = 2.5
        with pytest.raises(QueryBudgetExceeded) as exc:
            tracker.check_timeout(stage="fixpoint")
        assert exc.value.dimension == "timeout"
        assert exc.value.elapsed_seconds == pytest.approx(2.5)


class TestReferenceEvaluatorBudgets:
    def test_row_budget_bounds_non_recursive_results(self, service):
        with pytest.raises(QueryBudgetExceeded) as exc:
            service.reference(SCAN, budget=QueryBudget(max_rows=2))
        assert exc.value.dimension == "rows"
        assert exc.value.backend == "reference"

    def test_depth_budget_bounds_the_fixpoint(self, service):
        with pytest.raises(QueryBudgetExceeded) as exc:
            service.reference(OPEN, budget=QueryBudget(max_depth=1))
        error = exc.value
        assert error.dimension == "depth"
        assert error.depth_reached is not None and error.depth_reached > 1

    def test_generous_budget_matches_unbudgeted_result(self, service):
        free = service.reference(HOPS)
        bounded = service.reference(
            HOPS, budget=QueryBudget(max_rows=10_000, timeout_seconds=60.0)
        )
        assert sorted(free.rows) == sorted(bounded.rows)

    def test_evaluate_query_accepts_budget_directly(self, service):
        prepared = service.prepare(SCAN)
        with pytest.raises(QueryBudgetExceeded):
            evaluate_query(
                prepared.sql_ast, service.database, budget=QueryBudget(max_rows=1)
            )


class TestEngineBudgets:
    def test_row_budget_trips_in_engine(self, service):
        with pytest.raises(QueryBudgetExceeded) as exc:
            service.run(SCAN, budget=QueryBudget(max_rows=3, allow_downgrade=False))
        error = exc.value
        assert error.dimension == "rows"
        assert error.stage == "engine"
        assert error.backend == "sqlite-memory"
        assert error.cypher_text == SCAN
        assert not error.attempted_downgrade

    def test_budget_metrics_count_by_dimension(self, service):
        with pytest.raises(QueryBudgetExceeded):
            service.run(SCAN, budget=QueryBudget(max_rows=3, allow_downgrade=False))
        counter = service.metrics.counter("repro_budget_exceeded_total")
        assert counter.value(backend="sqlite-memory", dimension="rows") == 1

    def test_generous_budget_leaves_results_untouched(self, service):
        free = service.run(HOPS)
        bounded = service.run(
            HOPS, budget=QueryBudget(max_rows=100_000, timeout_seconds=60.0)
        )
        assert sorted(free.rows) == sorted(bounded.rows)

    def test_pool_member_survives_budget_abort(self, service):
        with pytest.raises(QueryBudgetExceeded):
            service.run(SCAN, budget=QueryBudget(max_rows=1, allow_downgrade=False))
        # The same pool serves the next query: the abort damaged nothing.
        assert len(service.run(SCAN).rows) == 40
        snapshot = service.pool_snapshots()["sqlite-memory"]
        assert snapshot["in_use"] == 0
        assert snapshot["idle"] >= 1
        assert service.metrics.counter("repro_pool_evictions_total").total() == 0

    def test_sqlite_deadline_interrupts_runaway_statement(self, social_schema):
        # A cross-join pyramid whose full evaluation takes far longer than
        # the budget: the progress handler must abort it mid-statement.
        with GraphitiService(social_schema) as svc:
            svc.load_mock(400, seed=5)
            slow = (
                "MATCH (a:USER), (b:USER), (c:USER), (d:USER) "
                "RETURN count(*) AS n"
            )
            started = time.perf_counter()
            with pytest.raises(QueryBudgetExceeded) as exc:
                svc.run(slow, budget=QueryBudget(timeout_seconds=0.2))
            elapsed = time.perf_counter() - started
            assert exc.value.dimension == "timeout"
            assert exc.value.stage == "engine"
            assert elapsed < 10.0  # aborted, not run to completion
            # The interrupt killed the statement, not the connection.
            assert len(svc.run(SCAN).rows) == 400

    def test_default_budget_applies_to_every_run(self, social_schema):
        with GraphitiService(
            social_schema, default_budget=QueryBudget(max_rows=3)
        ) as svc:
            svc.load_mock(40, seed=5)
            with pytest.raises(QueryBudgetExceeded):
                svc.run(SCAN)
            # A per-call budget overrides the default.
            generous = svc.run(SCAN, budget=QueryBudget(max_rows=10_000))
            assert len(generous.rows) == 40

    def test_run_many_budgets_each_query_separately(self, service):
        # Each query gets its own fresh tracker: the first queries must not
        # consume the budget of later ones.
        tables = service.run_many(
            [SCAN] * 4, workers=2, budget=QueryBudget(max_rows=50)
        )
        assert [len(t.rows) for t in tables] == [40, 40, 40, 40]
        with pytest.raises(QueryBudgetExceeded):
            service.run_many([SCAN] * 2, workers=2, budget=QueryBudget(max_rows=30))


class TestDowngrade:
    def test_unrolled_plan_downgrades_to_recursive_then_raises(self, service):
        prepared = service.prepare(HOPS, service.dialect_of("sqlite-memory"))
        assert [t.choice for t in prepared.plan.traversals] == ["unrolled"]
        with pytest.raises(QueryBudgetExceeded) as exc:
            service.run(HOPS, budget=QueryBudget(max_rows=1))
        assert exc.value.attempted_downgrade
        counter = service.metrics.counter("repro_budget_downgrades_total")
        assert counter.value(backend="sqlite-memory") == 1

    def test_downgrade_disabled_raises_immediately(self, service):
        with pytest.raises(QueryBudgetExceeded) as exc:
            service.run(HOPS, budget=QueryBudget(max_rows=1, allow_downgrade=False))
        assert not exc.value.attempted_downgrade
        counter = service.metrics.counter("repro_budget_downgrades_total")
        assert counter.value(backend="sqlite-memory") == 0

    def test_depth_cap_restricts_traversal_to_shorter_walks(self, service):
        capped = service.run(HOPS, budget=QueryBudget(max_depth=1))
        one_hop = service.run(
            "MATCH (a:USER)-[:FOLLOWS*1..1]->(b:USER) RETURN a.uid, b.uid"
        )
        assert sorted(capped.rows) == sorted(one_hop.rows)

    def test_depth_capped_plan_is_a_distinct_cache_entry(self, service):
        service.prepare(HOPS, service.dialect_of("sqlite-memory"))
        before = service.cache_info().currsize
        service.run(HOPS, budget=QueryBudget(max_depth=1))
        assert service.cache_info().currsize == before + 1
        # Re-running with the same cap hits the variant entry.
        hits = service.cache_info().hits
        service.run(HOPS, budget=QueryBudget(max_depth=1))
        assert service.cache_info().hits > hits

    def test_depth_cap_on_open_bound_traversal(self, service):
        capped = service.run(OPEN, budget=QueryBudget(max_depth=2))
        two_hop = service.run(
            "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid"
        )
        assert sorted(set(capped.rows)) == sorted(set(two_hop.rows))
