"""Self-healing serving under injected faults.

Drives the ``faulty`` backend (an in-memory SQLite engine executing a
deterministic :class:`FaultPlan`) through the full serving stack and
asserts exactly how it recovered: members that die mid-query are evicted
and the query retried on a healthy member, genuine query errors are not
retried, spawn failures are absorbed, repeated engine failure opens the
per-backend circuit breaker, and every event lands in the metrics
registry with pool gauges returning to their idle baseline.
"""

import asyncio
import threading
import time

import pytest

from repro.backends import (
    NO_RETRY,
    AsyncGraphitiService,
    CircuitBreaker,
    CircuitOpen,
    ConnectionPool,
    FaultInjected,
    FaultInjectingBackend,
    FaultPlan,
    GraphitiService,
    RetryPolicy,
    available_backends,
    injected_faults,
)
from repro.core.sdt import infer_sdt
from repro.execution.datagen import MockDataGenerator
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.observability.metrics import MetricsRegistry


@pytest.fixture
def social_schema() -> GraphSchema:
    return GraphSchema.of(
        [NodeType("USER", ("uid",))],
        [EdgeType("FOLLOWS", "USER", "USER", ("fid",))],
    )


SCAN = "MATCH (a:USER) RETURN a.uid"


def faulty_service(schema, rows: int = 20, **kwargs) -> GraphitiService:
    svc = GraphitiService(schema, default_backend="faulty", **kwargs)
    svc.load_mock(rows, seed=2)
    return svc


class TestFaultPlan:
    def test_backend_invisible_without_a_plan(self):
        assert not FaultInjectingBackend.is_available()
        assert "faulty" not in available_backends()
        with injected_faults():
            assert FaultInjectingBackend.is_available()
            assert "faulty" in available_backends()
        assert not FaultInjectingBackend.is_available()

    def test_indices_are_one_based_and_recorded(self):
        plan = FaultPlan(error_on_executes=(2,))
        assert plan.on_execute() is None
        assert plan.on_execute() == "error"
        assert plan.events == [("error", 2)]

    def test_heal_clears_remaining_schedule(self):
        plan = FaultPlan(error_on_executes=(1, 2, 3))
        assert plan.on_execute() == "error"
        plan.heal()
        assert plan.on_execute() is None

    def test_scheduled_spawn_failure_raises(self):
        plan = FaultPlan(fail_spawns=(1,))
        with pytest.raises(FaultInjected):
            plan.on_spawn()
        assert plan.events == [("fail_spawn", 1)]


class TestDieMidQuery:
    def test_retried_transparently_on_a_healthy_member(self, social_schema):
        with injected_faults(die_on_executes=(1,)) as plan:
            with faulty_service(social_schema) as svc:
                table = svc.run(SCAN)
                assert len(table.rows) == 20
                assert plan.events == [("die", 1)]
                metrics = svc.metrics
                assert metrics.counter("repro_query_retries_total").value(
                    backend="faulty"
                ) == 1
                assert metrics.counter("repro_pool_evictions_total").total() == 1
                assert (
                    metrics.counter("repro_pool_validation_failures_total").total()
                    == 1
                )
                # The breaker saw one failure but never opened.
                assert svc.breaker("faulty").state == CircuitBreaker.CLOSED

    def test_pool_gauges_return_to_idle_baseline(self, social_schema):
        with injected_faults(die_on_executes=(1,)):
            with faulty_service(social_schema) as svc:
                svc.run(SCAN)
                snapshot = svc.pool_snapshots()["faulty"]
                assert snapshot["in_use"] == 0
                assert snapshot["waiters"] == 0
                assert snapshot["idle"] == snapshot["size"] >= 1

    def test_retries_exhausted_surfaces_the_engine_error(self, social_schema):
        # Three tries, three dead members: the last engine error propagates.
        with injected_faults(die_on_executes=(1, 2, 3)) as plan:
            with faulty_service(
                social_schema, retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0)
            ) as svc:
                with pytest.raises(Exception) as exc:
                    svc.run(SCAN)
                assert not isinstance(exc.value, FaultInjected)
                assert [kind for kind, _ in plan.events] == ["die"] * 3

    def test_async_path_retries_too(self, social_schema):
        with injected_faults(die_on_executes=(1,)) as plan:
            with faulty_service(social_schema) as sync_svc:

                async def main():
                    async with AsyncGraphitiService(sync_svc) as svc:
                        return await svc.run(SCAN)

                table = asyncio.run(main())
                assert len(table.rows) == 20
                assert plan.events == [("die", 1)]
                assert sync_svc.metrics.counter(
                    "repro_query_retries_total"
                ).value(backend="faulty") == 1


class TestShardMemberDiesMidScatter:
    def test_recovers_inside_the_shard_not_at_the_coordinator(self, social_schema):
        """A shard member dying mid-scatter is a *per-shard* event: the
        affected shard evicts the member and retries on a healthy one
        through its own guarded pipeline, the scatter completes, and the
        merged result is intact — no coordinator-wide failure, no breaker
        trip."""
        from repro.backends import ShardedGraphitiService

        with injected_faults(die_on_executes=(1,)) as plan:
            with ShardedGraphitiService(
                social_schema, num_shards=2, default_backend="faulty"
            ) as svc:
                svc.load_mock(20, seed=2)
                table = svc.run(SCAN)  # shard-local scan: scatters to both
                assert len(table.rows) == 20
                assert plan.events == [("die", 1)]
                metrics = svc.metrics
                # Exactly one retry and one eviction, attributed to the
                # shard that lost its member; the other shard is untouched.
                assert metrics.counter("repro_query_retries_total").value(
                    backend="faulty"
                ) == 1
                assert metrics.counter("repro_pool_evictions_total").total() == 1
                # Both shards still answered — the scatter never failed.
                shard_queries = metrics.counter("repro_shard_queries_total")
                assert shard_queries.value(shard="0") == 1
                assert shard_queries.value(shard="1") == 1
                assert svc.breaker("faulty").state == CircuitBreaker.CLOSED
                # The coordinator still serves afterwards.
                assert len(svc.run(SCAN).rows) == 20


class TestQueryErrorsAreNotRetried:
    def test_healthy_member_error_propagates(self, social_schema):
        with injected_faults(error_on_executes=(1,)) as plan:
            with faulty_service(social_schema) as svc:
                with pytest.raises(FaultInjected):
                    svc.run(SCAN)
                assert plan.events == [("error", 1)]
                assert svc.metrics.counter("repro_query_retries_total").total() == 0
                # The member survived its error and was retained.
                assert svc.metrics.counter("repro_pool_evictions_total").total() == 0
                snapshot = svc.pool_snapshots()["faulty"]
                assert snapshot["idle"] >= 1

    def test_async_query_error_not_retried(self, social_schema):
        with injected_faults(error_on_executes=(1,)):
            with faulty_service(social_schema) as sync_svc:

                async def main():
                    async with AsyncGraphitiService(sync_svc) as svc:
                        with pytest.raises(FaultInjected):
                            await svc.run(SCAN)

                asyncio.run(main())
                assert sync_svc.metrics.counter(
                    "repro_query_retries_total"
                ).total() == 0


class TestSpawnFailure:
    def test_failed_spawn_is_absorbed_by_retry(self, social_schema):
        # The first worker holds the primary (hanging briefly), forcing the
        # second to grow the pool; that spawn fails, the retry spawns again.
        with injected_faults(
            fail_spawns=(2,), hang_on_executes=(1,), hang_seconds=0.2
        ) as plan:
            with faulty_service(social_schema) as svc:
                tables = svc.run_many([SCAN, SCAN], workers=2)
                assert [len(t.rows) for t in tables] == [20, 20]
                assert ("fail_spawn", 2) in plan.events
                assert svc.metrics.counter("repro_query_retries_total").value(
                    backend="faulty"
                ) >= 1


class TestCircuitBreakerUnit:
    def make(self, **kwargs):
        clock = [0.0]
        transitions: list[str] = []
        breaker = CircuitBreaker(
            backend_name="faulty",
            clock=lambda: clock[0],
            on_transition=transitions.append,
            **kwargs,
        )
        return breaker, clock, transitions

    def test_opens_at_threshold_and_sheds(self):
        breaker, clock, transitions = self.make(
            failure_threshold=3, cooldown_seconds=5.0
        )
        for _ in range(2):
            breaker.record_failure()
        breaker.allow()  # still closed
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert transitions == [CircuitBreaker.OPEN]
        with pytest.raises(CircuitOpen) as exc:
            breaker.allow()
        assert exc.value.backend == "faulty"
        assert exc.value.failures == 3
        assert 0.0 < exc.value.retry_after_seconds <= 5.0

    def test_half_open_probe_success_recloses(self):
        breaker, clock, transitions = self.make(
            failure_threshold=1, cooldown_seconds=5.0
        )
        breaker.record_failure()
        clock[0] = 6.0
        breaker.allow()  # the single probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert transitions == [
            CircuitBreaker.OPEN,
            CircuitBreaker.HALF_OPEN,
            CircuitBreaker.CLOSED,
        ]

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock, _ = self.make(failure_threshold=1, cooldown_seconds=1.0)
        breaker.record_failure()
        clock[0] = 2.0
        breaker.allow()
        with pytest.raises(CircuitOpen):
            breaker.allow()  # second caller sheds while the probe is out

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        breaker, clock, _ = self.make(failure_threshold=1, cooldown_seconds=5.0)
        breaker.record_failure()
        clock[0] = 6.0
        breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 8.0  # cooldown restarted at t=6: still shedding
        with pytest.raises(CircuitOpen):
            breaker.allow()
        clock[0] = 11.5
        breaker.allow()
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_success_resets_the_failure_streak(self):
        breaker, _, _ = self.make(failure_threshold=2, cooldown_seconds=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_closed_allow_returns_no_probe_token(self):
        breaker, _, _ = self.make()
        assert breaker.allow() is None
        breaker.release_probe(None)  # no-op by contract

    def test_abandoned_probe_release_frees_the_slot(self):
        # A probe that exits without a verdict (pool timeout, cancel) must
        # free the slot from its finally, or the breaker sheds forever.
        breaker, clock, _ = self.make(failure_threshold=1, cooldown_seconds=1.0)
        breaker.record_failure()
        clock[0] = 2.0
        token = breaker.allow()
        assert token is not None
        breaker.release_probe(token)
        assert breaker.allow() is not None  # a new probe is admitted
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_release_after_settle_is_a_no_op(self):
        breaker, clock, _ = self.make(failure_threshold=1, cooldown_seconds=1.0)
        breaker.record_failure()
        clock[0] = 2.0
        token = breaker.allow()
        breaker.record_success()
        breaker.release_probe(token)  # the finally fires after the verdict
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() is None  # closed traffic, not a probe

    def test_stale_release_cannot_free_a_newer_probe(self):
        breaker, clock, _ = self.make(failure_threshold=1, cooldown_seconds=1.0)
        breaker.record_failure()
        clock[0] = 2.0
        stale = breaker.allow()
        breaker.record_failure()  # probe verdict: still down
        clock[0] = 4.0
        fresh = breaker.allow()  # a newer probe now holds the slot
        assert fresh != stale
        breaker.release_probe(stale)  # the first probe's late finally
        with pytest.raises(CircuitOpen):
            breaker.allow()  # the newer probe's slot is still held


class TestServiceBreaker:
    def test_repeated_engine_failure_opens_the_circuit(self, social_schema):
        with injected_faults(die_on_executes=(1, 2)) as plan:
            with faulty_service(
                social_schema,
                retry_policy=NO_RETRY,
                breaker_threshold=2,
                breaker_cooldown_seconds=60.0,
            ) as svc:
                for _ in range(2):
                    with pytest.raises(Exception):
                        svc.run(SCAN)
                assert svc.breaker("faulty").state == CircuitBreaker.OPEN
                executes_before = plan.executes
                with pytest.raises(CircuitOpen):
                    svc.run(SCAN)
                # Shed before any pool or engine work happened.
                assert plan.executes == executes_before
                metrics = svc.metrics
                assert metrics.counter("repro_breaker_rejections_total").value(
                    backend="faulty"
                ) == 1
                assert metrics.counter("repro_breaker_transitions_total").value(
                    backend="faulty", state="open"
                ) == 1

    def test_breaker_recovers_after_cooldown(self, social_schema):
        with injected_faults(die_on_executes=(1, 2)):
            with faulty_service(
                social_schema,
                retry_policy=NO_RETRY,
                breaker_threshold=2,
                breaker_cooldown_seconds=0.05,
            ) as svc:
                for _ in range(2):
                    with pytest.raises(Exception):
                        svc.run(SCAN)
                assert svc.breaker("faulty").state == CircuitBreaker.OPEN
                time.sleep(0.06)
                # The cooldown admits one probe; the faults are exhausted,
                # so it succeeds and the circuit re-closes.
                table = svc.run(SCAN)
                assert len(table.rows) == 20
                assert svc.breaker("faulty").state == CircuitBreaker.CLOSED
                assert svc.metrics.counter(
                    "repro_breaker_transitions_total"
                ).value(backend="faulty", state="closed") == 1

    def test_half_open_probe_query_error_does_not_wedge(self, social_schema):
        """A genuine query error on a retained member during HALF_OPEN used
        to leave the probe slot held forever, permanently shedding the
        backend; the connection proved alive, so the circuit re-closes."""
        with injected_faults(die_on_executes=(1, 2), error_on_executes=(3,)):
            with faulty_service(
                social_schema,
                retry_policy=NO_RETRY,
                breaker_threshold=2,
                breaker_cooldown_seconds=0.05,
            ) as svc:
                for _ in range(2):
                    with pytest.raises(Exception):
                        svc.run(SCAN)
                assert svc.breaker("faulty").state == CircuitBreaker.OPEN
                time.sleep(0.06)
                with pytest.raises(FaultInjected):
                    svc.run(SCAN)  # the probe: query error, member retained
                assert svc.breaker("faulty").state == CircuitBreaker.CLOSED
                table = svc.run(SCAN)  # served, not shed
                assert len(table.rows) == 20

    def test_async_half_open_probe_query_error_does_not_wedge(
        self, social_schema
    ):
        with injected_faults(die_on_executes=(1, 2), error_on_executes=(3,)):
            with faulty_service(
                social_schema,
                retry_policy=NO_RETRY,
                breaker_threshold=2,
                breaker_cooldown_seconds=0.05,
            ) as sync_svc:

                async def main():
                    async with AsyncGraphitiService(sync_svc) as svc:
                        for _ in range(2):
                            with pytest.raises(Exception):
                                await svc.run(SCAN)
                        assert (
                            sync_svc.breaker("faulty").state
                            == CircuitBreaker.OPEN
                        )
                        await asyncio.sleep(0.06)
                        with pytest.raises(FaultInjected):
                            await svc.run(SCAN)
                        assert (
                            sync_svc.breaker("faulty").state
                            == CircuitBreaker.CLOSED
                        )
                        return await svc.run(SCAN)

                table = asyncio.run(main())
                assert len(table.rows) == 20


class TestPoolSelfHealing:
    @pytest.fixture
    def emp_dept_db(self, emp_dept_schema):
        sdt = infer_sdt(emp_dept_schema)
        return MockDataGenerator(emp_dept_schema, sdt, seed=3).induced_instance(30)

    def test_dead_idle_member_evicted_on_checkout(self, emp_dept_db):
        registry = MetricsRegistry()
        with ConnectionPool(
            "sqlite-memory", emp_dept_db, capacity=2, registry=registry
        ) as pool:
            member = pool.checkout()
            pool.checkin(member)
            member.connection.close()  # dies while idle
            healthy = pool.checkout(timeout=5)
            assert healthy is not member
            assert healthy.execute('SELECT COUNT(*) FROM "EMP"').rows[0][0] == 30
            pool.checkin(healthy)
            assert registry.counter("repro_pool_validation_failures_total").total() == 1
            assert registry.counter("repro_pool_evictions_total").total() == 1

    def test_damaged_checkin_retains_healthy_member(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            member = pool.checkout()
            assert pool.checkin(member, damaged=True) is True
            assert pool.idle_count == 1

    def test_damaged_checkin_evicts_dead_member(self, emp_dept_db):
        registry = MetricsRegistry()
        with ConnectionPool(
            "sqlite-memory", emp_dept_db, capacity=2, registry=registry
        ) as pool:
            member = pool.checkout()
            member.connection.close()
            assert pool.checkin(member, damaged=True) is False
            snapshot = pool.snapshot()
            assert snapshot["in_use"] == 0
            assert snapshot["size"] == 0  # slot freed for a respawn
            assert registry.counter("repro_pool_evictions_total").total() == 1
            # The next checkout spawns a fresh, working member.
            fresh = pool.checkout(timeout=5)
            assert fresh.execute('SELECT COUNT(*) FROM "EMP"').rows[0][0] == 30
            pool.checkin(fresh)

    def test_eviction_wakes_a_blocked_waiter(self, emp_dept_db):
        # Eviction frees a capacity slot; a checkout blocked at capacity
        # must be woken to claim it instead of waiting out its timeout.
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            acquired = []
            entered = threading.Event()

            def blocked():
                entered.set()
                other = pool.checkout(timeout=10)
                acquired.append(other)
                pool.checkin(other)

            thread = threading.Thread(target=blocked)
            thread.start()
            entered.wait(5)
            time.sleep(0.05)  # let it reach the condition wait
            member.connection.close()
            assert pool.checkin(member, damaged=True) is False
            thread.join(timeout=10)
            assert not thread.is_alive()
            assert len(acquired) == 1

    def test_validation_can_be_disabled(self, emp_dept_db):
        with ConnectionPool(
            "sqlite-memory", emp_dept_db, capacity=2, validate_on_checkout=False
        ) as pool:
            member = pool.checkout()
            pool.checkin(member)
            member.connection.close()
            assert pool.checkout() is member  # handed out unprobed


class TestAsyncCancellation:
    def test_cancel_mid_batch_rebalances_the_pool(self, social_schema):
        """Cancelling ``run_many`` mid-flight must check every member back
        in (via the executor done-callbacks) and leave the gauges at the
        idle baseline — nothing leaks, nothing stays "in use"."""
        with injected_faults(
            hang_on_executes=(1, 2), hang_seconds=0.3
        ):
            with faulty_service(social_schema) as sync_svc:

                async def main():
                    async with AsyncGraphitiService(
                        sync_svc, max_concurrency=2
                    ) as svc:
                        task = asyncio.ensure_future(
                            svc.run_many([SCAN] * 3, concurrency=2)
                        )
                        await asyncio.sleep(0.1)  # both members mid-hang
                        task.cancel()
                        with pytest.raises(asyncio.CancelledError):
                            await task
                    # __aexit__ drained the executor: the done-callbacks
                    # have checked every member back in.

                asyncio.run(main())
                snapshot = sync_svc.pool_snapshots()["faulty"]
                assert snapshot["in_use"] == 0
                assert snapshot["waiters"] == 0
                assert snapshot["idle"] == snapshot["size"]


class TestMemberDiesMidPartitionScan:
    def test_partition_retries_on_a_healthy_member(self, social_schema):
        """A pool member dying mid-partition-scan is a *per-partition*
        event: that partition's execution evicts the member and retries
        on a healthy one through the same guarded pipeline every serial
        query uses, the sibling partition is untouched, and the merged
        result is intact — the parallel query never fails."""
        with injected_faults(die_on_executes=(1,)) as plan:
            with faulty_service(
                social_schema, parallelism=2, parallel_row_threshold=0
            ) as svc:
                table, prepared = svc.serve(SCAN)
                assert len(table.rows) == 20
                assert prepared.plan.parallelism["parallel"]
                assert prepared.plan.parallelism["degree"] == 2
                assert plan.events == [("die", 1)]
                metrics = svc.metrics
                assert metrics.counter("repro_query_retries_total").value(
                    backend="faulty"
                ) == 1
                assert metrics.counter("repro_pool_evictions_total").total() == 1
                assert svc.breaker("faulty").state == CircuitBreaker.CLOSED
                # The pool healed: gauges back at the idle baseline, and
                # the service keeps serving parallel queries.
                snapshot = svc.pool_snapshots()["faulty"]
                assert snapshot["in_use"] == 0
                assert len(svc.run(SCAN).rows) == 20
