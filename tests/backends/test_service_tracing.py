"""Observability across the serving stack: stats under contention, span
parenting under concurrency, pool-timeout diagnostics, registry counters.

The span-parenting tests are the concurrency contract of the tracer wiring:
``run_many`` over worker threads and async ``run_many`` over coroutines
must both yield ONE ``query.batch`` root whose children are exactly the
batch's queries — balanced (every span closed, children inside parent
bounds) and non-interleaved, even though the work raced on real threads.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.backends import (
    AsyncGraphitiService,
    ConnectionPool,
    GraphitiService,
    PoolTimeout,
)
from repro.core.sdt import infer_sdt
from repro.execution.datagen import MockDataGenerator
from repro.observability.tracing import NOOP_TRACER, Tracer

SCAN = "MATCH (n:EMP) RETURN n.name"
JOIN = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname"
AGGREGATE = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)"
DEPT_SCAN = "MATCH (m:DEPT) RETURN m.dname"
BATCH = [SCAN, JOIN, AGGREGATE, DEPT_SCAN]


@pytest.fixture
def emp_dept_db(emp_dept_schema):
    sdt = infer_sdt(emp_dept_schema)
    return MockDataGenerator(emp_dept_schema, sdt, seed=3).induced_instance(30)


@pytest.fixture
def service(emp_dept_schema):
    with GraphitiService(emp_dept_schema, pool_size=4) as svc:
        svc.load_mock(40, seed=11)
        yield svc


def assert_balanced(root) -> None:
    """Every span closed; every child inside its parent's time bounds."""
    for span in root.walk():
        assert span.end is not None, f"span {span.name!r} never closed"
        for child in span.children:
            assert child.start >= span.start
            assert child.end <= span.end


class TestQueryStatUnderContention:
    """Satellite: percentile accounting must survive a thread-hammer."""

    def test_concurrent_record_execution_exact_counts(self, service):
        threads, per_thread = 8, 200

        def hammer(offset: float) -> None:
            for index in range(per_thread):
                service.record_execution(SCAN, 0.001 * (offset + index))

        workers = [
            threading.Thread(target=hammer, args=(float(i),)) for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        (stat,) = service.query_stats()
        assert stat.cypher_text == SCAN
        assert stat.executions == threads * per_thread
        assert stat.total_seconds == pytest.approx(
            sum(
                0.001 * (offset + index)
                for offset in range(threads)
                for index in range(per_thread)
            )
        )

    def test_percentiles_ordered_and_within_range(self, service):
        def hammer(seconds: float) -> None:
            for _ in range(100):
                service.record_execution(JOIN, seconds)

        workers = [
            threading.Thread(target=hammer, args=(0.001 * (i + 1),)) for i in range(6)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        (stat,) = service.query_stats()
        assert 0.0 < stat.p50_seconds <= stat.p95_seconds <= 0.006
        assert stat.mean_seconds == pytest.approx(stat.total_seconds / stat.executions)

    def test_backend_label_feeds_the_registry(self, service):
        service.record_execution(SCAN, 0.01, backend="sqlite-memory")
        service.record_execution(SCAN, 0.02, backend="sqlite-memory")
        counter = service.metrics.counter("repro_queries_total")
        assert counter.value(backend="sqlite-memory") == 2
        histogram = service.metrics.histogram("repro_query_seconds")
        assert histogram.count(backend="sqlite-memory") == 2
        assert histogram.sum(backend="sqlite-memory") == pytest.approx(0.03)


class TestThreadedSpanParenting:
    """Satellite: balanced, parented spans under ``run_many(workers=N)``."""

    def test_batch_children_match_batch_exactly(self, service):
        tracer = Tracer()
        service.set_tracer(tracer)
        try:
            batch = BATCH * 3
            service.run_many(batch, workers=4)
        finally:
            service.set_tracer(None)
        batch_span = tracer.last_trace()
        assert batch_span.name == "query.batch"
        assert batch_span.attributes["queries"] == len(batch)
        queries = [child for child in batch_span.children if child.name == "query"]
        assert len(queries) == len(batch)
        # index attributes cover the batch: no span lost, none duplicated.
        assert sorted(child.attributes["index"] for child in queries) == list(
            range(len(batch))
        )
        for child in queries:
            assert child.find("execute") is not None
        assert_balanced(batch_span)

    def test_no_interleaving_across_roots(self, service):
        """Two sequential batches yield two disjoint roots, not a tangle."""
        tracer = Tracer()
        service.set_tracer(tracer)
        try:
            service.run_many([SCAN, DEPT_SCAN], workers=2)
            service.run_many([JOIN], workers=2)
        finally:
            service.set_tracer(None)
        roots = [span for span in tracer.traces() if span.name == "query.batch"]
        assert [root.attributes["queries"] for root in roots] == [2, 1]

    def test_single_run_root_span_attributes(self, service):
        tracer = Tracer()
        service.set_tracer(tracer)
        try:
            result = service.run(JOIN)
        finally:
            service.set_tracer(None)
        root = tracer.last_trace()
        assert root.name == "query"
        assert root.attributes["rows"] == len(result.rows)
        assert root.attributes["backend"] == service.default_backend
        assert_balanced(root)


class TestAsyncSpanParenting:
    """Satellite: balanced, parented spans under async ``run_many``."""

    def test_gathered_queries_parent_under_one_batch(self, service):
        tracer = Tracer()
        service.set_tracer(tracer)
        async_svc = AsyncGraphitiService(service, max_concurrency=4)
        try:
            batch = BATCH * 2
            asyncio.run(async_svc.run_many(batch, concurrency=4))
        finally:
            async_svc.close()
            service.set_tracer(None)
        batch_span = tracer.last_trace()
        assert batch_span.name == "query.batch"
        assert batch_span.attributes["mode"] == "async"
        queries = [child for child in batch_span.children if child.name == "query"]
        assert sorted(child.attributes["index"] for child in queries) == list(
            range(len(batch))
        )
        # The execute span crosses the loop→executor boundary and must
        # still land under its own query, not a sibling's.
        for child in queries:
            assert child.find("execute") is not None
        assert_balanced(batch_span)

    def test_async_run_root_is_marked_async(self, service):
        tracer = Tracer()
        service.set_tracer(tracer)
        async_svc = AsyncGraphitiService(service, max_concurrency=2)
        try:
            asyncio.run(async_svc.run(SCAN))
        finally:
            async_svc.close()
            service.set_tracer(None)
        root = tracer.last_trace()
        assert root.name == "query"
        assert root.attributes["mode"] == "async"
        assert root.find("pool.checkout") is not None
        assert root.find("execute") is not None
        assert_balanced(root)


class TestPoolTimeoutDiagnostics:
    """Satellite: PoolTimeout must say capacity / in-use / waiters / wait."""

    def test_sync_timeout_message_and_attributes(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=1)
        member = pool.checkout()
        try:
            with pytest.raises(PoolTimeout) as excinfo:
                pool.checkout(timeout=0.05)
        finally:
            pool.checkin(member)
            pool.close()
        error = excinfo.value
        message = str(error)
        assert "capacity 1" in message
        assert "1 in use" in message
        assert "0 idle" in message
        assert "waiter(s)" in message
        assert "waited" in message
        assert error.backend == "sqlite-memory"
        assert error.capacity == 1
        assert error.in_use == 1
        assert error.idle == 0
        assert error.waited_seconds >= 0.05

    def test_async_timeout_carries_the_same_diagnostics(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema, pool_size=1) as service:
            service.load_mock(10, seed=5)
            async_svc = AsyncGraphitiService(
                service, max_concurrency=2, checkout_timeout=0.05
            )
            pool = service.pool()
            hog = pool.checkout()
            try:
                with pytest.raises(PoolTimeout) as excinfo:
                    asyncio.run(asyncio.wait_for(async_svc.run(SCAN), timeout=30))
            finally:
                pool.checkin(hog)
                async_svc.close()
        error = excinfo.value
        assert error.capacity == 1
        assert error.in_use == 1
        assert error.waited_seconds is not None
        assert "capacity 1" in str(error)


class TestRegistryAfterServing:
    """Counters, gauges and the slow-query ring after real traffic."""

    def test_query_counters_match_work_done(self, service):
        service.run_many(BATCH, workers=2)
        service.run(SCAN)
        backend = service.default_backend
        counter = service.metrics.counter("repro_queries_total")
        assert counter.value(backend=backend) == len(BATCH) + 1
        checkouts = service.metrics.counter("repro_pool_checkouts_total")
        assert checkouts.value(backend=backend) >= len(BATCH) + 1

    def test_cache_counter_tiers(self, service):
        service.run(SCAN)
        service.run(SCAN)
        cache = service.metrics.counter("repro_transpile_cache_total")
        assert cache.value(tier="memory", result="miss") == 1
        assert cache.value(tier="memory", result="hit") == 1

    def test_pool_snapshot_view(self, service):
        service.run(SCAN)
        snapshot = service.pool_snapshots()[service.default_backend]
        assert snapshot["backend"] == service.default_backend
        assert snapshot["capacity"] == 4
        assert snapshot["in_use"] == 0
        assert not snapshot["closed"]

    def test_slow_query_log_records_over_threshold(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema, slow_query_seconds=0.0) as svc:
            svc.load_mock(10, seed=3)
            svc.run(SCAN)
            entries = svc.slow_queries.entries()
        assert entries
        assert entries[-1].cypher_text == SCAN

    def test_set_tracer_propagates_to_live_pools(self, service):
        service.run(SCAN)  # spawns the pool
        pool = service.pool()
        assert pool.tracer is NOOP_TRACER
        tracer = Tracer()
        service.set_tracer(tracer)
        assert pool.tracer is tracer
        service.set_tracer(None)
        assert pool.tracer is NOOP_TRACER
        assert service.tracer is NOOP_TRACER
