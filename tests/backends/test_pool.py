"""ConnectionPool behaviour: checkout/checkin, lazy growth, clones, close."""

import threading
import time

import pytest

from repro.backends import ConnectionPool, PoolClosed, PoolTimeout, available_backends
from repro.core.sdt import infer_sdt
from repro.execution.datagen import MockDataGenerator
from repro.sql.stats import collect_stats


@pytest.fixture
def emp_dept_db(emp_dept_schema):
    sdt = infer_sdt(emp_dept_schema)
    return MockDataGenerator(emp_dept_schema, sdt, seed=3).induced_instance(30)


QUERY = 'SELECT COUNT(*) FROM "EMP"'


class TestCheckoutCheckin:
    def test_primary_is_warm_and_loaded(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            assert pool.size == 1  # primary created eagerly
            with pool.connection() as engine:
                assert engine.execute(QUERY).rows[0][0] == 30

    def test_checkin_returns_member_to_idle(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=4)
        member = pool.checkout()
        assert (pool.idle_count, pool.in_use) == (0, 1)
        pool.checkin(member)
        assert (pool.idle_count, pool.in_use) == (1, 0)
        # The same warmed member is reused, not a new one.
        assert pool.checkout() is member
        pool.close()

    def test_grows_lazily_up_to_capacity(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=3) as pool:
            members = [pool.checkout() for _ in range(3)]
            assert pool.size == 3
            assert len({id(m) for m in members}) == 3
            for member in members:
                assert member.execute(QUERY).rows[0][0] == 30
                pool.checkin(member)

    def test_blocks_at_capacity_until_checkin(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=1)
        member = pool.checkout()
        acquired = []

        def blocked_checkout():
            other = pool.checkout(timeout=5)
            acquired.append(other)
            pool.checkin(other)

        thread = threading.Thread(target=blocked_checkout)
        thread.start()
        time.sleep(0.05)
        assert not acquired  # still blocked
        pool.checkin(member)
        thread.join(timeout=5)
        assert acquired == [member]
        pool.close()

    def test_checkout_timeout(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=1)
        member = pool.checkout()
        with pytest.raises(PoolTimeout):
            pool.checkout(timeout=0.05)
        pool.checkin(member)
        pool.close()

    def test_invalid_capacity_rejected(self, emp_dept_db):
        with pytest.raises(ValueError, match="capacity"):
            ConnectionPool("sqlite-memory", emp_dept_db, capacity=0)


class TestGrowthAndWarm:
    def test_warm_spawns_members_eagerly(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=4) as pool:
            pool.warm(3)
            assert pool.size == 3
            assert pool.idle_count == 3

    def test_warm_respects_capacity(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            pool.warm(10)
            assert pool.size == 2

    def test_grow_to_raises_ceiling_only(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            pool.grow_to(5)
            assert pool.capacity == 5
            pool.grow_to(1)  # never shrinks
            assert pool.capacity == 5

    def test_members_share_precollected_stats(self, emp_dept_db):
        stats = collect_stats(emp_dept_db)
        with ConnectionPool(
            "sqlite-memory", emp_dept_db, capacity=2, stats=stats
        ) as pool:
            pool.warm(2)
            first = pool.checkout()
            second = pool.checkout()
            # Same mapping object: nobody re-scanned the database.
            assert first.table_stats is stats
            assert second.table_stats is stats
            pool.checkin(first)
            pool.checkin(second)


class TestSharedStorageClones:
    def test_file_backend_clones_share_one_database_file(self, emp_dept_db):
        with ConnectionPool("sqlite-file", emp_dept_db, capacity=3) as pool:
            members = [pool.checkout() for _ in range(3)]
            paths = {member.path for member in members}
            assert len(paths) == 1  # one file, three connections
            for member in members:
                assert member.execute(QUERY).rows[0][0] == 30
                pool.checkin(member)

    def test_clone_does_not_delete_shared_file_on_checkin_close(self, emp_dept_db):
        import os

        pool = ConnectionPool("sqlite-file", emp_dept_db, capacity=2)
        first = pool.checkout()
        second = pool.checkout()
        primary_path = first.path
        pool.checkin(first)
        pool.checkin(second)
        assert os.path.exists(primary_path)
        pool.close()
        assert not os.path.exists(primary_path)  # primary cleaned up

    @pytest.mark.parametrize("name", available_backends())
    def test_every_available_backend_pools(self, name, emp_dept_db):
        with ConnectionPool(name, emp_dept_db, capacity=2) as pool:
            pool.warm(2)
            first = pool.checkout()
            second = pool.checkout()
            try:
                for member in (first, second):
                    assert member.execute(QUERY).rows[0][0] == 30
            finally:
                pool.checkin(first)
                pool.checkin(second)


class TestClose:
    def test_checkout_after_close_raises(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=2)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.checkout()

    def test_close_is_idempotent(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=2)
        pool.close()
        pool.close()

    def test_outstanding_member_closed_on_checkin(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=2)
        member = pool.checkout()
        pool.close()
        assert member.connection is not None  # not torn down mid-use
        pool.checkin(member)
        assert member.connection is None  # closed on the way in
        assert pool.size == 0

    def test_concurrent_checkouts_from_threads(self, emp_dept_db):
        errors = []
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=4) as pool:

            def worker():
                try:
                    for _ in range(20):
                        with pool.connection(timeout=10) as engine:
                            assert engine.execute(QUERY).rows[0][0] == 30
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
