"""ConnectionPool behaviour: checkout/checkin, lazy growth, clones, close,
and the non-blocking protocol async callers ride on (try_checkout /
try_reserve + spawn_reserved / waiter callbacks)."""

import asyncio
import threading

import pytest

from repro.backends import ConnectionPool, PoolClosed, PoolTimeout, available_backends
from repro.core.sdt import infer_sdt
from repro.execution.datagen import MockDataGenerator
from repro.sql.stats import collect_stats


@pytest.fixture
def emp_dept_db(emp_dept_schema):
    sdt = infer_sdt(emp_dept_schema)
    return MockDataGenerator(emp_dept_schema, sdt, seed=3).induced_instance(30)


QUERY = 'SELECT COUNT(*) FROM "EMP"'


class TestCheckoutCheckin:
    def test_primary_is_warm_and_loaded(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            assert pool.size == 1  # primary created eagerly
            with pool.connection() as engine:
                assert engine.execute(QUERY).rows[0][0] == 30

    def test_checkin_returns_member_to_idle(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=4)
        member = pool.checkout()
        assert (pool.idle_count, pool.in_use) == (0, 1)
        pool.checkin(member)
        assert (pool.idle_count, pool.in_use) == (1, 0)
        # The same warmed member is reused, not a new one.
        assert pool.checkout() is member
        pool.close()

    def test_grows_lazily_up_to_capacity(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=3) as pool:
            members = [pool.checkout() for _ in range(3)]
            assert pool.size == 3
            assert len({id(m) for m in members}) == 3
            for member in members:
                assert member.execute(QUERY).rows[0][0] == 30
                pool.checkin(member)

    def test_blocks_at_capacity_until_checkin(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=1)
        member = pool.checkout()
        acquired = []
        entered = threading.Event()

        def blocked_checkout():
            entered.set()
            other = pool.checkout(timeout=10)
            acquired.append(other)
            pool.checkin(other)

        thread = threading.Thread(target=blocked_checkout)
        thread.start()
        # No sleep-based timing: the pool is at capacity with its only
        # member checked out here, so the thread *cannot* have acquired
        # anything until our checkin below, however it is scheduled.
        assert entered.wait(timeout=10)
        assert not acquired
        pool.checkin(member)
        thread.join(timeout=10)
        assert acquired == [member]
        pool.close()

    def test_checkout_timeout(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=1)
        member = pool.checkout()
        with pytest.raises(PoolTimeout):
            pool.checkout(timeout=0.05)
        pool.checkin(member)
        pool.close()

    def test_invalid_capacity_rejected(self, emp_dept_db):
        with pytest.raises(ValueError, match="capacity"):
            ConnectionPool("sqlite-memory", emp_dept_db, capacity=0)


class TestGrowthAndWarm:
    def test_warm_spawns_members_eagerly(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=4) as pool:
            pool.warm(3)
            assert pool.size == 3
            assert pool.idle_count == 3

    def test_warm_respects_capacity(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            pool.warm(10)
            assert pool.size == 2

    def test_grow_to_raises_ceiling_only(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            pool.grow_to(5)
            assert pool.capacity == 5
            pool.grow_to(1)  # never shrinks
            assert pool.capacity == 5

    def test_members_share_precollected_stats(self, emp_dept_db):
        stats = collect_stats(emp_dept_db)
        with ConnectionPool(
            "sqlite-memory", emp_dept_db, capacity=2, stats=stats
        ) as pool:
            pool.warm(2)
            first = pool.checkout()
            second = pool.checkout()
            # Same mapping object: nobody re-scanned the database.
            assert first.table_stats is stats
            assert second.table_stats is stats
            pool.checkin(first)
            pool.checkin(second)


class TestSharedStorageClones:
    def test_file_backend_clones_share_one_database_file(self, emp_dept_db):
        with ConnectionPool("sqlite-file", emp_dept_db, capacity=3) as pool:
            members = [pool.checkout() for _ in range(3)]
            paths = {member.path for member in members}
            assert len(paths) == 1  # one file, three connections
            for member in members:
                assert member.execute(QUERY).rows[0][0] == 30
                pool.checkin(member)

    def test_clone_does_not_delete_shared_file_on_checkin_close(self, emp_dept_db):
        import os

        pool = ConnectionPool("sqlite-file", emp_dept_db, capacity=2)
        first = pool.checkout()
        second = pool.checkout()
        primary_path = first.path
        pool.checkin(first)
        pool.checkin(second)
        assert os.path.exists(primary_path)
        pool.close()
        assert not os.path.exists(primary_path)  # primary cleaned up

    @pytest.mark.parametrize("name", available_backends())
    def test_every_available_backend_pools(self, name, emp_dept_db):
        with ConnectionPool(name, emp_dept_db, capacity=2) as pool:
            pool.warm(2)
            first = pool.checkout()
            second = pool.checkout()
            try:
                for member in (first, second):
                    assert member.execute(QUERY).rows[0][0] == 30
            finally:
                pool.checkin(first)
                pool.checkin(second)


class TestClose:
    def test_checkout_after_close_raises(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=2)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.checkout()

    def test_close_is_idempotent(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=2)
        pool.close()
        pool.close()

    def test_outstanding_member_closed_on_checkin(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=2)
        member = pool.checkout()
        pool.close()
        assert member.connection is not None  # not torn down mid-use
        pool.checkin(member)
        assert member.connection is None  # closed on the way in
        assert pool.size == 0

    def test_concurrent_checkouts_from_threads(self, emp_dept_db):
        errors = []
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=4) as pool:

            def worker():
                try:
                    for _ in range(20):
                        with pool.connection(timeout=10) as engine:
                            assert engine.execute(QUERY).rows[0][0] == 30
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors


class TestNonBlockingProtocol:
    """The seam async callers use instead of the blocking ``checkout``."""

    def test_try_checkout_pops_idle_member(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            member = pool.try_checkout()
            assert member is not None
            assert member.execute(QUERY).rows[0][0] == 30
            pool.checkin(member)

    def test_try_checkout_returns_none_when_busy(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            assert pool.try_checkout() is None  # no block, no spawn
            pool.checkin(member)

    def test_try_reserve_and_spawn_grow_the_pool(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            first = pool.checkout()
            assert pool.try_reserve() is True
            second = pool.spawn_reserved()  # arrives checked out
            assert second is not first
            assert pool.size == 2
            assert pool.try_reserve() is False  # at capacity now
            pool.checkin(first)
            pool.checkin(second)

    def test_try_checkout_after_close_raises(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=1)
        pool.close()
        with pytest.raises(PoolClosed):
            pool.try_checkout()
        with pytest.raises(PoolClosed):
            pool.try_reserve()

    def test_waiter_fires_on_checkin(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            fired = threading.Event()
            pool.add_waiter(fired.set)
            assert not fired.is_set()
            pool.checkin(member)
            assert fired.wait(timeout=5)

    def test_waiter_fires_on_close(self, emp_dept_db):
        pool = ConnectionPool("sqlite-memory", emp_dept_db, capacity=1)
        fired = threading.Event()
        pool.add_waiter(fired.set)
        pool.close()
        assert fired.wait(timeout=5)

    def test_cancel_reservation_restores_capacity(self, emp_dept_db):
        """A reservation whose spawn never runs (cancelled dispatch) must
        release its slot, or the pool can never grow to capacity again."""
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            first = pool.checkout()
            assert pool.try_reserve() is True
            assert pool.try_reserve() is False  # slot held
            pool.cancel_reservation()
            assert pool.try_reserve() is True  # slot is back
            second = pool.spawn_reserved()
            pool.checkin(first)
            pool.checkin(second)

    def test_remove_waiter_reports_consumed_hint(self, emp_dept_db):
        """remove_waiter returns False once the callback was popped for
        firing — the signal a timed-out waiter uses to hand its hint on."""
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            fired = threading.Event()
            token = pool.add_waiter(fired.set)
            pool.checkin(member)
            assert fired.wait(timeout=5)
            assert pool.remove_waiter(token) is False  # already consumed
            live = pool.add_waiter(lambda: None)
            assert pool.remove_waiter(live) is True

    def test_wake_waiter_hands_hint_to_next_in_line(self, emp_dept_db):
        """The lost-wakeup fix: a woken waiter that cannot use its hint
        (timeout, cancellation) re-fires it so the next waiter proceeds."""
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            first, second = threading.Event(), threading.Event()
            token = pool.add_waiter(first.set)
            pool.add_waiter(second.set)
            pool.checkin(member)  # wakes the first waiter only
            assert first.wait(timeout=5)
            assert not second.is_set()
            # First waiter times out instead of retrying: pass the hint on.
            assert pool.remove_waiter(token) is False
            pool.wake_waiter()
            assert second.wait(timeout=5)

    def test_removed_waiter_never_fires(self, emp_dept_db):
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            fired = threading.Event()
            token = pool.add_waiter(fired.set)
            pool.remove_waiter(token)
            pool.remove_waiter(token)  # idempotent
            pool.checkin(member)
            assert not fired.is_set()

    def test_waiter_exceptions_do_not_break_checkin(self, emp_dept_db):
        """A dead event loop's callback raising must not poison the pool."""
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            pool.add_waiter(lambda: (_ for _ in ()).throw(RuntimeError("boom")))
            pool.checkin(member)  # must not raise
            assert pool.idle_count == 1

    def test_waiters_fire_once_per_registration(self, emp_dept_db):
        """One freed member wakes one waiter (FIFO), not the whole herd."""
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=1) as pool:
            member = pool.checkout()
            first, second = threading.Event(), threading.Event()
            pool.add_waiter(first.set)
            pool.add_waiter(second.set)
            pool.checkin(member)
            assert first.wait(timeout=5)
            assert not second.is_set()
            other = pool.checkout()
            pool.checkin(other)
            assert second.wait(timeout=5)


class TestAsyncEdgeCases:
    """Pool discipline under the asyncio serving layer."""

    def test_checkin_on_exception_during_awaited_execution(
        self, emp_dept_schema, monkeypatch
    ):
        """A query failing *inside* an awaited execution must check its
        connection back in — the classic leak in async serving layers."""
        from repro.backends import AsyncGraphitiService, GraphitiService
        from repro.backends.sqlite import SqliteMemoryBackend

        query = "MATCH (n:EMP) RETURN n.name"
        with GraphitiService(emp_dept_schema, pool_size=2) as service:
            service.load_mock(20, seed=9)
            async_svc = AsyncGraphitiService(service, max_concurrency=2)
            try:
                pool = service.pool()  # created (and loaded) before the poison

                def always_failing(self, sql_text):
                    raise RuntimeError("engine crashed mid-query")

                monkeypatch.setattr(SqliteMemoryBackend, "execute", always_failing)
                for _ in range(3):
                    with pytest.raises(RuntimeError, match="engine crashed"):
                        asyncio.run(async_svc.run(query))
                assert pool.in_use == 0
                assert pool.idle_count == pool.size  # fully drained back
                # The pool still serves good queries once the engine heals.
                monkeypatch.undo()
                table = asyncio.run(async_svc.run(query))
                assert len(table) == 20
            finally:
                async_svc.close()

    def test_template_member_never_handed_out_under_mixed_load(
        self, emp_dept_schema, monkeypatch
    ):
        """sqlite-file keeps a template member owning the shared database
        file; under simultaneous sync-thread and asyncio load it must never
        execute a query — only clones are handed out."""
        from repro.backends import AsyncGraphitiService, GraphitiService
        from repro.backends.sqlite import SqliteFileBackend

        executed_on: set[int] = set()
        original = SqliteFileBackend.execute

        def spying_execute(self, sql_text):
            executed_on.add(id(self))
            return original(self, sql_text)

        monkeypatch.setattr(SqliteFileBackend, "execute", spying_execute)
        query = "MATCH (n:EMP) RETURN n.name"
        with GraphitiService(
            emp_dept_schema, default_backend="sqlite-file", pool_size=3
        ) as service:
            service.load_mock(20, seed=9)
            async_svc = AsyncGraphitiService(service, max_concurrency=3)
            errors: list[Exception] = []

            def sync_load():
                try:
                    for _ in range(6):
                        service.run(query)
                except Exception as error:  # pragma: no cover - failure path
                    errors.append(error)

            async def async_load():
                await asyncio.gather(
                    *(async_svc.run(query) for _ in range(6))
                )

            try:
                threads = [threading.Thread(target=sync_load) for _ in range(2)]
                for thread in threads:
                    thread.start()
                asyncio.run(async_load())
                for thread in threads:
                    thread.join(timeout=30)
                assert not errors
                pool = service.pool()
                template = pool._template
                assert template is not None  # sqlite-file pools via clones
                assert id(template) not in executed_on
                assert executed_on  # the spy actually saw the clones work
            finally:
                async_svc.close()

    def test_spawn_reserved_slot_released_on_failure(self, emp_dept_db, monkeypatch):
        """A failed spawn must release its reserved slot so capacity is not
        leaked (the async layer spawns on executor threads)."""
        with ConnectionPool("sqlite-memory", emp_dept_db, capacity=2) as pool:
            first = pool.checkout()
            assert pool.try_reserve() is True

            def broken_load(*args, **kwargs):
                raise RuntimeError("engine exploded")

            monkeypatch.setattr(
                "repro.backends.pool.load_backend", broken_load
            )
            with pytest.raises(RuntimeError, match="engine exploded"):
                pool.spawn_reserved()
            # The slot is free again: a new reservation must succeed.
            assert pool.try_reserve() is True
            monkeypatch.undo()
            second = pool.spawn_reserved()
            pool.checkin(first)
            pool.checkin(second)
