"""Intra-query parallelism: the partition executor seam.

Unit-level coverage of :mod:`repro.backends.executor` — partition bounds,
the cost gate's serial reasons, partition SQL shape, and the shared
``run_indexed`` fan-out loop — plus service-level checks that the wired
path produces reference-equivalent results, records its verdict in
``PlanReport.parallelism``, keeps the cache variants separate, charges one
shared budget, reuses one persistent batch pool, and composes with
sharding (each shard applies its own gate).
"""

from __future__ import annotations

import threading

import pytest

from repro.backends import (
    FragmentExecutor,
    GraphitiService,
    QueryBudget,
    QueryBudgetExceeded,
    ShardedGraphitiService,
    partition_bounds,
    partition_statements,
    plan_parallelism,
    run_indexed,
)
from repro.backends.executor import PARTITION_CTE
from repro.benchmarks.universes import SOCIAL
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.relational.instance import tables_equivalent
from repro.sql.dialect import ANSI, DUCKDB, SQLITE
from repro.sql.fragment import fragment_query
from repro.sql.parser import parse_sql  # noqa: F401  (re-exported check below)
from repro.sql.stats import TableStats


@pytest.fixture
def social_schema() -> GraphSchema:
    return GraphSchema.of(
        [NodeType("USER", ("uid", "age"))],
        [EdgeType("FOLLOWS", "USER", "USER", ("fid",))],
    )


SCAN = "MATCH (a:USER) WHERE a.uid > 2 RETURN a.uid, a.age"
AGG = "MATCH (a:USER) RETURN avg(a.age), count(*)"
JOIN = "MATCH (a:USER)-[f:FOLLOWS]->(b:USER) RETURN a.uid, b.uid"
TRAVERSAL = "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid"


def parallel_service(schema, rows: int = 30, degree: int = 3, **kwargs):
    svc = GraphitiService(
        schema, parallelism=degree, parallel_row_threshold=0, **kwargs
    )
    svc.load_mock(rows, seed=3)
    return svc


class TestPartitionBounds:
    @pytest.mark.parametrize("row_count", [0, 1, 7, 100, 101, 4096])
    @pytest.mark.parametrize("degree", [2, 3, 4, 8])
    def test_disjoint_and_covering(self, row_count, degree):
        bounds = partition_bounds(row_count, degree)
        assert len(bounds) == degree
        assert bounds[0][0] is None and bounds[-1][1] is None
        # Adjacent ranges share their half-open boundary: no gap, no
        # overlap, whatever the engine's rowid base turns out to be.
        for (_, upper), (lower, _) in zip(bounds, bounds[1:]):
            assert upper == lower and upper is not None

    def test_degenerate_single_partition(self):
        assert partition_bounds(50, 1) == [(None, None)]

    def test_rejects_non_positive_degree(self):
        with pytest.raises(ValueError):
            partition_bounds(50, 0)


def classify(cypher_or_sql_service, cypher: str):
    service = cypher_or_sql_service
    prepared = service.prepare(cypher)
    return prepared, fragment_query(prepared.sql_ast, service.sdt.schema)


class TestParallelGate:
    def test_scan_clears_the_gate(self, social_schema):
        with parallel_service(social_schema) as svc:
            prepared, fragment = classify(svc, SCAN)
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats={"USER": TableStats(row_count=30)},
                degree=3,
                dialect=SQLITE,
                threshold=0,
            )
            assert decision.parallel and decision.degree == 3
            assert decision.relation == "USER"
            assert decision.kind == "shard_local"

    def test_serial_when_not_requested(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, SCAN)
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats={"USER": TableStats(row_count=30)},
                degree=1,
                dialect=SQLITE,
                threshold=0,
            )
            assert not decision.parallel
            assert "not requested" in decision.reason

    def test_serial_without_rowid_dialect(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, SCAN)
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats={"USER": TableStats(row_count=30)},
                degree=4,
                dialect=ANSI,
                threshold=0,
            )
            assert not decision.parallel
            assert "rowid" in decision.reason

    def test_serial_for_non_fragmentable_join(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, JOIN)
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats={"USER": TableStats(row_count=30)},
                degree=4,
                dialect=SQLITE,
                threshold=0,
            )
            assert not decision.parallel
            assert decision.kind == "non_fragmentable"

    def test_serial_without_statistics(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, SCAN)
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats=None,
                degree=4,
                dialect=SQLITE,
                threshold=0,
            )
            assert not decision.parallel
            assert "statistics" in decision.reason

    def test_serial_below_threshold(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, SCAN)
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats={"USER": TableStats(row_count=30)},
                degree=4,
                dialect=SQLITE,
                threshold=2048,
            )
            assert not decision.parallel
            assert "below the parallel threshold" in decision.reason
            assert decision.estimated_rows == 30.0

    def test_degree_clamped_to_row_count(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, SCAN)
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats={"USER": TableStats(row_count=3)},
                degree=8,
                dialect=SQLITE,
                threshold=0,
            )
            assert decision.parallel
            assert decision.degree == 3 and decision.requested == 8

    def test_real_rowid_column_shadows_the_pseudo_column(self):
        schema = GraphSchema.of(
            [NodeType("ITEM", ("rowid", "label"))], []
        )
        with parallel_service(schema, rows=10) as svc:
            _, fragment = classify(
                svc, "MATCH (i:ITEM) RETURN i.label"
            )
            decision = plan_parallelism(
                fragment,
                schema=svc.sdt.schema,
                stats={"ITEM": TableStats(row_count=10)},
                degree=2,
                dialect=SQLITE,
                threshold=0,
            )
            assert not decision.parallel
            assert "shadowing" in decision.reason


class TestPartitionStatements:
    def test_range_restricted_cte_prefix(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, SCAN)
            statements = partition_statements(
                fragment,
                "USER",
                partition_bounds(30, 3),
                svc.sdt.schema,
                SQLITE,
            )
            assert len(statements) == 3
            first, middle, last = statements
            assert first.startswith(f'WITH "{PARTITION_CTE}" AS ')
            # Open ends: first partition has only an upper bound, the
            # last only a lower; interior partitions have both.
            assert '"rowid" < 10' in first and ">=" not in first
            assert '"rowid" >= 10 AND "rowid" < 20' in middle
            assert '"rowid" >= 20' in last and "<" not in last.split(")", 1)[0]
            # The body scans the CTE, not the base table.
            for statement in statements:
                body = statement.split(") ", 1)[1]
                assert f'"{PARTITION_CTE}"' in body
                assert '"USER"' not in body

    def test_statements_execute_on_the_engine(self, social_schema):
        # The synthetic CTE must be legal SQLite: run one partition's
        # SQL directly on a pooled member.
        with parallel_service(social_schema, rows=30) as svc:
            prepared, fragment = classify(svc, SCAN)
            statements = partition_statements(
                fragment,
                "USER",
                partition_bounds(30, 2),
                svc.sdt.schema,
                SQLITE,
            )
            pool = svc.pool("sqlite-memory")
            member = pool.checkout()
            try:
                partials = [member.execute(text) for text in statements]
            finally:
                pool.checkin(member)
            assert sum(len(p.rows) for p in partials) == len(
                svc.reference(SCAN).rows
            )

    def test_duckdb_dialect_renders_rowid_too(self, social_schema):
        with parallel_service(social_schema) as svc:
            _, fragment = classify(svc, SCAN)
            statements = partition_statements(
                fragment,
                "USER",
                partition_bounds(30, 2),
                svc.sdt.schema,
                DUCKDB,
            )
            assert all('"rowid"' in text for text in statements)


class TestRunIndexed:
    def test_inline_when_single_worker(self):
        seen: list[int] = []
        run_indexed(4, seen.append, 1)
        assert seen == [0, 1, 2, 3]

    def test_fans_out_on_threads(self):
        seen: set[int] = set()
        lock = threading.Lock()

        def record(index: int) -> None:
            with lock:
                seen.add(index)

        run_indexed(16, record, 4)
        assert seen == set(range(16))

    def test_first_error_in_index_order_wins(self):
        def explode(index: int) -> None:
            if index in (1, 3):
                raise RuntimeError(f"boom {index}")

        with pytest.raises(RuntimeError, match="boom 1"):
            run_indexed(4, explode, 2)

    def test_siblings_complete_even_when_one_fails(self):
        done: set[int] = set()
        lock = threading.Lock()

        def work(index: int) -> None:
            if index == 0:
                raise RuntimeError("early failure")
            with lock:
                done.add(index)

        with pytest.raises(RuntimeError):
            run_indexed(5, work, 2)
        assert done == {1, 2, 3, 4}

    def test_reuses_a_caller_supplied_executor(self):
        from concurrent.futures import ThreadPoolExecutor

        seen: list[int] = []
        lock = threading.Lock()

        def record(index: int) -> None:
            with lock:
                seen.append(index)

        with ThreadPoolExecutor(max_workers=2) as executor:
            run_indexed(6, record, 2, executor=executor)
        assert sorted(seen) == list(range(6))

    def test_zero_items_is_a_no_op(self):
        run_indexed(0, lambda i: pytest.fail("should not run"), 4)


class TestServedParallelism:
    def test_scan_matches_reference_and_records_the_plan(self, social_schema):
        with parallel_service(social_schema, rows=40, degree=4) as svc:
            result, prepared = svc.serve(SCAN)
            assert tables_equivalent(result, svc.reference(SCAN))
            verdict = prepared.plan.parallelism
            assert verdict["parallel"] and verdict["degree"] == 4
            assert verdict["relation"] == "USER"
            counter = svc.metrics.counter("repro_parallel_queries_total")
            assert counter.value(
                backend="sqlite-memory", kind="shard_local"
            ) == 1
            histogram = svc.metrics.histogram("repro_parallel_partitions")
            assert histogram.count(backend="sqlite-memory") == 1

    def test_aggregate_decomposes_and_matches_reference(self, social_schema):
        with parallel_service(social_schema, rows=40, degree=4) as svc:
            result, prepared = svc.serve(AGG)
            assert tables_equivalent(result, svc.reference(AGG))
            assert prepared.plan.parallelism["kind"] == "merge_aggregable"

    def test_traversal_stays_serial_with_a_reason(self, social_schema):
        with parallel_service(social_schema, rows=10, degree=4) as svc:
            result, prepared = svc.serve(TRAVERSAL)
            assert tables_equivalent(result, svc.reference(TRAVERSAL))
            verdict = prepared.plan.parallelism
            assert not verdict["parallel"]
            assert verdict["reason"]

    def test_default_threshold_keeps_small_scans_serial(self, social_schema):
        with GraphitiService(social_schema, parallelism=4) as svc:
            svc.load_mock(30, seed=3)
            _, prepared = svc.serve(SCAN)
            verdict = prepared.plan.parallelism
            assert not verdict["parallel"]
            assert "threshold" in verdict["reason"]

    def test_cache_variants_keep_degrees_apart(self, social_schema):
        # The same Cypher prepared at parallelism 1 and 3 must hit
        # different cache entries — plan choice is part of the key.
        with GraphitiService(social_schema) as serial_svc:
            serial_svc.load_mock(30, seed=3)
            serial = serial_svc.prepare(SCAN)
        with parallel_service(social_schema, rows=30, degree=3) as svc:
            parallel = svc.prepare(SCAN)
        assert serial.sql_text == parallel.sql_text  # body identical...
        assert serial is not parallel  # ...but distinct cache entries

    def test_budget_is_shared_across_partitions(self, social_schema):
        with parallel_service(social_schema, rows=40, degree=4) as svc:
            # 40 total rows across partitions, budget 10: some single
            # partition may stay under 10, but the shared tracker must
            # see the sum and fire.
            with pytest.raises(QueryBudgetExceeded) as exc:
                svc.run(
                    "MATCH (a:USER) RETURN a.uid, a.age",
                    budget=QueryBudget(max_rows=10, allow_downgrade=False),
                )
            assert exc.value.dimension == "rows"

    def test_reload_invalidates_partitioning(self, social_schema):
        with parallel_service(social_schema, rows=40, degree=4) as svc:
            svc.run(SCAN)
            assert svc._parallel_states
            # New data, new row counts: stale partition bounds must not
            # survive the reload.
            svc.load_mock(3, seed=5)
            assert not svc._parallel_states
            result, prepared = svc.serve(SCAN)
            assert tables_equivalent(result, svc.reference(SCAN))
            # Re-gated over the tiny table: the degree is clamped to the
            # new row count.
            assert prepared.plan.parallelism["degree"] <= 3


class TestPersistentBatchPool:
    def test_run_many_reuses_one_executor(self, social_schema):
        with parallel_service(social_schema, rows=30, degree=1) as svc:
            svc.run_many([SCAN, AGG], workers=2)
            first = svc._batch_executor
            assert first is not None
            svc.run_many([AGG, SCAN], workers=2)
            assert svc._batch_executor is first  # persistent, not per-batch

    def test_pool_grows_but_never_shrinks(self, social_schema):
        with parallel_service(social_schema, rows=30, degree=1) as svc:
            svc.run_many([SCAN, AGG], workers=2)
            svc.run_many([SCAN, AGG, JOIN] * 3, workers=8)
            grown = svc._batch_executor
            assert grown._max_workers >= 8
            svc.run_many([SCAN, AGG], workers=2)
            assert svc._batch_executor is grown

    def test_serial_batches_skip_the_pool(self, social_schema):
        with parallel_service(social_schema, rows=30, degree=1) as svc:
            svc.run_many([SCAN, AGG], workers=1)
            assert svc._batch_executor is None

    def test_close_shuts_both_pools_down(self, social_schema):
        svc = parallel_service(social_schema, rows=40, degree=2)
        svc.run_many([SCAN, AGG], workers=2)
        svc.run(SCAN)  # engages the partition pool
        batch, partition = svc._batch_executor, svc._partition_executor
        assert batch is not None and partition is not None
        svc.close()
        assert svc._batch_executor is None
        assert svc._partition_executor is None
        assert batch._shutdown and partition._shutdown


class TestShardedComposition:
    def test_each_shard_applies_its_own_gate(self, social_schema):
        with ShardedGraphitiService(
            social_schema,
            num_shards=2,
            parallelism=2,
            parallel_row_threshold=0,
        ) as svc:
            svc.load_mock(40, seed=3)
            result = svc.run(SCAN)
            assert tables_equivalent(result, svc.reference(SCAN))
            counter = svc.metrics.counter("repro_parallel_queries_total")
            # Both shards partition-scanned their local fragment.
            assert counter.total() == 2

    def test_sharded_aggregate_composes(self, social_schema):
        with ShardedGraphitiService(
            social_schema,
            num_shards=2,
            parallelism=2,
            parallel_row_threshold=0,
        ) as svc:
            svc.load_mock(40, seed=3)
            result = svc.run(AGG)
            assert tables_equivalent(result, svc.reference(AGG))


class TestLargerCorpusEquivalence:
    @pytest.mark.parametrize("degree", [2, 3, 8])
    def test_social_universe_scans(self, degree):
        with GraphitiService(
            SOCIAL.graph_schema,
            parallelism=degree,
            parallel_row_threshold=0,
        ) as svc:
            svc.load_mock(25, seed=42)
            for cypher in (
                "MATCH (u:USER) WHERE u.uid > 5 RETURN u.uname",
                "MATCH (u:USER) RETURN count(*)",
                "MATCH (u:USER) RETURN avg(u.uid), count(*)",
                "MATCH (u:USER) RETURN DISTINCT u.uname",
            ):
                assert tables_equivalent(
                    svc.run(cypher), svc.reference(cypher)
                ), cypher
