"""AsyncGraphitiService: async↔sync equivalence, backpressure, lifecycle.

The async layer must be *observationally identical* to the threaded one:
the same batch through ``GraphitiService.run_many`` (worker threads) and
``AsyncGraphitiService.run_many`` (coroutines over the same pool) must be
bag-equal element-wise, results must come back in batch order, and no
``QueryStat`` update may be lost under an asyncio gather-hammer — the
async analogue of ``test_concurrency.TestThreadHammer``.

The tests run the event loop with ``asyncio.run`` inside sync functions so
the suite passes with or without pytest-asyncio installed (the ``dev``
extra carries it for CI, but it is not a runtime dependency).
"""

import asyncio
import threading
import time

import pytest

from repro.backends import (
    AsyncGraphitiService,
    GraphitiService,
    PoolTimeout,
)
from repro.relational.instance import tables_equivalent

SCAN = "MATCH (n:EMP) RETURN n.name"
JOIN = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname"
AGGREGATE = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)"
DEPT_SCAN = "MATCH (m:DEPT) RETURN m.dname"
BATCH = [SCAN, JOIN, AGGREGATE, DEPT_SCAN]


@pytest.fixture
def service(emp_dept_schema):
    with GraphitiService(emp_dept_schema, pool_size=4) as svc:
        svc.load_mock(40, seed=11)
        yield svc


@pytest.fixture
def async_service(service):
    async_svc = AsyncGraphitiService(service, max_concurrency=4)
    yield async_svc
    async_svc.close()


class TestAsyncExecution:
    def test_run_matches_reference(self, service, async_service):
        expected = service.reference(JOIN)
        actual = asyncio.run(async_service.run(JOIN))
        assert tables_equivalent(expected, actual)

    def test_run_many_results_in_batch_order(self, async_service):
        batch = [SCAN, DEPT_SCAN, SCAN, DEPT_SCAN]
        results = asyncio.run(async_service.run_many(batch, concurrency=4))
        assert len(results) == 4
        assert results[0].attributes == ("n.name",)
        assert results[1].attributes == ("m.dname",)
        assert tables_equivalent(results[0], results[2])
        assert tables_equivalent(results[1], results[3])

    def test_empty_batch(self, async_service):
        assert asyncio.run(async_service.run_many([], concurrency=4)) == []

    def test_async_equals_threaded_run_many(self, service, async_service):
        """The property at the heart of this layer: same batch, same pool,
        bag-equal element-wise between worker threads and coroutines."""
        batch = BATCH * 4
        threaded = service.run_many(batch, workers=4)
        concurrent = asyncio.run(async_service.run_many(batch, concurrency=4))
        assert len(threaded) == len(concurrent)
        for left, right in zip(threaded, concurrent):
            assert tables_equivalent(left, right)

    def test_async_results_match_reference(self, service, async_service):
        batch = BATCH * 3
        expected = {text: service.reference(text) for text in set(batch)}
        results = asyncio.run(async_service.run_many(batch, concurrency=4))
        for text, result in zip(batch, results):
            assert tables_equivalent(expected[text], result)

    def test_run_many_on_explicit_backend(self, service, async_service):
        results = asyncio.run(
            async_service.run_many([SCAN, JOIN], concurrency=2, backend="sqlite-file")
        )
        assert tables_equivalent(results[0], service.reference(SCAN))
        assert tables_equivalent(results[1], service.reference(JOIN))

    def test_opt_level_override(self, service, async_service):
        raw = asyncio.run(async_service.run(JOIN, opt_level=0))
        assert tables_equivalent(service.reference(JOIN), raw)

    def test_prepare_failure_propagates(self, service, async_service):
        """An unparseable query fails the batch up front, before any
        connection is touched."""
        batch = [SCAN, "MATCH (x:NOPE) RETURN x.nope", SCAN]
        with pytest.raises(Exception):
            asyncio.run(async_service.run_many(batch, concurrency=3))
        assert service.pool().in_use == 0

    def test_execution_failure_propagates_and_pool_drains(
        self, service, async_service, monkeypatch
    ):
        """A query failing *inside* the engine mid-batch: the error
        surfaces, sibling queries still finish, and every connection is
        checked back in."""
        from repro.backends.sqlite import SqliteMemoryBackend

        poison = service.prepare(DEPT_SCAN).sql_text
        original = SqliteMemoryBackend.execute
        good_runs: list[int] = []

        def sometimes_failing(self, sql_text):
            if sql_text == poison:
                raise RuntimeError("engine crashed mid-query")
            table = original(self, sql_text)
            good_runs.append(len(table))
            return table

        pool = service.pool()  # created (and loaded) before the poison
        monkeypatch.setattr(SqliteMemoryBackend, "execute", sometimes_failing)
        with pytest.raises(RuntimeError, match="engine crashed"):
            asyncio.run(
                async_service.run_many([SCAN, DEPT_SCAN, SCAN], concurrency=3)
            )
        assert good_runs  # the healthy queries did run
        assert pool.in_use == 0  # and nothing leaked

    def test_prepare_is_shared_with_sync_service(self, service, async_service):
        asyncio.run(async_service.run(AGGREGATE))
        before = service.cache_info().hits
        service.run(AGGREGATE)  # sync run must hit the same LRU entry
        assert service.cache_info().hits > before


class TestGatherHammer:
    def test_no_lost_stat_updates_under_gather(self, service, async_service):
        """Many concurrent run_many gathers: QueryStat counters must add up
        exactly and every table must answer its own query."""
        gathers, rounds = 6, 3
        expected = {text: service.reference(text) for text in BATCH}
        service.reset_query_stats()

        async def hammer() -> None:
            for _ in range(rounds):
                results = await async_service.run_many(BATCH, concurrency=4)
                for text, result in zip(BATCH, results):
                    assert tables_equivalent(expected[text], result), text

        async def main() -> None:
            await asyncio.gather(*(hammer() for _ in range(gathers)))

        asyncio.run(main())
        stats = {s.cypher_text: s for s in service.query_stats()}
        for text in BATCH:
            assert stats[text].executions == gathers * rounds
            assert len(stats[text].samples) == gathers * rounds
            assert abs(sum(stats[text].samples) - stats[text].total_seconds) < 1e-9

    def test_mixed_sync_and_async_load_on_one_pool(self, service, async_service):
        """Worker threads and coroutines hammer the same pool at once; both
        sides must see correct results and the stats must balance."""
        expected = service.reference(JOIN)
        rounds = 8
        errors: list[Exception] = []
        service.reset_query_stats()

        def sync_hammer() -> None:
            try:
                for _ in range(rounds):
                    assert tables_equivalent(service.run(JOIN), expected)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        async def async_hammer() -> None:
            for _ in range(rounds):
                assert tables_equivalent(await async_service.run(JOIN), expected)

        async def async_main() -> None:
            await asyncio.wait_for(
                asyncio.gather(*(async_hammer() for _ in range(3))), timeout=60
            )

        threads = [threading.Thread(target=sync_hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        asyncio.run(async_main())
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        stat = {s.cypher_text: s for s in service.query_stats()}[JOIN]
        assert stat.executions == rounds * 6


class TestBackpressure:
    def test_fan_out_capped_by_max_concurrency(self, emp_dept_schema):
        """concurrency=8 with max_concurrency=2 must not grow the pool past
        two members: dispatch is semaphore-bounded, not queue-unbounded."""
        with GraphitiService(emp_dept_schema, pool_size=1) as service:
            service.load_mock(30, seed=5)
            async_svc = AsyncGraphitiService(service, max_concurrency=2)
            try:
                results = asyncio.run(async_svc.run_many([SCAN] * 10, concurrency=8))
                assert len(results) == 10
                assert service.pool().size <= 2
            finally:
                async_svc.close()

    def test_checkout_timeout_raises_instead_of_hanging(self, emp_dept_schema):
        """Pool exhausted at capacity: an awaited checkout must raise
        PoolTimeout after checkout_timeout seconds, not wait forever."""
        with GraphitiService(emp_dept_schema, pool_size=1) as service:
            service.load_mock(10, seed=5)
            async_svc = AsyncGraphitiService(
                service, max_concurrency=2, checkout_timeout=0.1
            )
            pool = service.pool()
            hog = pool.checkout()  # the only member the capacity allows
            try:
                with pytest.raises(PoolTimeout):
                    asyncio.run(asyncio.wait_for(async_svc.run(SCAN), timeout=30))
            finally:
                pool.checkin(hog)
                async_svc.close()

    def test_cancel_mid_execution_defers_checkin_until_thread_finishes(
        self, emp_dept_schema, monkeypatch
    ):
        """Cancelling a run() mid-query must NOT check the member in while
        the executor thread is still driving it (one connection, one
        thread); the checkin lands once the engine call actually returns."""
        from repro.backends.sqlite import SqliteMemoryBackend

        entered, release = threading.Event(), threading.Event()
        original = SqliteMemoryBackend.execute

        def slow_execute(self, sql_text):
            entered.set()
            assert release.wait(timeout=30)
            return original(self, sql_text)

        with GraphitiService(emp_dept_schema, pool_size=2) as service:
            service.load_mock(10, seed=5)
            async_svc = AsyncGraphitiService(service, max_concurrency=2)
            pool = service.pool()
            monkeypatch.setattr(SqliteMemoryBackend, "execute", slow_execute)

            async def drive() -> None:
                task = asyncio.ensure_future(async_svc.run(SCAN))
                loop = asyncio.get_running_loop()
                assert await loop.run_in_executor(None, entered.wait, 30)
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # The engine thread is still inside execute(): the member
                # must remain checked out, not be handed to anyone else.
                assert pool.in_use == 1
                release.set()

            try:
                asyncio.run(drive())
                # The deferred checkin lands once the thread finishes.
                deadline = time.monotonic() + 10
                while pool.in_use and time.monotonic() < deadline:
                    time.sleep(0.005)
                assert pool.in_use == 0
                monkeypatch.undo()
                table = asyncio.run(async_svc.run(SCAN))
                assert len(table) == 10
            finally:
                async_svc.close()

    def test_waiter_resumes_when_member_freed(self, emp_dept_schema):
        """A coroutine waiting on an exhausted pool proceeds as soon as a
        sync caller checks the member back in — no polling, no timeout."""
        with GraphitiService(emp_dept_schema, pool_size=1) as service:
            service.load_mock(10, seed=5)
            async_svc = AsyncGraphitiService(service, max_concurrency=2)
            pool = service.pool()
            expected = service.reference(SCAN)
            hog = pool.checkout()
            released = threading.Event()

            def release_soon() -> None:
                released.wait(timeout=30)
                pool.checkin(hog)

            releaser = threading.Thread(target=release_soon)
            releaser.start()

            async def drive():
                task = asyncio.ensure_future(async_svc.run(SCAN))
                # Let the run coroutine reach the waiter registration, then
                # free the member from the sync side.
                await asyncio.sleep(0)
                released.set()
                return await asyncio.wait_for(task, timeout=30)

            try:
                assert tables_equivalent(expected, asyncio.run(drive()))
            finally:
                releaser.join(timeout=30)
                async_svc.close()


class TestLifecycle:
    def test_owned_service_mode(self, emp_dept_schema):
        async def main():
            async with AsyncGraphitiService(
                emp_dept_schema, max_concurrency=2, pool_size=2
            ) as svc:
                await svc.load_mock(20, seed=3)
                table = await svc.run(SCAN)
                assert len(table) == 20
                assert svc.service.pool_size == 2  # kwargs forwarded
                return svc

        svc = asyncio.run(main())
        # Owned service is closed with the async facade.
        with pytest.raises(RuntimeError):
            asyncio.run(svc.run(SCAN))

    def test_wrapping_does_not_close_shared_service(self, service):
        async def main():
            async with AsyncGraphitiService(service) as svc:
                await svc.run(SCAN)

        asyncio.run(main())
        service.run(SCAN)  # still serving

    def test_service_kwargs_rejected_when_wrapping(self, service):
        with pytest.raises(TypeError, match="service keyword"):
            AsyncGraphitiService(service, pool_size=2)

    def test_invalid_max_concurrency(self, emp_dept_schema):
        with pytest.raises(ValueError, match="max_concurrency"):
            AsyncGraphitiService(emp_dept_schema, max_concurrency=0)

    def test_close_is_idempotent(self, service):
        svc = AsyncGraphitiService(service)
        svc.close()
        svc.close()

    def test_sync_delegates(self, service, async_service):
        assert async_service.backends() == service.backends()
        sql = async_service.transpile_to_sql(SCAN)
        assert "SELECT" in sql
        assert async_service.prepare(SCAN).sql_text == sql
        assert async_service.cache_info().hits >= 0

    def test_usable_across_event_loops(self, service, async_service):
        """asyncio primitives are loop-bound; the service must survive
        sequential asyncio.run lifetimes (one per request wave)."""
        first = asyncio.run(async_service.run_many(BATCH, concurrency=4))
        second = asyncio.run(async_service.run_many(BATCH, concurrency=4))
        for left, right in zip(first, second):
            assert tables_equivalent(left, right)
