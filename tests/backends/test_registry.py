"""Backend registry behaviour: discovery, gating, lifecycle."""

import os

import pytest

from repro.backends import (
    BackendUnavailable,
    DbApiBackend,
    DuckDbBackend,
    SqliteFileBackend,
    available_backends,
    backend_info,
    create_backend,
    load_backend,
    register_backend,
    registered_backends,
)
from repro.backends.registry import _REGISTRY
from repro.common.values import NULL
from repro.relational.instance import Database
from repro.relational.schema import Relation, RelationalSchema


@pytest.fixture
def schema() -> RelationalSchema:
    return RelationalSchema.of([Relation("t", ("a", "b"))])


@pytest.fixture
def database(schema) -> Database:
    return Database.of(schema, t=[(1, "x"), (2, NULL), (3, "y")])


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"sqlite-memory", "sqlite-file", "duckdb"} <= set(registered_backends())

    def test_sqlite_backends_always_available(self):
        assert {"sqlite-memory", "sqlite-file"} <= set(available_backends())

    def test_unknown_backend_raises_with_known_names(self, schema):
        with pytest.raises(BackendUnavailable, match="sqlite-memory"):
            create_backend("postgres-17", schema)

    def test_duckdb_gated_on_import(self, schema):
        info = backend_info("duckdb")
        assert info.backend_class is DuckDbBackend
        if not DuckDbBackend.is_available():
            with pytest.raises(BackendUnavailable, match="duckdb"):
                create_backend("duckdb", schema)
        else:
            with create_backend("duckdb", schema) as backend:
                assert backend.execute("SELECT 1 AS one").rows == [(1,)]

    def test_register_custom_backend(self, schema):
        class NeverBackend(DbApiBackend):
            name = "test-never"

            @classmethod
            def is_available(cls):
                return False

            def _open_connection(self):  # pragma: no cover - gated off
                raise AssertionError

        register_backend(NeverBackend, description="always-unavailable test engine")
        try:
            assert "test-never" in registered_backends()
            assert "test-never" not in available_backends()
            with pytest.raises(BackendUnavailable):
                create_backend("test-never", schema)
        finally:
            _REGISTRY.pop("test-never", None)

    def test_abstract_name_rejected(self):
        class Nameless(DbApiBackend):
            def _open_connection(self):  # pragma: no cover
                raise AssertionError

        with pytest.raises(ValueError):
            register_backend(Nameless)


class TestLoadBackend:
    @pytest.mark.parametrize("name", ["sqlite-memory", "sqlite-file"])
    def test_load_executes_end_to_end(self, name, database):
        with load_backend(name, database) as backend:
            result = backend.execute('SELECT "a" FROM "t" WHERE "b" IS NOT NULL')
            assert sorted(result.rows) == [(1,), (3,)]

    def test_null_roundtrip(self, database):
        with load_backend("sqlite-memory", database) as backend:
            result = backend.execute('SELECT "b" FROM "t" WHERE "a" = 2')
            assert result.rows == [(NULL,)]

    def test_batched_loading_matches_unbatched(self, schema):
        big = Database.of(schema, t=[(i, f"v{i}") for i in range(257)])
        with load_backend("sqlite-memory", big, batch_size=16) as backend:
            count = backend.execute('SELECT COUNT(*) AS c FROM "t"')
            assert count.rows == [(257,)]

    def test_file_backend_cleans_up_tempfile(self, database):
        backend = load_backend("sqlite-file", database)
        assert isinstance(backend, SqliteFileBackend)
        path = backend.path
        assert os.path.exists(path)
        backend.close()
        assert not os.path.exists(path)

    def test_explain_returns_plan_text(self, database):
        with load_backend("sqlite-memory", database) as backend:
            plan = backend.explain('SELECT "a" FROM "t"')
            assert "t" in plan

    def test_time_returns_seconds(self, database):
        with load_backend("sqlite-memory", database) as backend:
            seconds = backend.time('SELECT COUNT(*) AS c FROM "t"', repeats=3)
            assert seconds >= 0.0


class TestInferColumnTypes:
    def test_unifies_over_all_values(self, schema):
        from repro.backends import infer_column_types
        from repro.sql.dialect import DUCKDB

        mixed = Database.of(
            schema,
            t=[(1, 10), (2, "late-string"), (NULL, 2.5)],
        )
        hints = infer_column_types(mixed, DUCKDB)
        # Column a: int + NULL -> integer; column b: int then string -> text.
        assert hints["t"]["a"] == DUCKDB.integer_type
        assert hints["t"]["b"] == DUCKDB.text_type

    def test_int_float_mix_widens_to_real(self, schema):
        from repro.backends import infer_column_types
        from repro.sql.dialect import DUCKDB

        numeric = Database.of(schema, t=[(1, 1), (2, 2.5)])
        hints = infer_column_types(numeric, DUCKDB)
        assert hints["t"]["b"] == DUCKDB.real_type

    def test_all_null_column_uses_default(self, schema):
        from repro.backends import infer_column_types
        from repro.sql.dialect import DUCKDB

        empty = Database.of(schema, t=[(NULL, NULL)])
        hints = infer_column_types(empty, DUCKDB)
        assert hints["t"]["a"] == DUCKDB.default_column_type
