"""Horizontal sharding: partitioner, fragment classifier, merge, serving.

Four layers, each testable on its own:

* :func:`stable_shard_hash` / :class:`ShardPartitioner` — placement is
  deterministic, conserves every row, co-partitions edges with their
  ``SRC`` endpoint, and records exactly the edges whose endpoints span
  shards in the cross-shard table (the traversal-correctness ledger);
* :func:`repro.sql.fragment.fragment_query` — the planner seam classifies
  optimized plans into shard-local / merge-aggregable / non-fragmentable
  with a recorded reason;
* :func:`repro.sql.fragment.merge_partials` — the coordinator folds
  reproduce the paper's aggregate semantics (NULL-skipping partials,
  all-NULL → NULL including Count, Avg as true division of folded
  Sum/Count) and re-apply DISTINCT / ORDER BY / LIMIT after the union;
* :class:`ShardedGraphitiService` — scatter-gather serving agrees with
  the reference evaluator, falls back transparently, feeds the shard
  metrics/spans, and surfaces the classification in ``repro explain``.

The full backend × opt-level × shard-count correctness matrix lives in
``test_differential.py``'s sharded lane; this module owns the unit-level
properties and the observability/plumbing contracts.
"""

from __future__ import annotations

import asyncio
from collections import Counter

import pytest

from repro.backends import (
    AsyncShardedGraphitiService,
    ShardPartitioner,
    ShardedGraphitiService,
    stable_shard_hash,
)
from repro.benchmarks.universes import SOCIAL
from repro.common.values import NULL
from repro.core.sdt import infer_sdt
from repro.execution.datagen import MockDataGenerator
from repro.observability.explain import explain_query
from repro.observability.tracing import Tracer
from repro.relational.instance import Table, tables_equivalent
from repro.sql.fragment import (
    MERGE_AGGREGABLE,
    NON_FRAGMENTABLE,
    SHARD_LOCAL,
    FragmentPlan,
    MergeColumn,
    OrderSpec,
    merge_partials,
)

ROWS = 40


def social_database(rows: int = ROWS, seed: int = 42):
    sdt = infer_sdt(SOCIAL.graph_schema)
    generator = MockDataGenerator(SOCIAL.graph_schema, sdt, seed=seed)
    return sdt, generator.induced_instance(rows)


@pytest.fixture(scope="module")
def sharded_service():
    with ShardedGraphitiService(SOCIAL.graph_schema, num_shards=3) as service:
        service.load_mock(ROWS, seed=42)
        yield service


class TestStableShardHash:
    def test_deterministic_across_calls(self):
        values = [0, 1, -7, 10**12, "alice", "", True, False, 3.5]
        assert [stable_shard_hash(v) for v in values] == [
            stable_shard_hash(v) for v in values
        ]

    def test_bools_and_ints_do_not_collide_accidentally(self):
        # bool is an int subclass; the hash must treat True like 1, not
        # like the string "True", so partitioning is stable under the
        # usual Python int/bool aliasing.
        assert stable_shard_hash(True) == stable_shard_hash(1)
        assert stable_shard_hash(False) == stable_shard_hash(0)

    def test_balance_property(self):
        """Hashing a key range spreads rows across shards without a hot
        spot: every shard gets within 2x of the fair share for 4 shards
        over 1000 sequential integer keys, and string keys likewise."""
        for keys in (range(1000), [f"user-{i}" for i in range(1000)]):
            counts = Counter(stable_shard_hash(key) % 4 for key in keys)
            assert set(counts) == {0, 1, 2, 3}
            fair = 1000 / 4
            for shard, count in counts.items():
                assert fair / 2 <= count <= fair * 2, (
                    f"shard {shard} holds {count} of 1000 keys"
                )


class TestShardPartitioner:
    @pytest.mark.parametrize("num_shards", (1, 2, 3, 5))
    def test_every_row_placed_exactly_once(self, num_shards):
        sdt, database = social_database()
        partitioner = ShardPartitioner(SOCIAL.graph_schema, sdt, num_shards)
        shards, _ = partitioner.partition(database)
        assert len(shards) == num_shards
        for name, table in database.tables.items():
            placed = [row for shard in shards for row in shard.tables[name].rows]
            assert Counter(placed) == Counter(table.rows), (
                f"{name}: partitioning lost or duplicated rows"
            )

    def test_edges_co_partitioned_with_source(self):
        sdt, database = social_database()
        partitioner = ShardPartitioner(SOCIAL.graph_schema, sdt, 3)
        shards, _ = partitioner.partition(database)
        for edge_type in SOCIAL.graph_schema.edge_types:
            table_name = sdt.table_for(edge_type.label)
            src_index = database.tables[table_name].attributes.index("SRC")
            for index, shard in enumerate(shards):
                for row in shard.tables[table_name].rows:
                    assert partitioner.shard_of(row[src_index]) == index

    def test_cross_shard_table_is_exactly_the_boundary_edges(self):
        sdt, database = social_database()
        partitioner = ShardPartitioner(SOCIAL.graph_schema, sdt, 3)
        _, cross = partitioner.partition(database)
        for edge_type in SOCIAL.graph_schema.edge_types:
            table_name = sdt.table_for(edge_type.label)
            table = database.tables[table_name]
            src = table.attributes.index("SRC")
            tgt = table.attributes.index("TGT")
            expected = [
                row
                for row in table.rows
                if partitioner.shard_of(row[src]) != partitioner.shard_of(row[tgt])
            ]
            assert Counter(cross[table_name].rows) == Counter(expected)
        # The SOCIAL mock at this size genuinely crosses shard
        # boundaries — an empty ledger would make the test vacuous.
        assert any(len(table) > 0 for table in cross.values())

    def test_partitioning_is_deterministic(self):
        sdt, database = social_database()
        partitioner = ShardPartitioner(SOCIAL.graph_schema, sdt, 4)
        first, _ = partitioner.partition(database)
        second, _ = partitioner.partition(database)
        for one, two in zip(first, second):
            for name in database.tables:
                assert one.tables[name].rows == two.tables[name].rows

    def test_rejects_zero_shards(self):
        sdt, _ = social_database(rows=2)
        with pytest.raises(ValueError):
            ShardPartitioner(SOCIAL.graph_schema, sdt, 0)


class TestFragmentClassifier:
    """Classification via the coordinator's prepare path (optimized AST)."""

    @pytest.mark.parametrize(
        ("cypher", "kind"),
        [
            ("MATCH (u:USER) RETURN u.uname", SHARD_LOCAL),
            ("MATCH (u:USER) WHERE u.age > 30 RETURN u.uname", SHARD_LOCAL),
            ("MATCH (u:USER) RETURN DISTINCT u.age", SHARD_LOCAL),
            (
                "MATCH (p:POST) RETURN p.pid ORDER BY p.pid LIMIT 5",
                SHARD_LOCAL,
            ),
            ("MATCH (u:USER) RETURN Count(*)", MERGE_AGGREGABLE),
            ("MATCH (u:USER) RETURN u.age, Count(*)", MERGE_AGGREGABLE),
            ("MATCH (p:POST) RETURN Avg(p.score)", MERGE_AGGREGABLE),
            (
                "MATCH (p:POST) RETURN Min(p.score), Max(p.score), Sum(p.score)",
                MERGE_AGGREGABLE,
            ),
            (
                "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN a.uname, p.title",
                NON_FRAGMENTABLE,
            ),
            (
                "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER) RETURN a.uid, b.uid",
                NON_FRAGMENTABLE,
            ),
            ("MATCH (u:USER) RETURN u.uid LIMIT 3", NON_FRAGMENTABLE),
        ],
    )
    def test_classification(self, sharded_service, cypher, kind):
        plan = sharded_service.fragment_plan(cypher)
        assert plan.kind == kind
        assert plan.reason  # every verdict carries a human-readable reason

    def test_avg_is_decomposed_into_sum_and_count(self, sharded_service):
        plan = sharded_service.fragment_plan("MATCH (p:POST) RETURN Avg(p.score)")
        assert plan.kind == MERGE_AGGREGABLE
        assert [column.kind for column in plan.merge] == ["avg"]
        assert plan.merge[0].count_source is not None

    def test_classification_lands_in_plan_report(self, sharded_service):
        prepared = sharded_service.prepare("MATCH (u:USER) RETURN Count(*)")
        sharding = prepared.plan.sharding
        assert sharding is not None
        assert sharding["kind"] == MERGE_AGGREGABLE
        assert sharding["shards"] == 3
        prepared = sharded_service.prepare(
            "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN p.title"
        )
        assert prepared.plan.sharding["kind"] == NON_FRAGMENTABLE
        assert prepared.plan.sharding["reason"]


class TestMergePartials:
    """Coordinator folds on hand-built partial tables."""

    @staticmethod
    def aggregate_plan(merge, key_indexes=(), attributes=None, order=None):
        return FragmentPlan(
            kind=MERGE_AGGREGABLE,
            reason="test",
            shard_query=object(),
            attributes=attributes or tuple(column.alias for column in merge),
            merge=merge,
            key_indexes=tuple(key_indexes),
            order=order,
        )

    def test_sum_fold_skips_null_partials(self):
        plan = self.aggregate_plan((MergeColumn("total", "sum", 0),))
        merged = merge_partials(
            plan, [Table(("total",), [(NULL,)]), Table(("total",), [(3,)])]
        )
        assert merged.rows == [(3,)]

    def test_all_null_partials_fold_to_null(self):
        # The paper's combine() quirk: an aggregate (Count included) over
        # an all-NULL argument is NULL, and the distributed fold must not
        # turn that into 0.
        plan = self.aggregate_plan((MergeColumn("total", "sum", 0),))
        merged = merge_partials(
            plan, [Table(("total",), [(NULL,)]), Table(("total",), [(NULL,)])]
        )
        assert merged.rows == [(NULL,)]

    def test_extrema_fold_across_shards(self):
        plan = self.aggregate_plan(
            (MergeColumn("lo", "min", 0), MergeColumn("hi", "max", 1))
        )
        merged = merge_partials(
            plan,
            [
                Table(("lo", "hi"), [(4, 10)]),
                Table(("lo", "hi"), [(2, 7)]),
                Table(("lo", "hi"), [(NULL, NULL)]),
            ],
        )
        assert merged.rows == [(2, 10)]

    def test_avg_is_true_division_of_folded_sum_and_count(self):
        plan = FragmentPlan(
            kind=MERGE_AGGREGABLE,
            reason="test",
            shard_query=object(),
            attributes=("mean",),
            merge=(MergeColumn("mean", "avg", 0, count_source=1),),
        )
        partials = [
            Table(("__s", "__c"), [(10, 4)]),
            Table(("__s", "__c"), [(5, 2)]),
        ]
        assert merge_partials(plan, partials).rows == [(2.5,)]

    def test_grouped_fold_regroups_by_key(self):
        plan = self.aggregate_plan(
            (MergeColumn("age", "key", 0), MergeColumn("n", "sum", 1)),
            key_indexes=(0,),
            attributes=("age", "n"),
        )
        partials = [
            Table(("age", "n"), [(30, 2), (40, 1)]),
            Table(("age", "n"), [(30, 3)]),
        ]
        merged = merge_partials(plan, partials)
        assert sorted(merged.rows) == [(30, 5), (40, 1)]

    def test_shard_local_distinct_dedups_after_union(self):
        plan = FragmentPlan(
            kind=SHARD_LOCAL,
            reason="test",
            shard_query=object(),
            attributes=("age",),
            distinct=True,
        )
        merged = merge_partials(
            plan, [Table(("age",), [(30,), (40,)]), Table(("age",), [(30,)])]
        )
        assert sorted(merged.rows) == [(30,), (40,)]

    def test_order_and_limit_reapplied_after_union(self):
        plan = FragmentPlan(
            kind=SHARD_LOCAL,
            reason="test",
            shard_query=object(),
            attributes=("pid",),
            order=OrderSpec(indexes=(0,), ascending=(False,), limit=3),
        )
        merged = merge_partials(
            plan, [Table(("pid",), [(1,), (5,)]), Table(("pid",), [(9,), (2,)])]
        )
        assert merged.rows == [(9,), (5,), (2,)]
        assert merged.ordered

    def test_non_fragmentable_plans_cannot_merge(self):
        plan = FragmentPlan(kind=NON_FRAGMENTABLE, reason="test")
        with pytest.raises(ValueError):
            merge_partials(plan, [])


class TestShardedService:
    def test_partition_report_conserves_rows(self, sharded_service):
        report = sharded_service.partition_report()
        assert report["shards"] == 3
        assert sum(report["rows_per_shard"]) == report["total_rows"] > 0
        assert any(count > 0 for count in report["cross_shard_edges"].values())

    @pytest.mark.parametrize(
        "cypher",
        [
            "MATCH (u:USER) RETURN u.uname, u.age",
            "MATCH (u:USER) RETURN DISTINCT u.age",
            "MATCH (p:POST) RETURN p.pid, p.score ORDER BY p.pid LIMIT 7",
            "MATCH (u:USER) RETURN Count(*)",
            "MATCH (u:USER) RETURN u.age, Count(*)",
            "MATCH (p:POST) RETURN Avg(p.score), Min(p.score)",
            # Non-fragmentable: transparent fallback must agree too.
            "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN a.uname, Count(*)",
        ],
    )
    def test_scatter_gather_matches_reference(self, sharded_service, cypher):
        expected = sharded_service.reference(cypher)
        actual = sharded_service.run(cypher)
        assert tables_equivalent(expected, actual)

    def test_scatter_metrics_and_per_shard_counters(self):
        with ShardedGraphitiService(SOCIAL.graph_schema, num_shards=2) as service:
            service.load_mock(20, seed=42)
            service.run("MATCH (u:USER) RETURN Count(*)")
            service.run("MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN p.title")
            scatters = service.metrics.counter("repro_shard_scatters_total")
            fallbacks = service.metrics.counter("repro_shard_fallbacks_total")
            queries = service.metrics.counter("repro_shard_queries_total")
            assert scatters.value(kind=MERGE_AGGREGABLE) == 1
            assert fallbacks.total() == 1
            assert queries.value(shard="0") == 1
            assert queries.value(shard="1") == 1
            stats = service.shard_stats()
            assert [entry["shard"] for entry in stats] == [0, 1]
            assert all(entry["queries"] == 1 for entry in stats)
            assert sum(entry["rows"] for entry in stats) > 0

    def test_scatter_spans_in_trace(self):
        tracer = Tracer(max_traces=8)
        with ShardedGraphitiService(
            SOCIAL.graph_schema, num_shards=2, tracer=tracer
        ) as service:
            service.load_mock(15, seed=42)
            service.run("MATCH (u:USER) RETURN u.age, Count(*)")
            names = set()

            def collect(span):
                names.add(span.name)
                for child in span.children:
                    collect(child)

            for trace in tracer.traces():
                collect(trace)
        assert {"shard.scatter", "shard.query", "shard.gather"} <= names

    def test_explain_renders_the_scatter_plan(self, sharded_service):
        report = explain_query(
            sharded_service, "MATCH (u:USER) RETURN u.age, Count(*)"
        )
        rendered = "\n".join(report.render(show_sql=False))
        assert "sharding: merge_aggregable" in rendered
        report = explain_query(
            sharded_service,
            "MATCH (a:USER)-[f:FOLLOWS]->(b:USER) RETURN a.uname",
        )
        rendered = "\n".join(report.render(show_sql=False))
        assert "sharding: fallback to unsharded backend" in rendered

    def test_run_many_preserves_batch_order(self, sharded_service):
        batch = [
            "MATCH (u:USER) RETURN Count(*)",
            "MATCH (p:POST) RETURN p.pid ORDER BY p.pid LIMIT 3",
            "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN Count(*)",
        ] * 2
        results = sharded_service.run_many(batch, workers=3)
        assert len(results) == len(batch)
        for text, table in zip(batch, results):
            assert tables_equivalent(sharded_service.reference(text), table)

    def test_single_shard_degenerates_gracefully(self):
        with ShardedGraphitiService(SOCIAL.graph_schema, num_shards=1) as service:
            service.load_mock(10, seed=42)
            expected = service.reference("MATCH (u:USER) RETURN u.uname")
            assert tables_equivalent(
                expected, service.run("MATCH (u:USER) RETURN u.uname")
            )

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            ShardedGraphitiService(SOCIAL.graph_schema, num_shards=0)


class TestAsyncShardedService:
    def test_async_scatter_matches_reference(self, sharded_service):
        queries = [
            "MATCH (u:USER) RETURN u.age, Count(*)",
            "MATCH (p:POST) RETURN p.pid ORDER BY p.pid LIMIT 5",
            "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN Count(*)",
        ]

        async def drive():
            async with AsyncShardedGraphitiService(sharded_service) as service:
                return await service.run_many(queries, concurrency=3)

        results = asyncio.run(drive())
        for text, table in zip(queries, results):
            assert tables_equivalent(sharded_service.reference(text), table)

    def test_wrapping_does_not_close_the_shared_coordinator(self, sharded_service):
        async def drive():
            async with AsyncShardedGraphitiService(sharded_service) as service:
                await service.run("MATCH (u:USER) RETURN Count(*)")

        asyncio.run(drive())
        # Still serving after the async wrapper exited.
        assert len(sharded_service.run("MATCH (u:USER) RETURN u.uid")) == ROWS
