"""Dialect golden tests: one SQL AST, one rendering per dialect.

The algebra is dialect-independent; what changes per engine is identifier
quoting, boolean literal/predicate spelling, and DDL typing.  These goldens
pin each knob so a renderer change that silently leaks one dialect's
spelling into another fails loudly.
"""

import pytest

from repro.common.errors import SemanticsError
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    PrimaryKey,
    Relation,
    RelationalSchema,
)
from repro.sql import ast as sq
from repro.sql.dialect import (
    ANSI,
    DUCKDB,
    MYSQL,
    SQLITE,
    SqlDialect,
    dialect_for,
    register_dialect,
    registered_dialects,
)
from repro.sql.pretty import create_table_ddl, to_sql_text


@pytest.fixture
def schema() -> RelationalSchema:
    return RelationalSchema.of(
        [
            Relation("emp", ("id", "name", "flag", "dept")),
            Relation("dept", ("dno", "dname")),
        ],
        IntegrityConstraints(
            (PrimaryKey("emp", "id"),),
            (ForeignKey("emp", "dept", "dept", "dno"),),
        ),
    )


@pytest.fixture
def boolean_filter_query() -> sq.Query:
    """π_who(σ_{e.flag = true}(ρ_e(emp))) — exercises quoting + booleans."""
    return sq.Projection(
        sq.Selection(
            sq.Renaming("e", sq.Relation("emp")),
            sq.Comparison("=", sq.AttributeRef("e.flag"), sq.Literal(True)),
        ),
        (sq.OutputColumn("who", sq.AttributeRef("e.name")),),
    )


GOLDEN_SELECT = {
    "sqlite": 'SELECT "e"."name" AS "who" FROM "emp" AS "e" WHERE "e"."flag" = 1',
    "duckdb": 'SELECT "e"."name" AS "who" FROM "emp" AS "e" WHERE "e"."flag" = TRUE',
    "ansi": 'SELECT "e"."name" AS "who" FROM "emp" AS "e" WHERE "e"."flag" = TRUE',
    "mysql": "SELECT `e`.`name` AS `who` FROM `emp` AS `e` WHERE `e`.`flag` = TRUE",
}


class TestSelectGoldens:
    @pytest.mark.parametrize("dialect", sorted(GOLDEN_SELECT))
    def test_same_ast_renders_per_dialect(self, dialect, schema, boolean_filter_query):
        assert to_sql_text(
            boolean_filter_query, schema, dialect=dialect
        ) == GOLDEN_SELECT[dialect]

    def test_boolean_predicate_spelling(self, schema):
        query = sq.Selection(sq.Relation("dept"), sq.BoolLit(False))
        sqlite_text = to_sql_text(query, schema, optimized=False, dialect="sqlite")
        ansi_text = to_sql_text(query, schema, optimized=False, dialect="ansi")
        assert sqlite_text.endswith("WHERE 1 = 0")
        assert ansi_text.endswith("WHERE FALSE")

    def test_in_values_literals_follow_dialect(self, schema):
        query = sq.Selection(
            sq.Relation("emp"),
            sq.InValues(sq.AttributeRef("flag"), (True, False)),
        )
        assert "IN (1, 0)" in to_sql_text(query, schema, dialect="sqlite")
        assert "IN (TRUE, FALSE)" in to_sql_text(query, schema, dialect="duckdb")


class TestDdlGoldens:
    def test_sqlite_ddl_is_untyped(self, schema):
        assert create_table_ddl(schema, "sqlite") == [
            'CREATE TABLE "emp" ("id", "name", "flag", "dept")',
            'CREATE TABLE "dept" ("dno", "dname")',
        ]

    def test_typed_dialect_defaults_every_column(self, schema):
        statements = create_table_ddl(schema, "duckdb")
        assert statements[0] == (
            'CREATE TABLE "emp" '
            '("id" VARCHAR, "name" VARCHAR, "flag" VARCHAR, "dept" VARCHAR)'
        )

    def test_type_hints_override_defaults(self, schema):
        statements = create_table_ddl(
            schema, "duckdb", {"emp": {"id": "INTEGER", "name": "VARCHAR"}}
        )
        assert '"id" INTEGER' in statements[0]
        assert '"flag" VARCHAR' in statements[0]

    def test_untyped_dialect_accepts_hints(self, schema):
        statements = create_table_ddl(schema, "sqlite", {"emp": {"id": "INTEGER"}})
        assert '"id" INTEGER' in statements[0]
        assert '"name"' in statements[0] and '"name" ' not in statements[0]

    def test_mysql_quoting_in_ddl(self, schema):
        statements = create_table_ddl(schema, "mysql")
        assert statements[1].startswith("CREATE TABLE `dept`")


class TestDialectRegistry:
    def test_builtins_registered(self):
        assert {"sqlite", "duckdb", "ansi", "mysql"} <= set(registered_dialects())

    def test_dialect_for_resolves_names_and_instances(self):
        assert dialect_for("sqlite") is SQLITE
        assert dialect_for(DUCKDB) is DUCKDB
        assert dialect_for(ANSI).true_literal == "TRUE"

    def test_unknown_dialect_raises(self):
        with pytest.raises(SemanticsError, match="unknown SQL dialect"):
            dialect_for("oracle-23ai")

    def test_register_custom_dialect(self):
        custom = register_dialect(SqlDialect(name="test-brackets", quote_char="`"))
        try:
            assert dialect_for("test-brackets") is custom
            assert custom.quote("a`b") == "`a``b`"
        finally:
            from repro.sql.dialect import _DIALECTS

            _DIALECTS.pop("test-brackets", None)

    def test_quote_escapes_embedded_quotes(self):
        assert SQLITE.quote('a"b') == '"a""b"'
        assert MYSQL.quote("x") == "`x`"

    def test_literal_rejects_unrenderable_values(self):
        with pytest.raises(SemanticsError):
            SQLITE.literal(object())

    def test_mysql_literal_escapes_backslashes(self):
        # Under MySQL's default sql_mode a trailing backslash would escape
        # the closing quote; the dialect must double it.
        assert MYSQL.literal("dir\\") == "'dir\\\\'"
        assert MYSQL.literal("it's") == "'it''s'"
        assert SQLITE.literal("dir\\") == "'dir\\'"
