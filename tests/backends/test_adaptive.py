"""Adaptive execution: stats refresh, estimate-vs-actual feedback, re-plans.

The lifecycle under test (PR 9): executions accumulate observed actual
rows on the cache entry; when the running mean diverges from the plan's
estimate by ``feedback_ratio`` (q-error) the service re-plans — stats are
re-collected, and when the digest cannot explain the miss the estimator
itself is corrected (forced recursive traversal / scaled base rows) under
a bumped feedback epoch that re-keys exactly that query's cache entries.
"""

import pytest

from repro.backends import GraphitiService
from repro.backends.adaptive_bench import (
    ADAPTIVE_QUERY,
    build_skewed_database,
)
from repro.benchmarks.universes import SOCIAL
from repro.core.sdt import infer_sdt
from repro.execution.datagen import MockDataGenerator
from repro.observability.explain import explain_query
from repro.relational.instance import tables_equivalent
from repro.sql.stats import collect_stats

JOIN_QUERY = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname"
SCAN_QUERY = "MATCH (n:EMP) RETURN n.name"


@pytest.fixture
def service(emp_dept_schema, emp_dept_graph):
    with GraphitiService(emp_dept_schema) as svc:
        svc.load_graph(emp_dept_graph)
        yield svc


def grow_table(service, factor=50):
    """Mutate the live data enough to change the stats digest."""
    table = service.database.tables["EMP"]
    width = len(table.attributes)
    base = len(table.rows)
    for index in range(base * factor):
        table.rows.append((10_000 + index,) + ("grown",) * (width - 1))


class TestStatsRefresh:
    def test_unchanged_data_keeps_digest(self, service):
        assert service.refresh_stats() is False

    def test_mutated_data_changes_digest(self, service):
        grow_table(service)
        assert service.refresh_stats() is True
        # And the refreshed numbers reflect the live rows.
        assert service._stats["EMP"].row_count == len(
            service.database.tables["EMP"].rows
        )

    def test_refresh_invalidates_exactly_level_two_entries(self, service):
        service.prepare(SCAN_QUERY, opt_level=1)
        service.prepare(SCAN_QUERY, opt_level=2)
        grow_table(service)
        assert service.refresh_stats() is True
        misses = service.cache_info().misses
        # Level-2 keys include the digest: the old entry is unreachable.
        service.prepare(SCAN_QUERY, opt_level=2)
        assert service.cache_info().misses == misses + 1
        # Level-1 keys do not: still a hit.
        hits = service.cache_info().hits
        service.prepare(SCAN_QUERY, opt_level=1)
        assert service.cache_info().hits == hits + 1

    def test_refresh_does_not_reset_pools(self, service):
        before = service.run(SCAN_QUERY)
        service.refresh_stats()
        assert tables_equivalent(service.run(SCAN_QUERY), before)


class TestFeedbackAccumulation:
    def test_serve_accumulates_on_the_cache_entry(self, service):
        _, first = service.serve(SCAN_QUERY)
        assert first.feedback.executions == 1
        _, second = service.serve(SCAN_QUERY)
        assert second is first  # cache hit: the same entry keeps history
        assert second.feedback.executions == 2
        assert second.feedback.last_rows == len(
            service.database.tables["EMP"].rows
        )

    def test_cache_hit_explain_reports_observed_history(self, service):
        explain_query(service, SCAN_QUERY)
        report = explain_query(service, SCAN_QUERY)
        assert report.observed is not None
        assert report.observed["executions"] >= 2
        assert "observed actual rows" in "\n".join(report.render())

    def test_feedback_ratio_must_exceed_one(self, emp_dept_schema):
        with pytest.raises(ValueError):
            GraphitiService(emp_dept_schema, feedback_ratio=1.0)

    def test_disabled_feedback_never_replans(self, emp_dept_schema, emp_dept_graph):
        with GraphitiService(emp_dept_schema, feedback_ratio=None) as svc:
            svc.load_graph(emp_dept_graph)
            prepared = svc.prepare(SCAN_QUERY)
            for _ in range(5):
                svc.observe_execution(prepared, 1_000_000)
            assert svc.feedback_state(SCAN_QUERY) is None
            # History still accumulates for explain, it just never acts.
            assert prepared.feedback.executions == 5


class TestReplan:
    def trigger(self, service, query=SCAN_QUERY, rows=1_000_000, times=2):
        prepared = service.prepare(query)
        for _ in range(times):
            service.observe_execution(prepared, rows)
        return prepared

    def test_divergence_bumps_epoch_and_rekeys(self, service):
        stale = self.trigger(service)
        assert stale.feedback_epoch == 0
        state = service.feedback_state(SCAN_QUERY)
        assert state is not None
        assert state["epoch"] == 1
        assert state["replans"] == 1
        assert state["last"]["reason"] == "underestimate"
        # The corrected plan lives under the new epoch's cache key; the
        # superseded entry is unreachable but intact.
        corrected = service.prepare(SCAN_QUERY)
        assert corrected is not stale
        assert corrected.feedback_epoch == 1
        assert corrected.plan.feedback["epoch"] == 1

    def test_scan_correction_scales_rows_not_traversal(self, service):
        stale_estimate = service.prepare(SCAN_QUERY).plan.estimated_rows
        self.trigger(service, rows=1_000_000)
        state = service.feedback_state(SCAN_QUERY)
        assert not state["force_recursive"]
        assert state["row_scale"] > 1.0
        corrected = service.prepare(SCAN_QUERY)
        assert corrected.plan.estimated_rows > stale_estimate

    def test_stale_entry_cannot_replan_again(self, service):
        stale = self.trigger(service)
        for _ in range(3):
            service.observe_execution(stale, 1_000_000)
        state = service.feedback_state(SCAN_QUERY)
        assert state["epoch"] == 1
        assert state["replans"] == 1

    def test_max_replans_caps_oscillation(self, emp_dept_schema, emp_dept_graph):
        with GraphitiService(emp_dept_schema, max_replans=1) as svc:
            svc.load_graph(emp_dept_graph)
            prepared = svc.prepare(SCAN_QUERY)
            for _ in range(2):
                svc.observe_execution(prepared, 1_000_000)
            assert svc.feedback_state(SCAN_QUERY)["replans"] == 1
            # The *current* epoch's entry diverges again — capped out.
            corrected = svc.prepare(SCAN_QUERY)
            for _ in range(2):
                svc.observe_execution(corrected, 1)
            assert svc.feedback_state(SCAN_QUERY)["replans"] == 1

    def test_changed_digest_resets_corrections(self, service):
        grow_table(service)  # live data outgrew the loaded stats
        self.trigger(service)
        state = service.feedback_state(SCAN_QUERY)
        assert state["last"]["stats_refreshed"]
        assert not state["force_recursive"]
        assert state["row_scale"] == 1.0

    def test_below_min_observations_never_replans(self, service):
        self.trigger(service, times=1)
        assert service.feedback_state(SCAN_QUERY) is None

    def test_replans_counted_in_metrics(self, service):
        self.trigger(service)
        snapshot = service.metrics.snapshot()
        series = snapshot["repro_plan_replans_total"]["series"]
        assert any(
            entry["labels"]["reason"] == "underestimate" and entry["value"] == 1
            for entry in series
        )
        assert snapshot["repro_estimate_error"]["series"]


class TestSkewConvergence:
    """End-to-end on the bench's hub-skewed graph: stale uniform stats pick
    the unrolled traversal, feedback converges on the recursive plan."""

    def test_feedback_flips_unrolled_to_recursive(self):
        sdt = infer_sdt(SOCIAL.graph_schema)
        small = MockDataGenerator(SOCIAL.graph_schema, sdt, seed=7).induced_instance(30)
        stale = collect_stats(small)
        skewed = build_skewed_database(users=40, hubs=6, hub_edges=120)
        with GraphitiService(SOCIAL.graph_schema) as svc:
            svc.load_database(skewed, stats=stale)
            results = []
            epochs = []
            for _ in range(8):
                result, prepared = svc.serve(ADAPTIVE_QUERY)
                results.append(result)
                epochs.append(prepared.feedback_epoch)
            state = svc.feedback_state(ADAPTIVE_QUERY)
            assert state is not None and state["replans"] >= 1
            assert prepared.plan.traversal_choice == "recursive"
            assert state["force_recursive"]
            # Every epoch served the same bag of rows.
            assert all(tables_equivalent(results[0], r) for r in results[1:])
            # Epochs only move forward.
            assert epochs == sorted(epochs)
            assert epochs[-1] >= 1
