"""Cross-backend result equivalence.

Every registered-and-available backend must return a bag-equivalent table
(Definition 4.4) to the reference evaluator, both for hand-written SQL (the
renderer cross-validation corpus) and for transpiled Cypher over the
Figure-14 universe.  This is the contract that makes backends
interchangeable under the service.
"""

import pytest

from repro.backends import available_backends, load_backend
from repro.common.values import NULL
from repro.relational.instance import Database, tables_equivalent
from repro.relational.schema import Relation, RelationalSchema
from repro.sql.parser import parse_sql
from repro.sql.pretty import to_sql_text
from repro.sql.semantics import evaluate_query

CURATED_SQL = [
    "SELECT e.name FROM emp AS e",
    "SELECT DISTINCT e.name FROM emp AS e",
    "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d ON e.dept = d.dno",
    "SELECT e.name, d.dname FROM emp AS e LEFT JOIN dept AS d ON e.dept = d.dno",
    "SELECT e.dept, COUNT(*) AS c FROM emp AS e GROUP BY e.dept",
    "SELECT e.name FROM emp AS e WHERE e.dept IN (SELECT d.dno FROM dept AS d)",
    "SELECT d.dname FROM dept AS d WHERE EXISTS "
    "(SELECT e.id FROM emp AS e WHERE e.dept = d.dno)",
    "SELECT e.name FROM emp AS e UNION ALL SELECT d.dname FROM dept AS d",
    "SELECT e.id AS k, e.name AS n FROM emp AS e ORDER BY k DESC LIMIT 3",
]


@pytest.fixture
def db() -> Database:
    schema = RelationalSchema.of(
        [
            Relation("emp", ("id", "name", "dept")),
            Relation("dept", ("dno", "dname")),
        ]
    )
    return Database.of(
        schema,
        emp=[(1, "A", 10), (2, "B", 10), (3, "C", NULL), (4, "A", 20)],
        dept=[(10, "CS"), (20, "EE"), (30, "ME")],
    )


class TestCrossBackendSql:
    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("sql", CURATED_SQL)
    def test_backend_matches_reference(self, backend_name, sql, db):
        query = parse_sql(sql)
        reference = evaluate_query(query, db)
        with load_backend(backend_name, db) as backend:
            rendered = to_sql_text(query, db.schema, dialect=backend.dialect)
            actual = backend.execute(rendered)
        assert tables_equivalent(reference, actual), (
            f"{backend_name} diverges on {sql}\n"
            f"reference:\n{reference}\nbackend:\n{actual}"
        )

    def test_backends_agree_pairwise(self, db):
        sql = CURATED_SQL[2]
        query = parse_sql(sql)
        results = {}
        for name in available_backends():
            with load_backend(name, db) as backend:
                rendered = to_sql_text(query, db.schema, dialect=backend.dialect)
                results[name] = backend.execute(rendered)
        names = sorted(results)
        for left, right in zip(names, names[1:]):
            assert tables_equivalent(results[left], results[right])


class TestCrossBackendCypher:
    CYPHER = [
        "MATCH (n:EMP) RETURN n.name",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
        "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)",
        "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
        "RETURN n.name, m.dname",
        "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
        "RETURN n.name",
    ]

    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("cypher", CYPHER)
    def test_transpiled_query_identical_across_backends(
        self, backend_name, cypher, emp_dept_schema, emp_dept_graph
    ):
        from repro.cypher.parser import parse_cypher
        from repro.cypher.semantics import evaluate_query as evaluate_cypher
        from repro.backends import GraphitiService

        expected = evaluate_cypher(parse_cypher(cypher, emp_dept_schema), emp_dept_graph)
        with GraphitiService(emp_dept_schema, default_backend=backend_name) as service:
            service.load_graph(emp_dept_graph)
            actual = service.run(cypher)
        assert tables_equivalent(expected, actual), (
            f"{backend_name} diverges from Cypher semantics on {cypher}"
        )
