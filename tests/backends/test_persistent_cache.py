"""The persistent transpilation cache: cross-process reuse and invalidation."""

import pickle

import pytest

from repro.backends import GraphitiService, PersistentQueryCache
from repro.backends.cache import cache_key, default_cache_dir
from repro.relational.instance import tables_equivalent

SCAN = "MATCH (n:EMP) RETURN n.name"
JOIN = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname"


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "transpilations.sqlite"


def fresh_service(schema, store_path, rows=15):
    service = GraphitiService(schema, persistent_cache=store_path)
    service.load_mock(rows, seed=5)
    return service


class TestCrossProcessReuse:
    def test_cold_service_hits_for_previously_prepared_queries(
        self, emp_dept_schema, store_path
    ):
        # "Process" 1: pays the full pipeline, persists the result.
        with fresh_service(emp_dept_schema, store_path) as first:
            sql_first = first.transpile_to_sql(JOIN)
            info = first.persistent_cache_info()
            assert (info.hits, info.misses) == (0, 1)
        # "Process" 2: brand-new service, empty LRU, same store.
        with fresh_service(emp_dept_schema, store_path) as second:
            sql_second = second.transpile_to_sql(JOIN)
            info = second.persistent_cache_info()
            assert (info.hits, info.misses) == (1, 0)
            assert sql_first == sql_second
            # The memory LRU was seeded by the disk hit.
            assert second.cache_info().currsize == 1

    def test_disk_hit_produces_runnable_plans(self, emp_dept_schema, store_path):
        with fresh_service(emp_dept_schema, store_path) as first:
            expected = first.run(JOIN)
        with fresh_service(emp_dept_schema, store_path) as second:
            assert tables_equivalent(second.run(JOIN), expected)
            assert tables_equivalent(second.reference(JOIN), expected)

    def test_subprocess_cold_run_hits(self, emp_dept_schema, store_path):
        """The real thing: a separate OS process reuses this one's entries."""
        import subprocess
        import sys

        with fresh_service(emp_dept_schema, store_path) as warm:
            warm.transpile_to_sql(SCAN)
        script = f"""
import sys
from repro.backends import GraphitiService
from repro.graph.schema import EdgeType, GraphSchema, NodeType

schema = GraphSchema.of(
    [NodeType("EMP", ("id", "name")), NodeType("DEPT", ("dnum", "dname"))],
    [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
)
with GraphitiService(schema, persistent_cache={str(store_path)!r}) as service:
    service.load_mock(15, seed=5)
    service.transpile_to_sql({SCAN!r})
    info = service.persistent_cache_info()
    sys.exit(0 if (info.hits, info.misses) == (1, 0) else 1)
"""
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert result.returncode == 0, result.stderr

    def test_shared_store_object_between_services(self, emp_dept_schema, store_path):
        with PersistentQueryCache(store_path) as store:
            with GraphitiService(emp_dept_schema, persistent_cache=store) as first:
                first.load_mock(15, seed=5)
                first.transpile_to_sql(SCAN)
            with GraphitiService(emp_dept_schema, persistent_cache=store) as second:
                second.load_mock(15, seed=5)
                second.transpile_to_sql(SCAN)
            assert store.hits == 1
            # The store outlives both services (they don't own it).
            assert len(store) == 1


class TestInvalidation:
    def test_different_opt_levels_are_distinct_entries(
        self, emp_dept_schema, store_path
    ):
        with fresh_service(emp_dept_schema, store_path) as service:
            service.transpile_to_sql(SCAN, opt_level=1)
            service.transpile_to_sql(SCAN, opt_level=2)
            assert len(service._persistent) == 2

    def test_different_data_invalidates_level_two_plans(
        self, emp_dept_schema, store_path
    ):
        with fresh_service(emp_dept_schema, store_path, rows=10) as service:
            service.transpile_to_sql(JOIN)
        with fresh_service(emp_dept_schema, store_path, rows=25) as service:
            service.transpile_to_sql(JOIN)  # fresh stats → new plan key
            info = service.persistent_cache_info()
            assert info.misses == 1

    def test_same_data_shares_level_two_plans(self, emp_dept_schema, store_path):
        with fresh_service(emp_dept_schema, store_path, rows=10) as service:
            service.transpile_to_sql(JOIN)
        with fresh_service(emp_dept_schema, store_path, rows=10) as service:
            service.transpile_to_sql(JOIN)  # identical stats digest → hit
            info = service.persistent_cache_info()
            assert (info.hits, info.misses) == (1, 0)

    def test_different_schema_never_collides(self, emp_dept_schema, store_path):
        from repro.graph.schema import GraphSchema, NodeType

        other = GraphSchema.of([NodeType("ONLY", ("oid", "oname"))])
        with fresh_service(emp_dept_schema, store_path) as service:
            service.transpile_to_sql(SCAN)
        with GraphitiService(other, persistent_cache=store_path) as service:
            service.load_mock(5)
            service.transpile_to_sql("MATCH (o:ONLY) RETURN o.oname")
            info = service.persistent_cache_info()
            assert info.hits == 0


class TestStoreRobustness:
    def test_corrupt_payload_counts_as_miss_and_is_purged(self, store_path):
        key = cache_key("fp", "q", "sqlite", 2, "digest")
        with PersistentQueryCache(store_path) as store:
            store.put(key, "q", object())  # placeholder entry
        # Corrupt the payload behind the store's back.
        import sqlite3

        connection = sqlite3.connect(store_path)
        connection.execute(
            "UPDATE entries SET payload = ?", (b"not a pickle",)
        )
        connection.commit()
        connection.close()
        with PersistentQueryCache(store_path) as store:
            assert store.get(key) is None
            assert store.misses == 1
            assert len(store) == 0  # purged

    def test_clear_empties_store(self, store_path):
        with PersistentQueryCache(store_path) as store:
            store.put(cache_key("f", "q", "d", 2, "s"), "q", ("payload",))
            assert len(store) == 1
            store.clear()
            assert len(store) == 0

    def test_version_mismatch_rebuilds_store(self, store_path):
        with PersistentQueryCache(store_path) as store:
            store.put(cache_key("f", "q", "d", 2, "s"), "q", ("payload",))
        import sqlite3

        connection = sqlite3.connect(store_path)
        connection.execute("PRAGMA user_version = 9999")
        connection.commit()
        connection.close()
        with PersistentQueryCache(store_path) as store:
            assert len(store) == 0  # dropped on format mismatch

    def test_payload_round_trips_pickle(self, store_path):
        value = {"nested": (1, 2.5, "x", None)}
        key = cache_key("f", "q", "d", 0, "")
        with PersistentQueryCache(store_path) as store:
            store.put(key, "q", value)
            assert store.get(key) == value
            assert pickle.dumps(value)  # sanity: value itself picklable

    def test_default_cache_dir_honours_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("GRAPHITI_CACHE_DIR", str(tmp_path / "override"))
        assert default_cache_dir() == tmp_path / "override"
        monkeypatch.delenv("GRAPHITI_CACHE_DIR")
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == tmp_path / "xdg" / "graphiti-repro"


class TestServiceWiring:
    def test_disabled_by_default(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema) as service:
            assert service.persistent_cache_info() is None

    def test_true_uses_default_location(self, emp_dept_schema, monkeypatch, tmp_path):
        monkeypatch.setenv("GRAPHITI_CACHE_DIR", str(tmp_path))
        with GraphitiService(emp_dept_schema, persistent_cache=True) as service:
            service.load_mock(5)
            service.transpile_to_sql(SCAN)
        assert (tmp_path / "transpilations.sqlite").exists()
