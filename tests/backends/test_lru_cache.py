"""The service's in-memory LRU: eviction order, accounting, thread safety."""

import threading

from repro.backends.service import _LruCache


class TestLruBasics:
    def test_miss_then_hit(self):
        cache = _LruCache(maxsize=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)

    def test_put_overwrites(self):
        cache = _LruCache(maxsize=4)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert cache.info().currsize == 1

    def test_evicts_least_recently_used(self):
        cache = _LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = _LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # "a" is now most recent
        cache.put("c", 3)  # evicts "b", not "a"
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_put_refreshes_recency(self):
        cache = _LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put: "a" most recent
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_eviction_is_fifo_among_untouched(self):
        cache = _LruCache(maxsize=3)
        for key in "abc":
            cache.put(key, key)
        cache.put("d", "d")
        cache.put("e", "e")
        assert cache.get("a") is None
        assert cache.get("b") is None
        assert [cache.get(k) for k in "cde"] == ["c", "d", "e"]

    def test_clear_resets_entries_and_counters(self):
        cache = _LruCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zzz")
        cache.clear()
        info = cache.info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)
        assert cache.get("a") is None  # still functional after clear

    def test_info_reports_maxsize(self):
        assert _LruCache(maxsize=7).info().maxsize == 7


class TestLruThreadSafety:
    def test_concurrent_mixed_operations_keep_invariants(self):
        cache = _LruCache(maxsize=16)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                for i in range(300):
                    key = (worker_id * 7 + i) % 24
                    cache.put(key, key)
                    value = cache.get(key)
                    assert value is None or value == key
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        info = cache.info()
        assert info.currsize <= 16
        assert info.hits + info.misses == 8 * 300
