"""Cross-backend differential test harness.

The reusable template every execution backend must pass: for each
``(backend, optimization level)`` combination in the registry, every query
of the example corpus must return a table bag-equivalent (Definition 4.4)
to the reference evaluator's result over the same loaded data.

Future backends get this coverage for free — registering an engine makes
``available_backends()`` include it, which parametrizes these tests over
it on the next run.  Adding a workload means adding an entry to
:data:`CORPUS`; adding an engine means making it importable.  The helper
:func:`assert_differential` is importable from engine-specific test files
that want the same check on hand-picked queries::

    from tests.backends.test_differential import assert_differential

The corpus spans three universes so the harness exercises edge-table *and*
self-referential designs: the Figure-14 EMP/DEPT schema (joins, outer
joins, aggregation, correlated EXISTS), the SOCIAL universe (multi-hop
joins, self-joins over FOLLOWS, filters), and the COMPANY universe
(property filters and aggregation over a salaried workforce).  A fourth
corpus entry reruns the SOCIAL universe with variable-length traversals
(``*``, ``*n``, ``*lo..hi``, zero-hop, reversed, undirected, mixed with
fixed-length hops, EXISTS and OPTIONAL MATCH) — the reachability workload
every backend must serve through both the recursive-CTE and the unrolled
rendering (the opt-level parametrization covers both plan shapes).
"""

from __future__ import annotations

import pytest

from repro.backends import (
    GraphitiService,
    ShardedGraphitiService,
    available_backends,
)
from repro.backends.comparison import DEFAULT_SCHEMA, DEFAULT_WORKLOAD
from repro.backends.throughput import WORKLOAD as SOCIAL_WORKLOAD
from repro.benchmarks.universes import COMPANY, SOCIAL
from repro.relational.instance import tables_equivalent
from repro.sql.optimize import OPT_LEVELS

#: Rows per table for the differential instances — small, because the
#: reference evaluator nested-loops its joins; variety comes from the
#: corpus, not the data volume.
ROWS_PER_TABLE = 15

COMPANY_WORKLOAD: dict[str, str] = {
    "scan-filter": "MATCH (e:EMP) WHERE e.salary = 5 RETURN e.ename",
    "join": (
        "MATCH (e:EMP)-[w:WORK_AT]->(d:DEPT) RETURN e.ename, d.dname"
    ),
    "join-agg": (
        "MATCH (e:EMP)-[w:WORK_AT]->(d:DEPT) RETURN d.dname, Count(*)"
    ),
    "optional": (
        "MATCH (d:DEPT) OPTIONAL MATCH (e:EMP)-[w:WORK_AT]->(d:DEPT) "
        "RETURN d.dname, e.ename"
    ),
}

#: Variable-length traversals over SOCIAL's self-referential FOLLOWS edge.
#: Level 2 unrolls the bounded ones into k-hop join chains and keeps the
#: open-ended ones recursive, so the backend × opt-level matrix exercises
#: both plan shapes against the same reference results.
TRAVERSAL_WORKLOAD: dict[str, str] = {
    "star": "MATCH (a:USER)-[:FOLLOWS*]->(b:USER) RETURN a.uid, b.uid",
    "exact-two": "MATCH (a:USER)-[:FOLLOWS*2]->(b:USER) RETURN a.uid, b.uid",
    "one-to-three": (
        "MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN a.uname, Count(*)"
    ),
    "zero-hop": "MATCH (a:USER)-[:FOLLOWS*0..2]->(b:USER) RETURN a.uid, b.uid",
    "reversed": "MATCH (a:USER)<-[:FOLLOWS*2..]-(b:USER) RETURN a.uid, b.uid",
    "undirected": "MATCH (a:USER)-[:FOLLOWS*1..2]-(b:USER) RETURN a.uid, b.uid",
    "back-to-self": "MATCH (a:USER)-[:FOLLOWS*2..3]->(a:USER) RETURN a.uid",
    "mixed-hops": (
        "MATCH (a:USER)-[:FOLLOWS*1..2]->(b:USER)-[w:WROTE]->(p:POST) "
        "RETURN a.uid, p.pid"
    ),
    "exists-reach": (
        "MATCH (a:USER) WHERE EXISTS { MATCH (a:USER)-[:FOLLOWS*2..3]->(b:USER) } "
        "RETURN a.uid"
    ),
    "optional-reach": (
        "MATCH (a:USER) OPTIONAL MATCH (a:USER)-[:FOLLOWS*2]->(b:USER) "
        "RETURN a.uid, b.uid"
    ),
}

#: The example corpus: universe label → (graph schema, {query label → Cypher}).
CORPUS = {
    "emp-dept": (DEFAULT_SCHEMA, DEFAULT_WORKLOAD),
    "social": (SOCIAL.graph_schema, SOCIAL_WORKLOAD),
    "company": (COMPANY.graph_schema, COMPANY_WORKLOAD),
    "traversal": (SOCIAL.graph_schema, TRAVERSAL_WORKLOAD),
}

#: Mock-data seed per universe (default 42).  The traversal corpus needs a
#: FOLLOWS graph containing a short directed cycle so ``back-to-self``
#: returns rows; seed 7 produces one, seed 42 happens not to.
SEEDS = {"traversal": 7}
DEFAULT_SEED = 42

CASES = [
    pytest.param(universe, label, id=f"{universe}/{label}")
    for universe, (_, workload) in CORPUS.items()
    for label in workload
]


def assert_differential(
    service: GraphitiService, backend: str, cypher: str, opt_level: int
) -> None:
    """One differential check: backend execution vs the reference evaluator.

    The reference always evaluates the *default-level* plan — the raw
    (level-0) one-node-per-rule nesting would make the materialising
    evaluator enumerate full cross products, which is combinatorially
    infeasible even on tiny instances.  The backend runs at *opt_level*,
    so the assertion covers the whole pipeline: a failure means the
    optimizer broke bag semantics at that level, or the backend (render,
    load, engine) diverges from the reference.
    """
    expected = service.reference(cypher)
    actual = service.run(cypher, backend=backend, opt_level=opt_level)
    assert tables_equivalent(expected, actual), (
        f"{backend} (opt {opt_level}) diverges from the reference evaluator "
        f"on {cypher!r}\nreference:\n{expected}\nbackend:\n{actual}"
    )


@pytest.fixture(scope="module")
def differential_services():
    """Lazily created, module-shared services — one per universe.

    One service serves every backend × opt level over one mock instance:
    the pool map gives each backend its own loaded connections, and
    ``opt_level`` is a per-call override, so nothing is re-loaded between
    parametrizations.
    """
    services: dict[str, GraphitiService] = {}

    def service_for(universe: str) -> GraphitiService:
        service = services.get(universe)
        if service is None:
            schema, _ = CORPUS[universe]
            service = GraphitiService(schema)
            # Seed chosen so every corpus query returns rows (guarded by
            # test_corpus_is_nontrivial) — vacuous bag-equivalence of empty
            # tables would not exercise marshalling at all.
            service.load_mock(ROWS_PER_TABLE, seed=SEEDS.get(universe, DEFAULT_SEED))
            services[universe] = service
        return service

    yield service_for
    for service in services.values():
        service.close()


class TestDifferentialHarness:
    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("opt_level", sorted(OPT_LEVELS))
    @pytest.mark.parametrize(("universe", "label"), CASES)
    def test_backend_matches_reference(
        self, universe, label, opt_level, backend_name, differential_services
    ):
        _, workload = CORPUS[universe]
        assert_differential(
            differential_services(universe),
            backend_name,
            workload[label],
            opt_level,
        )

    def test_corpus_is_nontrivial(self, differential_services):
        """Guard the harness itself: every corpus query returns rows on the
        mock instances, so a backend returning empty tables cannot pass by
        vacuous bag-equivalence."""
        for universe, (_, workload) in CORPUS.items():
            service = differential_services(universe)
            for label, cypher in workload.items():
                rows = len(service.reference(cypher))
                assert rows > 0, f"{universe}/{label} returns no rows"

    def test_every_available_backend_is_covered(self):
        """The parametrization tracks the registry — a newly registered,
        importable engine is automatically subject to the harness."""
        assert set(available_backends()) >= {"sqlite-memory", "sqlite-file"}


#: Shard counts for the scatter-gather lane: 2 exercises the binary
#: boundary cases, 3 an uneven partition.
SHARD_COUNTS = (2, 3)


@pytest.fixture(scope="module")
def sharded_differential_services():
    """One sharded coordinator per (universe, shard count), module-shared.

    The same corpus runs through :class:`ShardedGraphitiService`: single-
    relation queries scatter across the shards and merge at the
    coordinator, joins and variable-length traversals take the transparent
    unsharded fallback — so this lane differentially validates *both* the
    merge rules and the fallback routing against the reference evaluator,
    over data whose edges genuinely cross shard boundaries (the traversal
    corpus's FOLLOWS graph is partitioned with a populated cross-shard
    edge ledger).
    """
    services: dict[tuple[str, int], ShardedGraphitiService] = {}

    def service_for(universe: str, num_shards: int) -> ShardedGraphitiService:
        key = (universe, num_shards)
        service = services.get(key)
        if service is None:
            schema, _ = CORPUS[universe]
            service = ShardedGraphitiService(schema, num_shards=num_shards)
            service.load_mock(ROWS_PER_TABLE, seed=SEEDS.get(universe, DEFAULT_SEED))
            services[key] = service
        return service

    yield service_for
    for service in services.values():
        service.close()


class TestShardedDifferentialHarness:
    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("opt_level", sorted(OPT_LEVELS))
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    @pytest.mark.parametrize(("universe", "label"), CASES)
    def test_sharded_matches_reference(
        self,
        universe,
        label,
        num_shards,
        opt_level,
        backend_name,
        sharded_differential_services,
    ):
        _, workload = CORPUS[universe]
        cypher = workload[label]
        service = sharded_differential_services(universe, num_shards)
        expected = service.reference(cypher)
        actual = service.run(cypher, backend=backend_name, opt_level=opt_level)
        assert tables_equivalent(expected, actual), (
            f"{backend_name} (opt {opt_level}, {num_shards} shards) diverges "
            f"from the reference evaluator on {cypher!r}"
            f"\nreference:\n{expected}\nsharded:\n{actual}"
        )

    def test_traversal_corpus_has_cross_shard_edges(
        self, sharded_differential_services
    ):
        """Guard the lane itself: the traversal universe's partition must
        place FOLLOWS edges across shard boundaries, otherwise the lane
        would never exercise the cross-shard path."""
        for num_shards in SHARD_COUNTS:
            service = sharded_differential_services("traversal", num_shards)
            report = service.partition_report()
            assert sum(report["cross_shard_edges"].values()) > 0


#: Partition degrees for the intra-query parallel lane: 2 exercises the
#: binary split, 3 an uneven one.
PARALLEL_DEGREES = (2, 3)


@pytest.fixture(scope="module")
def parallel_differential_services():
    """One partition-parallel service per (universe, degree), module-shared.

    The corpus runs with the parallel gate forced open
    (``parallel_row_threshold=0``), so every fragmentable scan and
    aggregate scatters over rowid partitions and merges — while joins
    and variable-length traversals classify non-fragmentable and take
    the serial path.  The lane therefore differentially validates the
    partition split, the merge rules, *and* the serial fallback against
    the reference evaluator.
    """
    services: dict[tuple[str, int], GraphitiService] = {}

    def service_for(universe: str, degree: int) -> GraphitiService:
        key = (universe, degree)
        service = services.get(key)
        if service is None:
            schema, _ = CORPUS[universe]
            service = GraphitiService(
                schema, parallelism=degree, parallel_row_threshold=0
            )
            service.load_mock(ROWS_PER_TABLE, seed=SEEDS.get(universe, DEFAULT_SEED))
            services[key] = service
        return service

    yield service_for
    for service in services.values():
        service.close()


class TestParallelDifferentialHarness:
    @pytest.mark.parametrize("backend_name", available_backends())
    @pytest.mark.parametrize("opt_level", sorted(OPT_LEVELS))
    @pytest.mark.parametrize("degree", PARALLEL_DEGREES)
    @pytest.mark.parametrize(("universe", "label"), CASES)
    def test_parallel_matches_reference(
        self,
        universe,
        label,
        degree,
        opt_level,
        backend_name,
        parallel_differential_services,
    ):
        _, workload = CORPUS[universe]
        cypher = workload[label]
        service = parallel_differential_services(universe, degree)
        expected = service.reference(cypher)
        actual = service.run(cypher, backend=backend_name, opt_level=opt_level)
        assert tables_equivalent(expected, actual), (
            f"{backend_name} (opt {opt_level}, parallel {degree}) diverges "
            f"from the reference evaluator on {cypher!r}"
            f"\nreference:\n{expected}\nparallel:\n{actual}"
        )

    def test_lane_actually_scatters(self, parallel_differential_services):
        """Guard the lane itself: at least one corpus query in the
        universes with single-relation workloads must clear the
        (forced-open) gate, or the parametrization above would only ever
        exercise the serial path.  (The social and traversal workloads
        are all joins/traversals and legitimately stay serial.)"""
        for universe in ("emp-dept", "company"):
            _, workload = CORPUS[universe]
            service = parallel_differential_services(universe, 2)
            scattered = False
            for cypher in workload.values():
                _, prepared = service.serve(cypher)
                verdict = prepared.plan.parallelism
                if verdict and verdict.get("parallel"):
                    scattered = True
                    break
            assert scattered, f"no {universe} query engaged the parallel gate"
