"""GraphitiService behaviour: caching, loading, multi-backend execution."""

import pytest

from repro.backends import GraphitiService, schema_fingerprint
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.relational.instance import Database, tables_equivalent

JOIN_QUERY = "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname"
SCAN_QUERY = "MATCH (n:EMP) RETURN n.name"


@pytest.fixture
def service(emp_dept_schema, emp_dept_graph):
    with GraphitiService(emp_dept_schema) as svc:
        svc.load_graph(emp_dept_graph)
        yield svc


class TestTranspilationCache:
    def test_repeated_query_hits_cache(self, service):
        assert service.cache_info().currsize == 0
        first = service.transpile_to_sql(JOIN_QUERY)
        info = service.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 1, 1)
        second = service.transpile_to_sql(JOIN_QUERY)
        info = service.cache_info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)
        assert first == second

    def test_distinct_queries_are_distinct_entries(self, service):
        service.transpile_to_sql(JOIN_QUERY)
        service.transpile_to_sql(SCAN_QUERY)
        assert service.cache_info().currsize == 2

    def test_dialects_cached_separately(self, service):
        sqlite_sql = service.transpile_to_sql(SCAN_QUERY, dialect="sqlite")
        mysql_sql = service.transpile_to_sql(SCAN_QUERY, dialect="mysql")
        assert service.cache_info().currsize == 2
        assert sqlite_sql != mysql_sql
        assert "`" in mysql_sql

    def test_cache_evicts_least_recently_used(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema, cache_size=2) as svc:
            svc.transpile_to_sql(SCAN_QUERY)
            svc.transpile_to_sql(JOIN_QUERY)
            svc.transpile_to_sql("MATCH (m:DEPT) RETURN m.dname")
            info = svc.cache_info()
            assert info.currsize == 2
            # The oldest entry (SCAN_QUERY) was evicted: re-preparing misses.
            svc.transpile_to_sql(SCAN_QUERY)
            assert svc.cache_info().misses == 4

    def test_clear_cache(self, service):
        service.transpile_to_sql(SCAN_QUERY)
        service.clear_cache()
        info = service.cache_info()
        assert (info.hits, info.misses, info.currsize) == (0, 0, 0)

    def test_run_reuses_prepared_queries(self, service):
        service.run(JOIN_QUERY)
        misses = service.cache_info().misses
        service.run(JOIN_QUERY)
        assert service.cache_info().misses == misses
        assert service.cache_info().hits >= 1


class TestFingerprint:
    def test_stable_across_instances(self, emp_dept_schema):
        again = GraphSchema.of(
            [NodeType("EMP", ("id", "name")), NodeType("DEPT", ("dnum", "dname"))],
            [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
        )
        assert schema_fingerprint(emp_dept_schema) == schema_fingerprint(again)

    def test_differs_for_different_schemas(self, emp_dept_schema):
        other = GraphSchema.of([NodeType("ONLY", ("oid",))])
        assert schema_fingerprint(emp_dept_schema) != schema_fingerprint(other)

    def test_fingerprint_keys_cache_entries(self, service):
        prepared = service.prepare(SCAN_QUERY)
        assert prepared.fingerprint == service.fingerprint


class TestExecution:
    def test_run_matches_reference(self, service):
        assert tables_equivalent(service.run(JOIN_QUERY), service.reference(JOIN_QUERY))

    def test_identical_results_on_two_backends(self, service):
        names = service.backends()
        assert len(names) >= 2, "expected at least two registered backends"
        results = [service.run(JOIN_QUERY, backend=name) for name in names]
        for left, right in zip(results, results[1:]):
            assert tables_equivalent(left, right)

    def test_explain_mentions_table(self, service):
        assert "EMP" in service.explain(SCAN_QUERY) or "n" in service.explain(SCAN_QUERY)

    def test_time_is_nonnegative(self, service):
        assert service.time(SCAN_QUERY, repeats=2) >= 0.0


class TestLoading:
    def test_load_database_requires_induced_schema(self, service):
        from repro.relational.schema import Relation, RelationalSchema

        wrong = Database(RelationalSchema.of([Relation("other", ("x",))]))
        with pytest.raises(ValueError, match="induced schema"):
            service.load_database(wrong)

    def test_load_mock_populates_all_tables(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema, batch_size=7) as svc:
            svc.load_mock(20)
            assert svc.database.total_rows() == 60  # 2 node + 1 edge tables
            result = svc.run(SCAN_QUERY)
            assert len(result) == 20

    def test_reload_resets_backends(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema) as svc:
            svc.load_mock(5)
            assert len(svc.run(SCAN_QUERY)) == 5
            svc.load_mock(9)
            assert len(svc.run(SCAN_QUERY)) == 9


class TestOptLevels:
    def test_levels_are_distinct_cache_entries(self, service):
        for level in (0, 1, 2):
            service.prepare(JOIN_QUERY, opt_level=level)
        assert service.cache_info().currsize == 3

    def test_prepared_query_records_level(self, service):
        assert service.prepare(JOIN_QUERY, opt_level=1).opt_level == 1
        assert service.prepare(JOIN_QUERY).opt_level == service.opt_level

    def test_level_two_is_the_default(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema) as svc:
            assert svc.opt_level == 2

    def test_unknown_level_rejected(self, emp_dept_schema, service):
        with pytest.raises(ValueError, match="optimization level"):
            GraphitiService(emp_dept_schema, opt_level=9)
        with pytest.raises(ValueError, match="optimization level"):
            service.prepare(SCAN_QUERY, opt_level=9)

    def test_levels_agree_on_results(self, service):
        results = [service.run(JOIN_QUERY, opt_level=level) for level in (0, 1, 2)]
        for left, right in zip(results, results[1:]):
            assert tables_equivalent(left, right)

    def test_reload_replans_level_two_only(self, emp_dept_schema):
        # Fresh statistics can change the level-2 plan, so a data reload
        # must invalidate level-2 entries; level-1 plans are stats-free.
        with GraphitiService(emp_dept_schema) as svc:
            svc.load_mock(10)
            svc.prepare(JOIN_QUERY, opt_level=1)
            svc.prepare(JOIN_QUERY, opt_level=2)
            svc.load_mock(20)
            svc.prepare(JOIN_QUERY, opt_level=1)
            info = svc.cache_info()
            assert (info.hits, info.misses) == (1, 2)
            svc.prepare(JOIN_QUERY, opt_level=2)
            info = svc.cache_info()
            assert (info.hits, info.misses) == (1, 3)


class TestStatistics:
    def test_load_collects_stats(self, emp_dept_schema):
        with GraphitiService(emp_dept_schema) as svc:
            svc.load_mock(25)
            stats = svc._stats
            assert stats is not None
            assert stats["EMP"].row_count == 25
            assert stats["EMP"].distinct_of("id") == 25

    def test_bulk_load_records_table_stats(self, emp_dept_schema):
        from repro.backends import load_backend

        with GraphitiService(emp_dept_schema) as svc:
            svc.load_mock(12)
            backend = load_backend("sqlite-memory", svc.database)
            try:
                assert backend.table_stats is not None
                assert backend.table_stats["DEPT"].row_count == 12
            finally:
                backend.close()


class TestQueryStats:
    def test_run_and_time_are_recorded(self, service):
        service.run(SCAN_QUERY)
        service.run(SCAN_QUERY)
        service.time(JOIN_QUERY, repeats=2)
        stats = {s.cypher_text: s for s in service.query_stats()}
        assert stats[SCAN_QUERY].executions == 2
        assert stats[SCAN_QUERY].total_seconds >= stats[SCAN_QUERY].last_seconds
        assert stats[JOIN_QUERY].executions == 1
        assert stats[JOIN_QUERY].mean_seconds >= 0.0

    def test_reset(self, service):
        service.run(SCAN_QUERY)
        service.reset_query_stats()
        assert service.query_stats() == ()
