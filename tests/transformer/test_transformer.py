"""Transformer DSL: parsing, application, equivalence, residuals (Section 4)."""

import pytest

from repro.common.errors import ParseError, TransformerError
from repro.graph.builder import GraphBuilder
from repro.relational.instance import Database
from repro.relational.schema import Relation, RelationalSchema
from repro.transformer.dsl import Constant, Predicate, Rule, Transformer, Variable, Wildcard
from repro.transformer.facts import graph_facts, relational_facts
from repro.transformer.parser import parse_transformer
from repro.transformer.residual import residual_transformer, sdt_substitution
from repro.transformer.semantics import (
    apply_transformer,
    graph_relational_equivalent,
    transform_graph,
)


class TestParser:
    def test_single_rule(self):
        transformer = parse_transformer("EMP(id, name) -> emp(id, name)")
        assert len(transformer) == 1
        rule = transformer.rules[0]
        assert rule.head.name == "emp"
        assert rule.body[0].terms == (Variable("id"), Variable("name"))

    def test_multiple_body_atoms(self):
        transformer = parse_transformer(
            "EMP(id, name), WORK_AT(w, id, d) -> emp(id, name, d)"
        )
        assert len(transformer.rules[0].body) == 2

    def test_wildcards_and_constants(self):
        transformer = parse_transformer("EMP(id, _, 'boss', 3) -> vip(id)")
        terms = transformer.rules[0].body[0].terms
        assert isinstance(terms[1], Wildcard)
        assert terms[2] == Constant("boss")
        assert terms[3] == Constant(3)

    def test_comments_and_blank_lines(self):
        transformer = parse_transformer(
            """
            # mapping employees
            EMP(id, name) -> emp(id, name)

            -- and departments
            DEPT(d, n) -> dept(d, n)
            """
        )
        assert len(transformer) == 2

    def test_unicode_arrow(self):
        transformer = parse_transformer("EMP(id) → emp(id)")
        assert len(transformer) == 1

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_transformer("   \n  ")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_transformer("EMP(id) -> emp(id) extra")


class TestRuleValidation:
    def test_unsafe_head_variable_rejected(self):
        with pytest.raises(TransformerError, match="unsafe"):
            Rule(
                (Predicate("a", (Variable("x"),)),),
                Predicate("b", (Variable("y"),)),
            )

    def test_head_wildcard_rejected(self):
        with pytest.raises(TransformerError, match="wildcard"):
            Rule((Predicate("a", (Variable("x"),)),), Predicate("b", (Wildcard(),)))

    def test_empty_body_rejected(self):
        with pytest.raises(TransformerError, match="non-empty"):
            Rule((), Predicate("b", ()))


class TestFactEncoding:
    def test_graph_facts(self, emp_dept_graph):
        facts = graph_facts(emp_dept_graph)
        assert ("EMP", (1, "A")) in facts
        assert ("DEPT", (1, "CS")) in facts
        # Edge facts carry (props..., source default key, target default key).
        assert ("WORK_AT", (10, 1, 1)) in facts

    def test_relational_facts(self):
        schema = RelationalSchema.of([Relation("r", ("a", "b"))])
        db = Database(schema)
        db.insert("r", (1, 2))
        assert relational_facts(db) == {("r", (1, 2))}


class TestApplication:
    def test_join_rule(self, emp_dept_graph, merged_transformer, merged_target_schema):
        target = transform_graph(
            merged_transformer, emp_dept_graph, merged_target_schema
        )
        assert sorted(target.table("emp").rows) == [(10, "A", 1), (11, "B", 1)]
        assert sorted(target.table("dept").rows) == [(1, "CS"), (2, "EE")]

    def test_constants_filter(self, emp_dept_graph):
        transformer = parse_transformer("EMP(id, 'A') -> chosen(id)")
        schema = RelationalSchema.of([Relation("chosen", ("id",))])
        target = transform_graph(transformer, emp_dept_graph, schema)
        assert target.table("chosen").rows == [(1,)]

    def test_wildcard_matches_anything(self, emp_dept_graph):
        transformer = parse_transformer("EMP(id, _) -> ids(id)")
        schema = RelationalSchema.of([Relation("ids", ("id",))])
        target = transform_graph(transformer, emp_dept_graph, schema)
        assert len(target.table("ids")) == 2

    def test_repeated_variable_forces_equality(self, emp_dept_graph):
        # DEPT nodes where dnum equals dnum (trivially all) vs cross-type join.
        transformer = parse_transformer("EMP(x, _), DEPT(x, n) -> same(x, n)")
        schema = RelationalSchema.of([Relation("same", ("x", "n"))])
        target = transform_graph(transformer, emp_dept_graph, schema)
        # EMP ids {1, 2} intersect DEPT dnums {1, 2} -> both join.
        assert len(target.table("same")) == 2

    def test_derived_facts_are_a_set(self, emp_dept_graph):
        transformer = parse_transformer("WORK_AT(_, _, d) -> dept_used(d)")
        schema = RelationalSchema.of([Relation("dept_used", ("d",))])
        target = transform_graph(transformer, emp_dept_graph, schema)
        # Both edges point at dept 1; the fact set collapses them.
        assert target.table("dept_used").rows == [(1,)]

    def test_stray_head_rejected(self, emp_dept_graph):
        transformer = parse_transformer("EMP(id, n) -> nowhere(id, n)")
        schema = RelationalSchema.of([Relation("other", ("a",))])
        with pytest.raises(TransformerError, match="unknown relations"):
            transform_graph(transformer, emp_dept_graph, schema)

    def test_arity_mismatch_rejected(self, emp_dept_graph):
        transformer = parse_transformer("EMP(id, n) -> t(id, n)")
        schema = RelationalSchema.of([Relation("t", ("a",))])
        with pytest.raises(TransformerError, match="arity"):
            transform_graph(transformer, emp_dept_graph, schema)


class TestEquivalenceCheck:
    def test_matching_instance(self, emp_dept_graph, merged_transformer, merged_target_schema):
        target = transform_graph(
            merged_transformer, emp_dept_graph, merged_target_schema
        )
        assert graph_relational_equivalent(
            merged_transformer, emp_dept_graph, target
        )

    def test_extra_row_breaks_equivalence(
        self, emp_dept_graph, merged_transformer, merged_target_schema
    ):
        target = transform_graph(
            merged_transformer, emp_dept_graph, merged_target_schema
        )
        target.insert("emp", (99, "X", 1))
        assert not graph_relational_equivalent(
            merged_transformer, emp_dept_graph, target
        )


class TestResidual:
    def test_substitution_extraction(self, emp_dept_sdt):
        substitution = sdt_substitution(emp_dept_sdt.transformer)
        assert substitution == {"EMP": "EMP", "DEPT": "DEPT", "WORK_AT": "WORK_AT"}

    def test_residual_renames_bodies(self, merged_transformer, emp_dept_sdt):
        residual = residual_transformer(merged_transformer, emp_dept_sdt.transformer)
        body_names = {atom.name for rule in residual for atom in rule.body}
        assert body_names == {"EMP", "DEPT", "WORK_AT"}

    def test_residual_rejects_multi_atom_sdt(self, merged_transformer):
        with pytest.raises(TransformerError, match="single-atom"):
            sdt_substitution(merged_transformer)

    def test_residual_composition_lemma(
        self, emp_dept_graph, merged_transformer, merged_target_schema, emp_dept_sdt
    ):
        """Lemma F.11: Φ_rdt(Φ_sdt(G)) = Φ(G)."""
        from repro.transformer.semantics import transform_database

        induced = transform_graph(
            emp_dept_sdt.transformer, emp_dept_graph, emp_dept_sdt.schema
        )
        residual = residual_transformer(merged_transformer, emp_dept_sdt.transformer)
        via_residual = transform_database(residual, induced, merged_target_schema)
        direct = transform_graph(
            merged_transformer, emp_dept_graph, merged_target_schema
        )
        for name in ("emp", "dept"):
            assert sorted(via_residual.table(name).rows) == sorted(
                direct.table(name).rows
            )
