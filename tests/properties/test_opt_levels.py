"""Property: optimization levels agree everywhere.

For a deterministic spread of benchmark-suite queries (every universe and
category), levels 0, 1, and 2 must produce bag-equivalent results both
under the reference evaluator and when executed on sqlite-memory.  This is
the per-PR safety net behind the full-suite cross-validation the
optimizer benchmark performs (``benchmarks/bench_optimizer.py``).
"""

from __future__ import annotations

import pytest

from repro.backends import GraphitiService
from repro.benchmarks.suite import benchmark_suite
from repro.relational.instance import tables_equivalent

#: Every SAMPLE_STEP-th benchmark — ~41 queries spanning all six universes
#: and every template family, small enough for the tier-1 suite.
SAMPLE_STEP = 10
ROWS_PER_TABLE = 5

_SUITE = benchmark_suite()[::SAMPLE_STEP]
_SERVICES: dict[str, GraphitiService] = {}


def _service_for(case) -> GraphitiService:
    service = _SERVICES.get(case.universe.name)
    if service is None:
        service = GraphitiService(case.graph_schema)
        service.load_mock(ROWS_PER_TABLE, seed=11)
        _SERVICES[case.universe.name] = service
    return service


@pytest.fixture(scope="module", autouse=True)
def _close_services():
    yield
    for service in _SERVICES.values():
        service.close()
    _SERVICES.clear()


@pytest.mark.parametrize("case", _SUITE, ids=[b.id for b in _SUITE])
def test_opt_levels_agree(case):
    service = _service_for(case)
    expected = service.reference(case.cypher_text, opt_level=0)
    for level in (1, 2):
        evaluated = service.reference(case.cypher_text, opt_level=level)
        assert tables_equivalent(expected, evaluated), (
            f"reference evaluation diverges at opt level {level}"
        )
    for level in (0, 1, 2):
        executed = service.run(case.cypher_text, opt_level=level)
        assert tables_equivalent(expected, executed), (
            f"sqlite-memory execution diverges at opt level {level}"
        )
