"""Property-based tests over random graphs and random featherweight queries.

The central property is Theorem 5.7 (transpilation soundness): for every
graph instance G and Cypher query Q,

    ⟦Q⟧_G  ≡  ⟦transpile(Q)⟧_{Φ_sdt(G)}

exercised here with hypothesis over randomly generated instances of the
EMP/DEPT schema and randomly composed queries from the Figure-9 grammar.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.counterexample import lift_counterexample
from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile
from repro.cypher import ast as cy
from repro.cypher.parser import parse_cypher
from repro.cypher.pretty import pretty
from repro.cypher.semantics import evaluate_query as evaluate_cypher
from repro.graph.builder import GraphBuilder
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.relational.instance import tables_equivalent
from repro.sql.semantics import evaluate_query as evaluate_sql
from repro.transformer.facts import graph_facts
from repro.transformer.semantics import transform_graph

SCHEMA = GraphSchema.of(
    [NodeType("EMP", ("id", "name")), NodeType("DEPT", ("dnum", "dname"))],
    [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
)
SDT = infer_sdt(SCHEMA)

# -- instance strategy -------------------------------------------------------

names = st.sampled_from(["A", "B", "C"])


@st.composite
def graphs(draw):
    emp_count = draw(st.integers(0, 4))
    dept_count = draw(st.integers(0, 3))
    builder = GraphBuilder(SCHEMA)
    emps = [
        builder.add_node("EMP", id=i, name=draw(names)) for i in range(emp_count)
    ]
    depts = [
        builder.add_node("DEPT", dnum=i, dname=draw(names))
        for i in range(dept_count)
    ]
    if emps and depts:
        edge_count = draw(st.integers(0, 5))
        for wid in range(edge_count):
            source = draw(st.sampled_from(emps))
            target = draw(st.sampled_from(depts))
            builder.add_edge("WORK_AT", source, target, wid=wid)
    return builder.build()


# -- query strategy ----------------------------------------------------------


@st.composite
def path_patterns(draw):
    if draw(st.booleans()):
        return cy.path_pattern(cy.NodePattern("n", "EMP"))
    direction = draw(
        st.sampled_from([cy.Direction.OUT, cy.Direction.IN, cy.Direction.BOTH])
    )
    if direction is cy.Direction.IN:
        return cy.path_pattern(
            cy.NodePattern("m", "DEPT"),
            cy.EdgePattern("e", "WORK_AT", direction),
            cy.NodePattern("n", "EMP"),
        )
    return cy.path_pattern(
        cy.NodePattern("n", "EMP"),
        cy.EdgePattern("e", "WORK_AT", direction),
        cy.NodePattern("m", "DEPT"),
    )


def _variables(pattern) -> list[tuple[str, str]]:
    return [(p.variable, p.label) for p in pattern if isinstance(p, cy.NodePattern)]


@st.composite
def predicates(draw, pattern):
    variables = _variables(pattern)
    variable, label = draw(st.sampled_from(variables))
    key = "id" if label == "EMP" else "dnum"
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return cy.TRUE
    if kind == 1:
        op = draw(st.sampled_from(["=", "<", ">=", "<>"]))
        return cy.Comparison(
            op, cy.PropertyRef(variable, key), cy.Literal(draw(st.integers(0, 3)))
        )
    if kind == 2:
        name_key = "name" if label == "EMP" else "dname"
        return cy.IsNull(cy.PropertyRef(variable, name_key), draw(st.booleans()))
    return cy.InValues(
        cy.PropertyRef(variable, key),
        tuple(draw(st.lists(st.integers(0, 3), min_size=1, max_size=3))),
    )


@st.composite
def queries(draw):
    pattern = draw(path_patterns())
    predicate = draw(predicates(pattern))
    clause = cy.Match(pattern, predicate)
    variables = _variables(pattern)
    variable, label = draw(st.sampled_from(variables))
    key = "name" if label == "EMP" else "dname"
    id_key = "id" if label == "EMP" else "dnum"
    style = draw(st.integers(0, 3))
    if style == 0:
        return cy.Return(clause, (cy.PropertyRef(variable, key),), ("out",))
    if style == 1:
        return cy.Return(
            clause,
            (cy.PropertyRef(variable, key), cy.PropertyRef(variable, id_key)),
            ("a", "b"),
            distinct=draw(st.booleans()),
        )
    if style == 2:
        return cy.Return(
            clause,
            (cy.PropertyRef(variable, key), cy.Aggregate("Count", None)),
            ("grp", "cnt"),
        )
    return cy.Return(
        clause,
        (
            cy.PropertyRef(variable, key),
            cy.Aggregate(
                draw(st.sampled_from(["Sum", "Min", "Max"])),
                cy.PropertyRef(variable, id_key),
            ),
        ),
        ("grp", "val"),
    )


class TestTranspilerSoundness:
    @given(graphs(), queries())
    @settings(max_examples=120, deadline=None)
    def test_theorem_5_7(self, graph, query):
        translated = transpile(query, SCHEMA, SDT)
        induced = transform_graph(SDT.transformer, graph, SDT.schema)
        cypher_result = evaluate_cypher(query, graph)
        sql_result = evaluate_sql(translated, induced)
        assert tables_equivalent(cypher_result, sql_result)

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_multi_clause_soundness(self, graph):
        query = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) "
            "RETURN n.name, n2.name",
            SCHEMA,
        )
        translated = transpile(query, SCHEMA, SDT)
        induced = transform_graph(SDT.transformer, graph, SDT.schema)
        assert tables_equivalent(
            evaluate_cypher(query, graph), evaluate_sql(translated, induced)
        )

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_optional_match_soundness(self, graph):
        query = parse_cypher(
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN n.name, m.dname",
            SCHEMA,
        )
        translated = transpile(query, SCHEMA, SDT)
        induced = transform_graph(SDT.transformer, graph, SDT.schema)
        assert tables_equivalent(
            evaluate_cypher(query, graph), evaluate_sql(translated, induced)
        )

    @given(graphs())
    @settings(max_examples=60, deadline=None)
    def test_exists_soundness(self, graph):
        query = parse_cypher(
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
            "RETURN n.name",
            SCHEMA,
        )
        translated = transpile(query, SCHEMA, SDT)
        induced = transform_graph(SDT.transformer, graph, SDT.schema)
        assert tables_equivalent(
            evaluate_cypher(query, graph), evaluate_sql(translated, induced)
        )


class TestSdtBijection:
    @given(graphs())
    @settings(max_examples=80, deadline=None)
    def test_lift_inverts_sdt(self, graph):
        induced = transform_graph(SDT.transformer, graph, SDT.schema)
        lifted = lift_counterexample(SCHEMA, SDT, induced)
        assert graph_facts(lifted) == graph_facts(graph)

    @given(graphs())
    @settings(max_examples=80, deadline=None)
    def test_sdt_image_satisfies_induced_constraints(self, graph):
        induced = transform_graph(SDT.transformer, graph, SDT.schema)
        assert induced.constraint_violation() is None


class TestPrettyRoundTrip:
    @given(queries())
    @settings(max_examples=120, deadline=None)
    def test_parse_pretty_is_identity(self, query):
        text = pretty(query)
        reparsed = parse_cypher(text, SCHEMA)
        assert reparsed == query
