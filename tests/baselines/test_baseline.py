"""OpenCypherTranspiler behavioural model (Appendix E)."""

import pytest

from repro.baselines import BaselineStatus, transpile_baseline
from repro.core.sdt import infer_sdt
from repro.cypher.parser import parse_cypher


def run_baseline(text, schema):
    return transpile_baseline(parse_cypher(text, schema), schema, infer_sdt(schema))


class TestFragmentGate:
    def test_count_star_unsupported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP) RETURN Count(*) AS c", emp_dept_schema
        )
        assert result.status is BaselineStatus.UNSUPPORTED
        assert "Count(*)" in result.reason or "argument-less" in result.reason

    def test_with_unsupported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) WITH m AS k RETURN k.dname",
            emp_dept_schema,
        )
        assert result.status is BaselineStatus.UNSUPPORTED

    def test_union_unsupported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP) RETURN n.name UNION MATCH (m:EMP) RETURN m.name",
            emp_dept_schema,
        )
        assert result.status is BaselineStatus.UNSUPPORTED

    def test_order_by_unsupported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP) RETURN n.name AS w ORDER BY w", emp_dept_schema
        )
        assert result.status is BaselineStatus.UNSUPPORTED

    def test_chained_match_unsupported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "MATCH (n2:EMP)-[e2:WORK_AT]->(m:DEPT) RETURN n2.name",
            emp_dept_schema,
        )
        assert result.status is BaselineStatus.UNSUPPORTED

    def test_exists_unsupported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
            "RETURN n.name",
            emp_dept_schema,
        )
        assert result.status is BaselineStatus.UNSUPPORTED

    def test_undirected_unsupported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP)-[e:WORK_AT]-(m:DEPT) RETURN n.name", emp_dept_schema
        )
        assert result.status is BaselineStatus.UNSUPPORTED

    def test_plain_query_supported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            emp_dept_schema,
        )
        assert result.status is BaselineStatus.OK
        assert result.query is not None

    def test_aggregate_with_argument_supported(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (n:EMP) RETURN Sum(n.id) AS s", emp_dept_schema
        )
        assert result.status is BaselineStatus.OK


class TestBugClasses:
    def test_triple_pattern_with_in_is_syntax_error(self, emp_dept_schema):
        result = run_baseline(
            "MATCH (a:EMP), (b:EMP), (c:DEPT) "
            "WHERE a.id = b.id AND a.id IN [1, 2] AND c.dname IS NOT NULL "
            "RETURN a.name",
            emp_dept_schema,
        )
        assert result.status is BaselineStatus.SYNTAX_ERROR

    def test_backwards_optional_match_is_wrong(
        self, emp_dept_schema, emp_dept_sdt
    ):
        """The App. E ex. 3 bug: the baseline inner-joins, dropping rows."""
        from repro.cypher.semantics import evaluate_query as evaluate_cypher
        from repro.graph.builder import GraphBuilder
        from repro.relational.instance import tables_equivalent
        from repro.sql.semantics import evaluate_query as evaluate_sql
        from repro.transformer.semantics import transform_graph

        text = (
            "MATCH (m:DEPT) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m) "
            "RETURN m.dname, n.name"
        )
        query = parse_cypher(text, emp_dept_schema)
        result = transpile_baseline(query, emp_dept_schema, emp_dept_sdt)
        assert result.status is BaselineStatus.OK
        assert result.semantically_suspect

        builder = GraphBuilder(emp_dept_schema)
        builder.add_node("DEPT", dnum=1, dname="CS")  # department with no staff
        graph = builder.build()
        induced = transform_graph(
            emp_dept_sdt.transformer, graph, emp_dept_sdt.schema
        )
        expected = evaluate_cypher(query, graph)
        actual = evaluate_sql(result.query, induced)
        assert len(expected) == 1  # (CS, NULL)
        assert len(actual) == 0  # the baseline dropped the row
        assert not tables_equivalent(expected, actual)

    def test_forward_optional_match_is_correct(
        self, emp_dept_schema, emp_dept_sdt, emp_dept_graph
    ):
        from repro.cypher.semantics import evaluate_query as evaluate_cypher
        from repro.relational.instance import tables_equivalent
        from repro.sql.semantics import evaluate_query as evaluate_sql
        from repro.transformer.semantics import transform_graph

        text = (
            "MATCH (n:EMP) OPTIONAL MATCH (n)-[e:WORK_AT]->(m:DEPT) "
            "RETURN n.name, m.dname"
        )
        query = parse_cypher(text, emp_dept_schema)
        result = transpile_baseline(query, emp_dept_schema, emp_dept_sdt)
        assert result.status is BaselineStatus.OK
        assert not result.semantically_suspect
        induced = transform_graph(
            emp_dept_sdt.transformer, emp_dept_graph, emp_dept_sdt.schema
        )
        assert tables_equivalent(
            evaluate_cypher(query, emp_dept_graph),
            evaluate_sql(result.query, induced),
        )
