"""SQLite rendering cross-validated against the reference evaluator.

Every rendered query must produce a table equivalent (Definition 4.4) to
what the reference bag-semantics evaluator computes — this pins the
renderer's and evaluator's semantics to each other.
"""

import pytest

from repro.common.values import NULL
from repro.execution.sqlite_backend import SqliteDatabase, run_query, run_sql_text
from repro.relational.instance import Database, tables_equivalent
from repro.relational.schema import Relation, RelationalSchema
from repro.sql.parser import parse_sql
from repro.sql.pretty import to_sql_text
from repro.sql.semantics import evaluate_query


@pytest.fixture
def db() -> Database:
    schema = RelationalSchema.of(
        [
            Relation("emp", ("id", "name", "dept")),
            Relation("dept", ("dno", "dname")),
        ]
    )
    database = Database(schema)
    for row in [(1, "A", 10), (2, "B", 10), (3, "C", NULL), (4, "A", 20)]:
        database.insert("emp", row)
    for row in [(10, "CS"), (20, "EE"), (30, "ME")]:
        database.insert("dept", row)
    return database


CROSS_VALIDATION_QUERIES = [
    "SELECT e.name FROM emp AS e",
    "SELECT e.name, e.dept FROM emp AS e WHERE e.dept = 10",
    "SELECT DISTINCT e.name FROM emp AS e",
    "SELECT e.name, d.dname FROM emp AS e JOIN dept AS d ON e.dept = d.dno",
    "SELECT e.name, d.dname FROM emp AS e LEFT JOIN dept AS d ON e.dept = d.dno",
    "SELECT e.name, d.dname FROM emp AS e, dept AS d",
    "SELECT e.dept, COUNT(*) AS c FROM emp AS e GROUP BY e.dept",
    "SELECT d.dname, COUNT(*) AS c FROM emp AS e JOIN dept AS d "
    "ON e.dept = d.dno GROUP BY d.dname HAVING COUNT(*) > 1",
    "SELECT e.id + 1 AS bumped FROM emp AS e",
    "SELECT e.name FROM emp AS e WHERE e.dept IS NULL",
    "SELECT e.name FROM emp AS e WHERE e.dept IN (10, 30)",
    "SELECT e.name FROM emp AS e WHERE e.dept IN (SELECT d.dno FROM dept AS d)",
    "SELECT d.dname FROM dept AS d WHERE EXISTS "
    "(SELECT e.id FROM emp AS e WHERE e.dept = d.dno)",
    "SELECT e.name FROM emp AS e UNION SELECT d.dname FROM dept AS d",
    "SELECT e.name FROM emp AS e UNION ALL SELECT d.dname FROM dept AS d",
    "SELECT e.id AS k, e.name AS n FROM emp AS e ORDER BY k DESC LIMIT 3",
    "WITH t AS (SELECT e.id AS i, e.dept AS dd FROM emp AS e WHERE e.id > 1) "
    "SELECT t.i FROM t WHERE t.dd = 10",
]


class TestCrossValidation:
    @pytest.mark.parametrize("sql", CROSS_VALIDATION_QUERIES)
    def test_sqlite_matches_reference(self, sql, db):
        query = parse_sql(sql)
        reference = evaluate_query(query, db)
        rendered = run_query(query, db)
        assert tables_equivalent(reference, rendered), (
            f"divergence for {sql}\nreference:\n{reference}\nsqlite:\n{rendered}"
        )


class TestBackendBasics:
    def test_raw_text_execution(self, db):
        result = run_sql_text("SELECT COUNT(*) AS c FROM emp", db)
        assert result.rows == [(4,)]

    def test_nulls_roundtrip(self, db):
        result = run_sql_text("SELECT dept FROM emp WHERE id = 3", db)
        assert result.rows == [(NULL,)]

    def test_indexes_create(self, db):
        backend = SqliteDatabase.from_database(db)
        backend.create_indexes()  # no PK constraints declared: no-op
        backend.close()

    def test_context_manager(self, db):
        with SqliteDatabase.from_database(db) as backend:
            assert backend.execute("SELECT 1 AS one").rows == [(1,)]


class TestTranspiledRendering:
    def test_transpiled_query_renders_and_runs(
        self, emp_dept_schema, emp_dept_sdt, emp_dept_graph
    ):
        from repro.core.transpile import transpile
        from repro.cypher.parser import parse_cypher
        from repro.cypher.semantics import evaluate_query as evaluate_cypher
        from repro.transformer.semantics import transform_graph

        for text in [
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)",
            "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
            "RETURN n.name, m.dname",
            "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
            "RETURN n.name",
        ]:
            query = parse_cypher(text, emp_dept_schema)
            translated = transpile(query, emp_dept_schema, emp_dept_sdt)
            induced = transform_graph(
                emp_dept_sdt.transformer, emp_dept_graph, emp_dept_sdt.schema
            )
            expected = evaluate_cypher(query, emp_dept_graph)
            text_sql = to_sql_text(translated, emp_dept_sdt.schema)
            actual = run_sql_text(text_sql, induced)
            assert tables_equivalent(expected, actual), text


class TestDeprecation:
    """The legacy shim warns, once per entry point, toward the registry."""

    def test_constructor_warns(self, db):
        with pytest.warns(DeprecationWarning, match="repro.backends"):
            with SqliteDatabase.from_database(db):
                pass

    def test_helpers_warn(self, db):
        with pytest.warns(DeprecationWarning, match="run_sql_text"):
            run_sql_text("SELECT COUNT(*) AS c FROM emp", db)
        with pytest.warns(DeprecationWarning, match="run_query"):
            run_query(parse_sql("SELECT emp.name FROM emp"), db)
