"""Mock data generation for the Table-4 substrate."""

import pytest

from repro.benchmarks.universes import COMPANY
from repro.core.sdt import infer_sdt
from repro.execution.datagen import MockDataGenerator
from repro.transformer.residual import residual_transformer
from repro.transformer.semantics import transform_database


@pytest.fixture(scope="module")
def sdt():
    return infer_sdt(COMPANY.graph_schema)


class TestInducedInstance:
    def test_row_counts(self, sdt):
        generator = MockDataGenerator(COMPANY.graph_schema, sdt, seed=1)
        instance = generator.induced_instance(50)
        for table in instance.tables.values():
            assert len(table) == 50

    def test_constraints_hold(self, sdt):
        generator = MockDataGenerator(COMPANY.graph_schema, sdt, seed=2)
        instance = generator.induced_instance(40)
        assert instance.constraint_violation() is None

    def test_deterministic(self, sdt):
        first = MockDataGenerator(COMPANY.graph_schema, sdt, seed=3).induced_instance(20)
        second = MockDataGenerator(COMPANY.graph_schema, sdt, seed=3).induced_instance(20)
        for name in first.tables:
            assert first.table(name).rows == second.table(name).rows

    def test_name_attributes_are_strings(self, sdt):
        generator = MockDataGenerator(COMPANY.graph_schema, sdt, seed=4)
        instance = generator.induced_instance(10)
        emp = instance.table(sdt.table_for("EMP"))
        assert all(isinstance(v, str) for v in emp.column("ename"))


class TestPairedInstances:
    def test_pair_related_by_residual(self, sdt):
        generator = MockDataGenerator(COMPANY.graph_schema, sdt, seed=5)
        residual = residual_transformer(COMPANY.transformer, sdt.transformer)
        induced, target = generator.paired_instances(
            25, residual, COMPANY.relational_schema
        )
        rederived = transform_database(residual, induced, COMPANY.relational_schema)
        for name in target.tables:
            assert sorted(target.table(name).rows) == sorted(
                rederived.table(name).rows
            )

    def test_queries_agree_on_pair(self, sdt):
        """The transpiled and manual queries agree on generated data —
        the precondition for Table 4's timing comparison to be meaningful."""
        from repro.core.transpile import transpile
        from repro.relational.instance import tables_equivalent
        from repro.sql.parser import parse_sql
        from repro.sql.semantics import evaluate_query
        from repro.cypher.parser import parse_cypher

        generator = MockDataGenerator(COMPANY.graph_schema, sdt, seed=6)
        residual = residual_transformer(COMPANY.transformer, sdt.transformer)
        induced, target = generator.paired_instances(
            30, residual, COMPANY.relational_schema
        )
        cypher = parse_cypher(
            "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.ename, m.dname",
            COMPANY.graph_schema,
        )
        sql = parse_sql(
            "SELECT e.emp_name, d.dept_name FROM emp AS e, works AS w, dept AS d "
            "WHERE w.w_emp = e.emp_id AND w.w_dept = d.dept_no"
        )
        translated = transpile(cypher, COMPANY.graph_schema, sdt)
        assert tables_equivalent(
            evaluate_query(translated, induced), evaluate_query(sql, target)
        )
