#!/usr/bin/env python3
"""The paper's motivating example, end to end (Section 2, Figures 2-5).

A biomedical SemMedDB-style database exists both as a property graph
(CONCEPT -CS-> PA -SP-> SENTENCE) and as five relational tables.  A
published translation pairs a Cypher query with a SQL query that are
*claimed* equivalent; they are not — the Cypher WITH-pipeline double counts
paths.  This script:

1. builds the Figure-3 instances,
2. shows the diverging results (Count = 4 vs Count = 2, Figures 4b/4d),
3. runs the full pipeline and prints the auto-found graph counterexample,
4. checks the Appendix-C corrected query is (boundedly) equivalent.

Run:  python examples/biomedical_semmeddb.py
"""

from repro import BoundedChecker, check_equivalence, evaluate_cypher, evaluate_sql
from repro.benchmarks.curated import SEMMED, curated_benchmarks
from repro.graph.builder import GraphBuilder
from repro.transformer.semantics import transform_graph


def figure3_graph():
    builder = GraphBuilder(SEMMED.graph_schema)
    atropine = builder.add_node("CONCEPT", CID=1, NAME="Atropine")
    builder.add_node("CONCEPT", CID=2, NAME="Aspirin")
    pa0 = builder.add_node("PA", PID=0, PACSID=0)
    pa1 = builder.add_node("PA", PID=1, PACSID=1)
    s0 = builder.add_node("SENTENCE", SID=0, PMID=0)
    builder.add_node("SENTENCE", SID=1, PMID=0)
    builder.add_edge("CS", atropine, pa0, CSID=0)
    builder.add_edge("CS", atropine, pa1, CSID=1)
    builder.add_edge("SP", pa0, s0, SPID=0)
    builder.add_edge("SP", pa1, s0, SPID=1)
    return builder.build()


def main() -> None:
    benchmarks = {b.id: b for b in curated_benchmarks()}
    buggy = benchmarks["academic/motivating"]
    fixed = benchmarks["academic/motivating-fixed"]

    graph = figure3_graph()
    target = transform_graph(buggy.transformer, graph, buggy.relational_schema)

    print("Cypher query (the published translation):")
    print(buggy.cypher_text)
    print("\nSQL query:")
    print(buggy.sql_text)

    cypher_result = evaluate_cypher(buggy.cypher_query, graph)
    sql_result = evaluate_sql(buggy.sql_query, target)
    print("\nCypher result on the Figure-3 graph (paper Figure 4d):")
    print(cypher_result)
    print("\nSQL result on the Figure-3 tables (paper Figure 4b):")
    print(sql_result)

    print("\nRunning Graphiti's pipeline (bounded backend)...")
    checker = BoundedChecker(max_bound=3, samples_per_bound=250, seed=3)
    result = check_equivalence(
        buggy.graph_schema,
        buggy.cypher_query,
        buggy.relational_schema,
        buggy.sql_query,
        buggy.transformer,
        checker,
    )
    print(f"verdict: {result.verdict.value}")
    if result.counterexample is not None:
        print(result.counterexample.describe())

    print("\nChecking the Appendix-C corrected query (EXISTS instead of WITH)...")
    result_fixed = check_equivalence(
        fixed.graph_schema,
        fixed.cypher_query,
        fixed.relational_schema,
        fixed.sql_query,
        fixed.transformer,
        checker,
    )
    print(
        f"verdict: {result_fixed.verdict.value} "
        f"(bound {result_fixed.outcome.checked_bound}, "
        f"{result_fixed.outcome.instances_checked} instances)"
    )


if __name__ == "__main__":
    main()
