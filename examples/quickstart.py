#!/usr/bin/env python3
"""Quickstart: check a Cypher/SQL pair for equivalence in ~40 lines.

Scenario: the Figure-14 EMP/DEPT graph schema, a target relational schema
that folds the WORK_AT edge into an ``emp.deptno`` column, and two queries
that are supposed to agree.  We run both backends: the deductive verifier
proves the correct pair equivalent; the bounded checker refutes a buggy
variant with a concrete counterexample.

Run:  python examples/quickstart.py
"""

from repro import (
    BoundedChecker,
    DeductiveChecker,
    EdgeType,
    GraphSchema,
    NodeType,
    Relation,
    RelationalSchema,
    check_equivalence,
    parse_cypher,
    parse_sql,
    parse_transformer,
)

# 1. The graph schema (paper Figure 14a).
graph_schema = GraphSchema.of(
    [NodeType("EMP", ("id", "name")), NodeType("DEPT", ("dnum", "dname"))],
    [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
)

# 2. The target relational schema: the edge is merged into emp.deptno.
relational_schema = RelationalSchema.of(
    [Relation("emp", ("eid", "ename", "deptno")), Relation("dept", ("dno", "dname"))]
)

# 3. The database transformer Φ relating the two models (Section 4.1 DSL).
transformer = parse_transformer(
    """
    EMP(id, name), WORK_AT(wid, id, dnum) -> emp(wid, name, dnum)
    DEPT(dnum, dname) -> dept(dnum, dname)
    """
)

# 4. The query pair.
cypher = parse_cypher(
    "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
    graph_schema,
)
sql = parse_sql(
    "SELECT e.ename, d.dname FROM emp AS e JOIN dept AS d ON e.deptno = d.dno"
)


def main() -> None:
    # Full (unbounded) verification via the deductive backend.
    verdict = check_equivalence(
        graph_schema, cypher, relational_schema, sql, transformer, DeductiveChecker()
    )
    print(f"deductive backend:  {verdict.verdict.value}   "
          f"({verdict.outcome.detail})")

    # The transpiled SQL over the induced schema (Figure 7 style).
    from repro import infer_sdt, to_sql_text, transpile

    sdt = infer_sdt(graph_schema)
    translated = transpile(cypher, graph_schema, sdt)
    print("\ntranspiled SQL over the induced schema:")
    print(" ", to_sql_text(translated, sdt.schema)[:120], "...")

    # Now a buggy SQL "translation" — filters on the wrong department.
    buggy_sql = parse_sql(
        "SELECT e.ename, d.dname FROM emp AS e JOIN dept AS d "
        "ON e.deptno = d.dno WHERE d.dno <> 1"
    )
    refutation = check_equivalence(
        graph_schema, cypher, relational_schema, buggy_sql, transformer,
        BoundedChecker(max_bound=3, samples_per_bound=200),
    )
    print(f"\nbounded backend on the buggy pair:  {refutation.verdict.value}")
    if refutation.counterexample is not None:
        print(refutation.counterexample.describe())

    traversal_demo()


def traversal_demo() -> None:
    """Path queries: friend-of-friend reachability on a tiny social graph.

    Variable-length patterns ``-[:KNOWS*lo..hi]->`` transpile to recursive
    CTEs (``WITH RECURSIVE``) — or, at opt level 2 with a small bound, to an
    unrolled UNION of k-hop joins — and execute on any registered backend.
    """
    from repro.backends import GraphitiService
    from repro.graph.builder import GraphBuilder

    social = GraphSchema.of(
        [NodeType("PERSON", ("pid", "pname"))],
        [EdgeType("KNOWS", "PERSON", "PERSON", ("kid",))],
    )
    builder = GraphBuilder(social)
    people = {
        name: builder.add_node("PERSON", pid=i, pname=name)
        for i, name in enumerate(["Ada", "Bo", "Cy", "Dee", "Eli"], start=1)
    }
    friendships = [
        ("Ada", "Bo"), ("Bo", "Cy"), ("Cy", "Dee"), ("Dee", "Bo"), ("Cy", "Eli"),
    ]
    for kid, (source, target) in enumerate(friendships, start=1):
        builder.add_edge("KNOWS", people[source], people[target], kid=kid)

    with GraphitiService(social) as service:
        service.load_graph(builder.build())
        fof = (
            "MATCH (a:PERSON)-[:KNOWS*2..3]->(b:PERSON) "
            "RETURN a.pname, b.pname ORDER BY a.pname, b.pname"
        )
        print("\nfriend-of-friend reachability (2..3 hops), per backend:")
        print("  " + service.transpile_to_sql(fof)[:100] + " ...")
        for backend in service.backends():
            table = service.run(fof, backend=backend)
            pairs = ", ".join(f"{a}->{b}" for a, b in table.rows)
            print(f"  {backend:14} {pairs}")
        everyone = service.run(
            "MATCH (a:PERSON)-[:KNOWS*]->(b:PERSON) RETURN a.pname, Count(*)"
        )
        print("  reachable-peer counts (unbounded *):",
              ", ".join(f"{name}:{count}" for name, count in everyone.rows))


if __name__ == "__main__":
    main()
