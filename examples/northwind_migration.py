#!/usr/bin/env python3
"""Auditing a relational → graph migration (the Neo4j-tutorial bug).

Scenario: a team migrates a Northwind-style order database to a property
graph and rewrites its reports in Cypher following the official
"Cypher for SQL users" tutorial.  One rewrite — the per-product sales
volume for a customer — uses ``OPTIONAL MATCH`` over the whole purchase
path, which is *not* equivalent to the original LEFT-JOIN chain: an order
without order details silently adds rows on the SQL side (paper
Appendix D, example 2).

This script refutes the pair, prints the witness, and then demonstrates
the correct-by-construction alternative: transpile the Cypher query with
Graphiti and execute both on SQLite-backed mock data.

Run:  python examples/northwind_migration.py
"""

from repro import BoundedChecker, check_equivalence, infer_sdt, to_sql_text, transpile
from repro.sql import to_cte_sql
from repro.benchmarks.curated import curated_benchmarks
from repro.execution.datagen import MockDataGenerator
from repro.execution.sqlite_backend import SqliteDatabase, time_query
from repro.transformer.residual import residual_transformer


def main() -> None:
    benchmark = next(
        b for b in curated_benchmarks() if b.id == "tutorial/neo4j-volume"
    )
    print("Cypher (from the tutorial):")
    print(benchmark.cypher_text)
    print("\nSQL (the original report):")
    print(benchmark.sql_text)

    print("\nChecking equivalence with the bounded backend...")
    result = check_equivalence(
        benchmark.graph_schema,
        benchmark.cypher_query,
        benchmark.relational_schema,
        benchmark.sql_query,
        benchmark.transformer,
        BoundedChecker(max_bound=3, samples_per_bound=300, seed=17),
    )
    print(f"verdict: {result.verdict.value}")
    if result.counterexample is not None:
        print(result.counterexample.describe())

    print("\n--- correct-by-construction transpilation instead ---")
    sdt = infer_sdt(benchmark.graph_schema)
    translated = transpile(benchmark.cypher_query, benchmark.graph_schema, sdt)
    sql_text = to_sql_text(translated, sdt.schema)
    print("transpiled SQL (paper Figure-7 CTE presentation):")
    print(to_cte_sql(translated, sdt.schema))

    residual = residual_transformer(benchmark.transformer, sdt.transformer)
    generator = MockDataGenerator(benchmark.graph_schema, sdt, seed=7)
    induced, target = generator.paired_instances(
        2000, residual, benchmark.relational_schema
    )
    with SqliteDatabase.from_database(induced) as backend:
        backend.create_indexes()
        transpiled_seconds = time_query(backend, sql_text)
    with SqliteDatabase.from_database(target) as backend:
        backend.create_indexes()
        manual_seconds = time_query(backend, benchmark.sql_text)
    print(
        f"\nSQLite execution at 2k rows/table: transpiled "
        f"{transpiled_seconds * 1000:.1f} ms vs manual {manual_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
