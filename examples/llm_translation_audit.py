#!/usr/bin/env python3
"""Auditing LLM-generated Cypher translations (the paper's GPT experiment).

The paper's headline use case: developers increasingly let an LLM translate
their SQL workloads to Cypher, and 13% of those translations carry semantic
bugs.  This script takes a slice of the GPT-Translate benchmark category,
runs every pair through the pipeline with the bounded backend, and prints a
triage report: which translations were refuted, with what witness, and
which survived bounded verification.

Run:  python examples/llm_translation_audit.py [count]
"""

import sys

from repro import BoundedChecker, check_equivalence
from repro.benchmarks import benchmarks_by_category
from repro.checkers.base import Verdict


def main(count: int = 30) -> None:
    gpt = benchmarks_by_category()["GPT-Translate"]
    # Interleave equivalent and buggy pairs so the report shows both.
    buggy = [b for b in gpt if not b.expected_equivalent][: count // 3]
    clean = [b for b in gpt if b.expected_equivalent][: count - len(buggy)]
    batch = sorted(buggy + clean, key=lambda b: b.id)

    checker = BoundedChecker(max_bound=3, samples_per_bound=200, seed=9)
    refuted = []
    passed = []
    for benchmark in batch:
        result = check_equivalence(
            benchmark.graph_schema,
            benchmark.cypher_query,
            benchmark.relational_schema,
            benchmark.sql_query,
            benchmark.transformer,
            checker,
        )
        if result.verdict is Verdict.NOT_EQUIVALENT:
            refuted.append((benchmark, result))
        else:
            passed.append((benchmark, result))

    print(f"audited {len(batch)} LLM translations: "
          f"{len(refuted)} refuted, {len(passed)} bounded-verified\n")
    for benchmark, result in refuted:
        print(f"✗ {benchmark.id}  [{benchmark.bug_class}]")
        cex = result.counterexample
        if cex is not None:
            print(f"    witness: {len(cex.graph.nodes)} nodes / "
                  f"{len(cex.graph.edges)} edges; Cypher rows "
                  f"{len(cex.cypher_result)} vs SQL rows {len(cex.sql_result)}")
    print()
    for benchmark, result in passed[:10]:
        print(f"✓ {benchmark.id}  (no counterexample up to bound "
              f"{result.outcome.checked_bound})")
    if len(passed) > 10:
        print(f"  ... and {len(passed) - 10} more verified pairs")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
