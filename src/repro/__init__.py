"""Graphiti reproduction — equivalence checking between Cypher and SQL
queries modulo database transformers (He, Fang, Dillig, Wang; PLDI 2025).

Public API quick tour::

    from repro import (
        GraphSchema, NodeType, EdgeType,          # graph schemas
        RelationalSchema, Relation,               # relational schemas
        parse_cypher, parse_sql, parse_transformer,
        infer_sdt, transpile, check_equivalence,
        BoundedChecker, DeductiveChecker,
    )

    sdt = infer_sdt(graph_schema)                 # Ψ'_R and Φ_sdt (Fig. 13)
    sql_ast = transpile(cypher_ast, graph_schema, sdt)   # Figs. 16-18
    result = check_equivalence(                   # Algorithm 1
        graph_schema, cypher_ast,
        relational_schema, sql_ast_user,
        transformer, BoundedChecker(),
    )
"""

from repro.checkers import BoundedChecker, DeductiveChecker, RandomTester, Verdict
from repro.core import check_equivalence, infer_sdt, transpile
from repro.core.counterexample import Counterexample, lift_counterexample
from repro.core.equivalence import CheckResult
from repro.core.sdt import SdtResult
from repro.cypher import parse_cypher
from repro.cypher import evaluate_query as evaluate_cypher
from repro.graph import EdgeType, GraphBuilder, GraphSchema, NodeType, PropertyGraph
from repro.relational import (
    Database,
    Relation,
    RelationalSchema,
    Table,
    tables_equivalent,
)
from repro.sql import evaluate_query as evaluate_sql
from repro.sql import parse_sql, to_sql_text
from repro.transformer import (
    Transformer,
    parse_transformer,
    residual_transformer,
)
from repro.transformer.semantics import transform_graph
from repro.backends import (
    BackendUnavailable,
    ExecutionBackend,
    GraphitiService,
    available_backends,
    create_backend,
    load_backend,
    register_backend,
)
from repro.sql.dialect import SqlDialect, dialect_for

__version__ = "1.1.0"

__all__ = [
    "BoundedChecker",
    "DeductiveChecker",
    "RandomTester",
    "Verdict",
    "check_equivalence",
    "infer_sdt",
    "transpile",
    "Counterexample",
    "lift_counterexample",
    "CheckResult",
    "SdtResult",
    "parse_cypher",
    "evaluate_cypher",
    "EdgeType",
    "GraphBuilder",
    "GraphSchema",
    "NodeType",
    "PropertyGraph",
    "Database",
    "Relation",
    "RelationalSchema",
    "Table",
    "tables_equivalent",
    "evaluate_sql",
    "parse_sql",
    "to_sql_text",
    "Transformer",
    "parse_transformer",
    "residual_transformer",
    "transform_graph",
    "BackendUnavailable",
    "ExecutionBackend",
    "GraphitiService",
    "available_backends",
    "create_backend",
    "load_backend",
    "register_backend",
    "SqlDialect",
    "dialect_for",
]
