"""Residual database transformers (paper Algorithm 2).

Every clause of a standard database transformer (SDT) has the shape
``P1(t̄) → P0(t̄)`` with a single body atom.  ``ReduceToSQL`` builds the
substitution ``σ = {P1 ↦ P0}`` from the SDT and applies it to the
user-provided transformer ``Φ``, yielding ``Φ_rdt = Φ[σ]``: a transformer
from the *induced relational schema* to the target relational schema.

Lemma F.11 guarantees ``Φ_rdt(Φ_sdt(G)) = Φ(G)``, which the property tests
exercise on every benchmark.
"""

from __future__ import annotations

from repro.common.errors import TransformerError
from repro.transformer.dsl import Predicate, Rule, Transformer


def sdt_substitution(sdt: Transformer) -> dict[str, str]:
    """``σ = {P1 ↦ P0 | P1(...) → P0(...) ∈ Φ_sdt}``."""
    substitution: dict[str, str] = {}
    for rule in sdt:
        if len(rule.body) != 1:
            raise TransformerError(
                "standard database transformers have single-atom bodies; "
                f"found {rule}"
            )
        source = rule.body[0].name
        target = rule.head.name
        existing = substitution.get(source)
        if existing is not None and existing != target:
            raise TransformerError(
                f"SDT maps {source!r} to both {existing!r} and {target!r}"
            )
        substitution[source] = target
    return substitution


def residual_transformer(user_transformer: Transformer, sdt: Transformer) -> Transformer:
    """``Φ_rdt = Φ[σ]`` — rename every predicate occurrence through ``σ``."""
    substitution = sdt_substitution(sdt)
    rules = []
    for rule in user_transformer:
        body = tuple(_rename(atom, substitution) for atom in rule.body)
        head = _rename(rule.head, substitution)
        rules.append(Rule(body, head))
    return Transformer.of(rules)


def _rename(atom: Predicate, substitution: dict[str, str]) -> Predicate:
    new_name = substitution.get(atom.name, atom.name)
    if new_name == atom.name:
        return atom
    return Predicate(new_name, atom.terms)
