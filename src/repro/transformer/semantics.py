"""Applying database transformers and checking instance equivalence.

``apply_transformer`` computes ``Φ(D)``: for each rule, every substitution
that makes all body atoms hold in ``C(D)`` contributes one head fact.  Rules
are non-recursive (bodies read the source model, heads write the target
model), so a single pass suffices — no fixpoint needed.

``instances_equivalent`` decides ``D ∼Φ D'`` (Definition 4.3) by comparing
the derived fact set against ``C(D')`` relation by relation.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.common.errors import TransformerError
from repro.common.values import Value
from repro.graph.instance import PropertyGraph
from repro.relational.instance import Database
from repro.relational.schema import RelationalSchema
from repro.transformer.dsl import Constant, Predicate, Rule, Transformer, Variable, Wildcard
from repro.transformer.facts import Fact, facts_by_name, graph_facts, relational_facts

Substitution = dict[str, Value]


def apply_transformer(transformer: Transformer, source_facts: Iterable[Fact]) -> set[Fact]:
    """All head facts derivable from *source_facts* under *transformer*."""
    index = facts_by_name(source_facts)
    derived: set[Fact] = set()
    for rule in transformer:
        for substitution in _match_body(rule.body, index):
            derived.add(_instantiate_head(rule, substitution))
    return derived


def transform_graph(
    transformer: Transformer,
    graph: PropertyGraph,
    target_schema: RelationalSchema,
) -> Database:
    """``Φ(G)`` materialised as a relational database over *target_schema*.

    Derived facts whose name is not a relation of the target schema are
    rejected — the transformer must speak the target vocabulary.
    """
    derived = apply_transformer(transformer, graph_facts(graph))
    return _materialise(derived, target_schema)


def transform_database(
    transformer: Transformer,
    database: Database,
    target_schema: RelationalSchema,
) -> Database:
    """``Φ(D)`` for a relational source (used with residual transformers)."""
    derived = apply_transformer(transformer, relational_facts(database))
    return _materialise(derived, target_schema)


def instances_equivalent(
    transformer: Transformer,
    source_facts: set[Fact],
    target_facts: set[Fact],
    target_names: Iterable[str],
) -> bool:
    """``D ∼Φ D'``: the derived facts equal ``C(D')`` on every target relation."""
    derived = facts_by_name(apply_transformer(transformer, source_facts))
    actual = facts_by_name(target_facts)
    for name in target_names:
        if derived.get(name, set()) != actual.get(name, set()):
            return False
    return True


def graph_relational_equivalent(
    transformer: Transformer, graph: PropertyGraph, database: Database
) -> bool:
    """``G ∼Φ R`` (Definition 4.3) for a graph/relational pair."""
    return instances_equivalent(
        transformer,
        graph_facts(graph),
        relational_facts(database),
        [relation.name for relation in database.schema.relations],
    )


# ---------------------------------------------------------------------------
# Body matching
# ---------------------------------------------------------------------------


def _match_body(
    body: tuple[Predicate, ...],
    index: Mapping[str, set[tuple[Value, ...]]],
) -> list[Substitution]:
    """All substitutions under which every body atom is a known fact."""
    substitutions: list[Substitution] = [{}]
    for atom in body:
        candidates = index.get(atom.name, set())
        extended: list[Substitution] = []
        for substitution in substitutions:
            for args in candidates:
                unified = _unify(atom, args, substitution)
                if unified is not None:
                    extended.append(unified)
        substitutions = extended
        if not substitutions:
            break
    return substitutions


def _unify(
    atom: Predicate, args: tuple[Value, ...], substitution: Substitution
) -> Substitution | None:
    if len(atom.terms) != len(args):
        return None
    result = dict(substitution)
    for term, value in zip(atom.terms, args):
        if isinstance(term, Wildcard):
            continue
        if isinstance(term, Constant):
            if term.value != value:
                return None
            continue
        if isinstance(term, Variable):
            bound = result.get(term.name, _UNBOUND)
            if bound is _UNBOUND:
                result[term.name] = value
            elif bound != value:
                return None
    return result


class _UnboundSentinel:
    pass


_UNBOUND = _UnboundSentinel()


def _instantiate_head(rule: Rule, substitution: Substitution) -> Fact:
    args: list[Value] = []
    for term in rule.head.terms:
        if isinstance(term, Constant):
            args.append(term.value)
        elif isinstance(term, Variable):
            args.append(substitution[term.name])
        else:  # pragma: no cover - Rule.__post_init__ rejects head wildcards
            raise TransformerError("wildcard in rule head")
    return (rule.head.name, tuple(args))


def _materialise(derived: set[Fact], schema: RelationalSchema) -> Database:
    by_name = facts_by_name(derived)
    known = {relation.name for relation in schema.relations}
    stray = set(by_name) - known
    if stray:
        raise TransformerError(
            f"transformer derives facts for unknown relations {sorted(stray)}"
        )
    database = Database(schema)
    for relation in schema.relations:
        rows = by_name.get(relation.name, set())
        for row in rows:
            if len(row) != len(relation.attributes):
                raise TransformerError(
                    f"derived fact arity {len(row)} does not match relation "
                    f"{relation}"
                )
        for row in sorted(rows, key=_row_sort_key):
            database.insert(relation.name, row)
    return database


def _row_sort_key(row: tuple[Value, ...]) -> tuple:
    from repro.common.values import sort_key

    return tuple(sort_key(value) for value in row)
