"""The fact encoding ``C(D)`` of database instances (paper Section 4.1).

* A relational row ``(a1, ..., an)`` of table ``R`` becomes ``R(a1, ..., an)``.
* A node with label ``l`` and property values ``a1, ..., an`` (ordered by the
  node type's key list) becomes ``l(a1, ..., an)``.
* An edge with label ``l`` from node ``s`` to node ``t`` becomes
  ``l(a1, ..., an, s, t)`` where ``s``/``t`` are the *default-key values* of
  the endpoints — exactly the foreign-key values the induced schema stores.

Facts are plain ``(name, args)`` tuples, and ``C(D)`` is a set: transformer
semantics is set-based (Herbrand models), which is consistent with the
primary-key constraints every schema in the pipeline carries.
"""

from __future__ import annotations

from typing import Iterable

from repro.common.values import Value
from repro.graph.instance import PropertyGraph
from repro.relational.instance import Database

#: A ground predicate ``E(a1, ..., an)``.
Fact = tuple[str, tuple[Value, ...]]


def graph_facts(graph: PropertyGraph) -> set[Fact]:
    """``C(G)`` for a property graph instance."""
    facts: set[Fact] = set()
    for node in graph.nodes:
        node_type = graph.schema.node_type(node.label)
        args = tuple(node.value(key) for key in node_type.keys)
        facts.add((node.label, args))
    for edge in graph.edges:
        edge_type = graph.schema.edge_type(edge.label)
        source = graph.source_of(edge)
        target = graph.target_of(edge)
        source_key = graph.schema.node_type(source.label).default_key
        target_key = graph.schema.node_type(target.label).default_key
        args = tuple(edge.value(key) for key in edge_type.keys)
        args += (source.value(source_key), target.value(target_key))
        facts.add((edge.label, args))
    return facts


def relational_facts(database: Database) -> set[Fact]:
    """``C(R)`` for a relational instance."""
    facts: set[Fact] = set()
    for name, table in database.tables.items():
        for row in table:
            facts.add((name, tuple(row)))
    return facts


def facts_by_name(facts: Iterable[Fact]) -> dict[str, set[tuple[Value, ...]]]:
    """Index a fact set by predicate name."""
    index: dict[str, set[tuple[Value, ...]]] = {}
    for name, args in facts:
        index.setdefault(name, set()).add(args)
    return index
