"""Surface syntax for the transformer DSL.

Rules are written one per line (``;`` also separates), e.g.::

    CONCEPT(cid, name) -> Concept(cid, name)
    CONCEPT(cid, _), CS(cid, csid, cid, pid), PA(pid, csid) -> Cs(cid, csid)

Terms: ``_`` is a wildcard; quoted strings, numerals, ``true``/``false`` and
``null`` are constants; every other identifier is a variable.  Predicate
names are the identifier before ``(``.
"""

from __future__ import annotations

import re

from repro.common.errors import ParseError
from repro.common.values import NULL, Value
from repro.transformer.dsl import Constant, Predicate, Rule, Term, Transformer, Variable, Wildcard

_TOKEN = re.compile(
    r"\s*(?:"
    r"(?P<arrow>->|→)"
    r"|(?P<lparen>\()"
    r"|(?P<rparen>\))"
    r"|(?P<comma>,)"
    r"|(?P<string>'[^']*'|\"[^\"]*\")"
    r"|(?P<number>-?\d+(?:\.\d+)?)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_']*)"
    r")"
)


def parse_transformer(text: str) -> Transformer:
    """Parse a transformer from its surface syntax."""
    rules: list[Rule] = []
    for line_number, raw_line in enumerate(re.split(r"[\n;]", text), start=1):
        line = raw_line.strip()
        if not line or line.startswith("#") or line.startswith("--"):
            continue
        rules.append(_parse_rule(line, line_number))
    if not rules:
        raise ParseError("transformer has no rules")
    return Transformer.of(rules)


def _parse_rule(line: str, line_number: int) -> Rule:
    tokens = _tokenize(line, line_number)
    parser = _RuleParser(tokens, line_number)
    return parser.parse_rule()


def _tokenize(line: str, line_number: int) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(line):
        match = _TOKEN.match(line, position)
        if match is None or match.end() == position:
            remainder = line[position:].strip()
            if not remainder:
                break
            raise ParseError(
                f"cannot tokenize transformer rule near {remainder[:20]!r}",
                line=line_number,
                column=position + 1,
            )
        position = match.end()
        for kind in ("arrow", "lparen", "rparen", "comma", "string", "number", "name"):
            value = match.group(kind)
            if value is not None:
                tokens.append((kind, value))
                break
    return tokens


class _RuleParser:
    def __init__(self, tokens: list[tuple[str, str]], line_number: int) -> None:
        self.tokens = tokens
        self.position = 0
        self.line_number = line_number

    def parse_rule(self) -> Rule:
        body = [self._predicate()]
        while self._peek_kind() == "comma":
            self._advance()
            body.append(self._predicate())
        self._expect("arrow")
        head = self._predicate()
        if self.position != len(self.tokens):
            raise ParseError(
                "trailing tokens after rule head", line=self.line_number
            )
        return Rule(tuple(body), head)

    def _predicate(self) -> Predicate:
        kind, name = self._expect("name")
        self._expect("lparen")
        terms: list[Term] = []
        if self._peek_kind() != "rparen":
            terms.append(self._term())
            while self._peek_kind() == "comma":
                self._advance()
                terms.append(self._term())
        self._expect("rparen")
        return Predicate(name, tuple(terms))

    def _term(self) -> Term:
        kind = self._peek_kind()
        if kind == "string":
            _, text = self._advance()
            return Constant(text[1:-1])
        if kind == "number":
            _, text = self._advance()
            value: Value = float(text) if "." in text else int(text)
            return Constant(value)
        if kind == "name":
            _, text = self._advance()
            if text == "_":
                return Wildcard()
            lowered = text.lower()
            if lowered == "true":
                return Constant(True)
            if lowered == "false":
                return Constant(False)
            if lowered == "null":
                return Constant(NULL)
            return Variable(text)
        raise ParseError(
            f"expected a term, found {kind or 'end of rule'}", line=self.line_number
        )

    def _peek_kind(self) -> str | None:
        if self.position >= len(self.tokens):
            return None
        return self.tokens[self.position][0]

    def _advance(self) -> tuple[str, str]:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def _expect(self, kind: str) -> tuple[str, str]:
        if self._peek_kind() != kind:
            found = self._peek_kind() or "end of rule"
            raise ParseError(
                f"expected {kind}, found {found}", line=self.line_number
            )
        return self._advance()
