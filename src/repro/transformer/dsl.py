"""Abstract syntax of the database-transformer DSL (paper Figure 11).

    Transformer Φ ::= P, ..., P → P | Φ Φ
    Predicate   P ::= E(t, ..., t)
    Term        t ::= c | v | _

where ``E`` ranges over table names, node labels, and edge labels.  All
variables are implicitly universally quantified.  A wildcard ``_`` stands for
a fresh variable used nowhere else.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.common.errors import TransformerError
from repro.common.values import Value


@dataclass(frozen=True)
class Variable:
    """A universally quantified variable ``v``."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant term ``c``."""

    value: Value

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class Wildcard:
    """The anonymous term ``_``; each occurrence is a distinct fresh variable."""

    def __str__(self) -> str:
        return "_"


Term = typing.Union[Variable, Constant, Wildcard]


@dataclass(frozen=True)
class Predicate:
    """``E(t1, ..., tn)`` — an atom over a table name or a node/edge label."""

    name: str
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(t) for t in self.terms)})"

    def variables(self) -> set[str]:
        return {term.name for term in self.terms if isinstance(term, Variable)}


@dataclass(frozen=True)
class Rule:
    """``P1, ..., Pn → P0`` — if the body holds over the source instance, the
    head holds over the target instance."""

    body: tuple[Predicate, ...]
    head: Predicate

    def __post_init__(self) -> None:
        if not self.body:
            raise TransformerError("transformer rule needs a non-empty body")
        body_variables: set[str] = set()
        for atom in self.body:
            body_variables |= atom.variables()
        unsafe = self.head.variables() - body_variables
        if unsafe:
            raise TransformerError(
                f"unsafe rule: head variables {sorted(unsafe)} not bound in body"
            )
        for term in self.head.terms:
            if isinstance(term, Wildcard):
                raise TransformerError("wildcards are not allowed in rule heads")

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        return f"{body} -> {self.head}"


@dataclass(frozen=True)
class Transformer:
    """A database transformer: a finite set of rules (order-insensitive)."""

    rules: tuple[Rule, ...]

    @classmethod
    def of(cls, rules: typing.Iterable[Rule]) -> "Transformer":
        return cls(tuple(rules))

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> typing.Iterator[Rule]:
        return iter(self.rules)

    def head_names(self) -> set[str]:
        """Names of relations this transformer can populate."""
        return {rule.head.name for rule in self.rules}

    def body_names(self) -> set[str]:
        """Names of source predicates this transformer reads."""
        return {atom.name for rule in self.rules for atom in rule.body}

    def merge(self, other: "Transformer") -> "Transformer":
        """``Φ1 Φ2`` — juxtaposition is union of rule sets."""
        return Transformer(self.rules + other.rules)

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)
