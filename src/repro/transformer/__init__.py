"""Database transformers (paper Section 4.1).

A transformer is a set of rules ``P1, ..., Pn -> P0`` over predicates whose
names are table names, node labels, or edge labels.  Its semantics is defined
over the *fact encoding* ``C(D)`` of database instances: ``Φ(D) = D'`` iff
``C(D) ∪ C(D')`` is a Herbrand model of ``⟦Φ⟧``.
"""

from repro.transformer.dsl import Constant, Predicate, Rule, Transformer, Variable, Wildcard
from repro.transformer.facts import Fact, graph_facts, relational_facts
from repro.transformer.semantics import apply_transformer, instances_equivalent
from repro.transformer.parser import parse_transformer
from repro.transformer.residual import residual_transformer

__all__ = [
    "Constant",
    "Predicate",
    "Rule",
    "Transformer",
    "Variable",
    "Wildcard",
    "Fact",
    "graph_facts",
    "relational_facts",
    "apply_transformer",
    "instances_equivalent",
    "parse_transformer",
    "residual_transformer",
]
