"""Graph database schemas (paper Definitions 3.1 and 3.2).

A *node type* is a label plus an ordered list of property keys, the first of
which is the *default property key* — a globally unique identifier playing
the role of a relational primary key.  An *edge type* additionally names the
node types of its source and target endpoints.

The paper assumes that labels uniquely identify types within a schema and
that property-key names do not clash across types; :class:`GraphSchema`
enforces both at construction time so downstream passes (SDT inference,
transpilation) can use labels and keys as unambiguous names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import SchemaError


@dataclass(frozen=True)
class NodeType:
    """A node type ``(label, K1, ..., Kn)`` (Definition 3.1).

    ``keys[0]`` is the default property key, globally unique per node.
    """

    label: str
    keys: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.label:
            raise SchemaError("node type needs a non-empty label")
        if not self.keys:
            raise SchemaError(f"node type {self.label!r} needs at least one property key")
        if len(set(self.keys)) != len(self.keys):
            raise SchemaError(f"node type {self.label!r} has duplicate property keys")

    @property
    def default_key(self) -> str:
        """The default property key ``K1`` — the node's identity key."""
        return self.keys[0]

    def __str__(self) -> str:
        return f"{self.label}({', '.join(self.keys)})"


@dataclass(frozen=True)
class EdgeType:
    """An edge type ``(label, t_src, t_tgt, K1, ..., Km)`` (Definition 3.1).

    Endpoints are referenced by node-type *label*; the owning
    :class:`GraphSchema` resolves and validates them.
    """

    label: str
    source: str
    target: str
    keys: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.label:
            raise SchemaError("edge type needs a non-empty label")
        if not self.keys:
            raise SchemaError(f"edge type {self.label!r} needs at least one property key")
        if len(set(self.keys)) != len(self.keys):
            raise SchemaError(f"edge type {self.label!r} has duplicate property keys")

    @property
    def default_key(self) -> str:
        """The default property key ``K1`` — the edge's identity key."""
        return self.keys[0]

    def __str__(self) -> str:
        keys = ", ".join(self.keys)
        return f"{self.label}({keys}): {self.source} -> {self.target}"


@dataclass(frozen=True)
class GraphSchema:
    """A graph database schema ``(T_N, T_E)`` (Definition 3.2)."""

    node_types: tuple[NodeType, ...]
    edge_types: tuple[EdgeType, ...] = field(default=())

    def __post_init__(self) -> None:
        labels = [t.label for t in self.node_types] + [t.label for t in self.edge_types]
        duplicates = {name for name in labels if labels.count(name) > 1}
        if duplicates:
            raise SchemaError(f"duplicate type labels in schema: {sorted(duplicates)}")
        node_labels = {t.label for t in self.node_types}
        for edge in self.edge_types:
            if edge.source not in node_labels:
                raise SchemaError(
                    f"edge type {edge.label!r} references unknown source node type {edge.source!r}"
                )
            if edge.target not in node_labels:
                raise SchemaError(
                    f"edge type {edge.label!r} references unknown target node type {edge.target!r}"
                )
        all_keys: list[str] = []
        for kind in (*self.node_types, *self.edge_types):
            all_keys.extend(kind.keys)
        clashing = {key for key in all_keys if all_keys.count(key) > 1}
        if clashing:
            raise SchemaError(
                "property keys must be unique across the schema; "
                f"clashing keys: {sorted(clashing)}"
            )

    @classmethod
    def of(
        cls,
        node_types: Iterable[NodeType],
        edge_types: Iterable[EdgeType] = (),
    ) -> "GraphSchema":
        """Build a schema from any iterables of types."""
        return cls(tuple(node_types), tuple(edge_types))

    # -- lookups -----------------------------------------------------------

    def node_type(self, label: str) -> NodeType:
        """Resolve a node label; raises :class:`SchemaError` if unknown."""
        for node in self.node_types:
            if node.label == label:
                return node
        raise SchemaError(f"unknown node type {label!r}")

    def edge_type(self, label: str) -> EdgeType:
        """Resolve an edge label; raises :class:`SchemaError` if unknown."""
        for edge in self.edge_types:
            if edge.label == label:
                return edge
        raise SchemaError(f"unknown edge type {label!r}")

    def type_of(self, label: str) -> NodeType | EdgeType:
        """Resolve a label of either kind."""
        for kind in (*self.node_types, *self.edge_types):
            if kind.label == label:
                return kind
        raise SchemaError(f"unknown type label {label!r}")

    def has_node_type(self, label: str) -> bool:
        return any(node.label == label for node in self.node_types)

    def has_edge_type(self, label: str) -> bool:
        return any(edge.label == label for edge in self.edge_types)

    def owner_of_key(self, key: str) -> NodeType | EdgeType:
        """Find the unique type that declares property key *key*."""
        for kind in (*self.node_types, *self.edge_types):
            if key in kind.keys:
                return kind
        raise SchemaError(f"no type declares property key {key!r}")

    def edges_between(self, source_label: str, target_label: str) -> Iterator[EdgeType]:
        """All edge types running from *source_label* to *target_label*."""
        for edge in self.edge_types:
            if edge.source == source_label and edge.target == target_label:
                yield edge

    def __str__(self) -> str:
        lines = ["graph schema:"]
        lines.extend(f"  node {node}" for node in self.node_types)
        lines.extend(f"  edge {edge}" for edge in self.edge_types)
        return "\n".join(lines)
