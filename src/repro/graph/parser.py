"""Textual surface syntax for graph schemas.

The CLI and examples describe graph schemas in a small declaration
language::

    node EMP(id, name)
    node DEPT(dnum, dname)
    edge WORK_AT(wid): EMP -> DEPT

One declaration per line; ``#`` and ``--`` start comments.  The first
property key of each declaration is the default (identity) key, as in
Definition 3.1.
"""

from __future__ import annotations

import re

from repro.common.errors import ParseError
from repro.graph.schema import EdgeType, GraphSchema, NodeType

_NODE = re.compile(r"^node\s+(\w+)\s*\(([^)]*)\)\s*$", re.IGNORECASE)
_EDGE = re.compile(
    r"^edge\s+(\w+)\s*\(([^)]*)\)\s*:\s*(\w+)\s*->\s*(\w+)\s*$", re.IGNORECASE
)


def parse_graph_schema(text: str) -> GraphSchema:
    """Parse a graph schema from its declaration syntax."""
    nodes: list[NodeType] = []
    edges: list[EdgeType] = []
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#")[0].split("--")[0].strip()
        if not line:
            continue
        node_match = _NODE.match(line)
        if node_match:
            label, keys = node_match.groups()
            nodes.append(NodeType(label, _split_keys(keys, line_number)))
            continue
        edge_match = _EDGE.match(line)
        if edge_match:
            label, keys, source, target = edge_match.groups()
            edges.append(
                EdgeType(label, source, target, _split_keys(keys, line_number))
            )
            continue
        raise ParseError(
            f"cannot parse schema declaration {line!r}", line=line_number
        )
    if not nodes:
        raise ParseError("schema declares no node types")
    return GraphSchema.of(nodes, edges)


def _split_keys(keys: str, line_number: int) -> tuple[str, ...]:
    parts = tuple(part.strip() for part in keys.split(",") if part.strip())
    if not parts:
        raise ParseError("type needs at least one property key", line=line_number)
    return parts
