"""Property-graph data model (paper Section 3.1).

A graph database schema is a pair of node types and edge types
(Definition 3.2); an instance is a property graph whose nodes and edges carry
label-typed property maps (Definition 3.3).
"""

from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.graph.instance import Edge, Node, PropertyGraph
from repro.graph.builder import GraphBuilder

__all__ = [
    "EdgeType",
    "GraphSchema",
    "NodeType",
    "Edge",
    "Node",
    "PropertyGraph",
    "GraphBuilder",
]
