"""Property-graph instances (paper Definition 3.3).

An instance of a graph schema is a tuple ``G = (N, E, P, T)``: nodes, edges,
a property map, and a typing map.  Here nodes and edges are small records
carrying their own label and property dictionary, which realises ``P`` and
``T`` directly.

Identity: every node and edge has an internal ``uid`` so that two nodes with
identical properties remain distinct graph elements (property graphs are not
value-identified).  The *default property key* of each element is expected to
be globally unique per the paper's assumption; :meth:`PropertyGraph.validate`
enforces this.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import SchemaError
from repro.common.values import NULL, Value, is_null
from repro.graph.schema import EdgeType, GraphSchema, NodeType

_uid_counter = itertools.count(1)


def _fresh_uid() -> int:
    return next(_uid_counter)


@dataclass(frozen=True)
class Node:
    """A graph node: a label and a property-key valuation."""

    label: str
    properties: tuple[tuple[str, Value], ...]
    uid: int = field(default_factory=_fresh_uid, compare=True)

    @classmethod
    def of(cls, label: str, properties: dict[str, Value], uid: int | None = None) -> "Node":
        items = tuple(properties.items())
        if uid is None:
            return cls(label, items)
        return cls(label, items, uid)

    @property
    def property_map(self) -> dict[str, Value]:
        return dict(self.properties)

    def value(self, key: str) -> Value:
        """``P(n, k)``: the value of property *key*, NULL if absent."""
        for name, value in self.properties:
            if name == key:
                return value
        return NULL

    def __str__(self) -> str:
        props = ", ".join(f"{k}: {v!r}" for k, v in self.properties)
        return f"(:{self.label} {{{props}}})"


@dataclass(frozen=True)
class Edge:
    """A graph edge: label, endpoint node uids, and a property valuation."""

    label: str
    source_uid: int
    target_uid: int
    properties: tuple[tuple[str, Value], ...]
    uid: int = field(default_factory=_fresh_uid, compare=True)

    @classmethod
    def of(
        cls,
        label: str,
        source: Node,
        target: Node,
        properties: dict[str, Value],
        uid: int | None = None,
    ) -> "Edge":
        items = tuple(properties.items())
        if uid is None:
            return cls(label, source.uid, target.uid, items)
        return cls(label, source.uid, target.uid, items, uid)

    @property
    def property_map(self) -> dict[str, Value]:
        return dict(self.properties)

    def value(self, key: str) -> Value:
        """``P(e, k)``: the value of property *key*, NULL if absent."""
        for name, value in self.properties:
            if name == key:
                return value
        return NULL

    def __str__(self) -> str:
        props = ", ".join(f"{k}: {v!r}" for k, v in self.properties)
        return f"-[:{self.label} {{{props}}}]->"


class PropertyGraph:
    """An instance ``G = (N, E, P, T)`` of a :class:`GraphSchema`.

    The class is deliberately a thin, immutable-by-convention container:
    mutation happens through :class:`repro.graph.builder.GraphBuilder`, and
    the Cypher evaluator treats graphs as values.
    """

    def __init__(
        self,
        schema: GraphSchema,
        nodes: Iterable[Node] = (),
        edges: Iterable[Edge] = (),
    ) -> None:
        self.schema = schema
        self.nodes: tuple[Node, ...] = tuple(nodes)
        self.edges: tuple[Edge, ...] = tuple(edges)
        self._nodes_by_uid = {node.uid: node for node in self.nodes}

    # -- lookups -----------------------------------------------------------

    def node_by_uid(self, uid: int) -> Node:
        try:
            return self._nodes_by_uid[uid]
        except KeyError:
            raise SchemaError(f"graph has no node with uid {uid}") from None

    def nodes_with_label(self, label: str) -> Iterator[Node]:
        """All nodes whose type label is *label*."""
        for node in self.nodes:
            if node.label == label:
                yield node

    def edges_with_label(self, label: str) -> Iterator[Edge]:
        """All edges whose type label is *label*."""
        for edge in self.edges:
            if edge.label == label:
                yield edge

    def source_of(self, edge: Edge) -> Node:
        return self.node_by_uid(edge.source_uid)

    def target_of(self, edge: Edge) -> Node:
        return self.node_by_uid(edge.target_uid)

    def type_of(self, element: Node | Edge) -> NodeType | EdgeType:
        """``T(n)`` / ``T(e)``: the schema type of a graph element."""
        if isinstance(element, Node):
            return self.schema.node_type(element.label)
        return self.schema.edge_type(element.label)

    # -- validation --------------------------------------------------------

    def validate(self) -> None:
        """Check ``G ⊲ Ψ_G``: labels known, endpoints typed, identities unique.

        Raises :class:`SchemaError` on the first violation found.
        """
        seen_defaults: dict[str, set[Value]] = {}
        for node in self.nodes:
            node_type = self.schema.node_type(node.label)
            self._check_keys(node, node_type)
            self._check_default_unique(node, node_type, seen_defaults)
        for edge in self.edges:
            edge_type = self.schema.edge_type(edge.label)
            self._check_keys(edge, edge_type)
            self._check_default_unique(edge, edge_type, seen_defaults)
            source = self.node_by_uid(edge.source_uid)
            target = self.node_by_uid(edge.target_uid)
            if source.label != edge_type.source:
                raise SchemaError(
                    f"edge {edge.label!r} source has label {source.label!r}, "
                    f"expected {edge_type.source!r}"
                )
            if target.label != edge_type.target:
                raise SchemaError(
                    f"edge {edge.label!r} target has label {target.label!r}, "
                    f"expected {edge_type.target!r}"
                )

    @staticmethod
    def _check_keys(element: Node | Edge, kind: NodeType | EdgeType) -> None:
        declared = set(kind.keys)
        for key, _ in element.properties:
            if key not in declared:
                raise SchemaError(
                    f"{kind.label!r} element carries undeclared property key {key!r}"
                )

    @staticmethod
    def _check_default_unique(
        element: Node | Edge,
        kind: NodeType | EdgeType,
        seen: dict[str, set[Value]],
    ) -> None:
        value = element.value(kind.default_key)
        if is_null(value):
            raise SchemaError(
                f"{kind.label!r} element has NULL default property key {kind.default_key!r}"
            )
        bucket = seen.setdefault(kind.label, set())
        if value in bucket:
            raise SchemaError(
                f"duplicate default-key value {value!r} for type {kind.label!r}"
            )
        bucket.add(value)

    # -- conveniences ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes) + len(self.edges)

    def __str__(self) -> str:
        lines = [f"graph over {len(self.nodes)} nodes, {len(self.edges)} edges:"]
        for node in self.nodes:
            lines.append(f"  {node}")
        for edge in self.edges:
            source = self.node_by_uid(edge.source_uid)
            target = self.node_by_uid(edge.target_uid)
            lines.append(f"  {source} {edge} {target}")
        return "\n".join(lines)
