"""Fluent construction of property-graph instances.

:class:`GraphBuilder` is the mutation-friendly front door to
:class:`~repro.graph.instance.PropertyGraph`: tests, examples, and the
counterexample lifter all assemble graphs through it and then call
:meth:`GraphBuilder.build` to obtain a validated, effectively immutable
instance.
"""

from __future__ import annotations

from repro.common.errors import SchemaError
from repro.common.values import Value
from repro.graph.instance import Edge, Node, PropertyGraph
from repro.graph.schema import GraphSchema


class GraphBuilder:
    """Accumulates nodes and edges, then validates into a property graph.

    Example::

        builder = GraphBuilder(schema)
        alice = builder.add_node("EMP", id=1, name="A")
        dept = builder.add_node("DEPT", dnum=1, dname="CS")
        builder.add_edge("WORK_AT", alice, dept, wid=10)
        graph = builder.build()
    """

    def __init__(self, schema: GraphSchema) -> None:
        self.schema = schema
        self._nodes: list[Node] = []
        self._edges: list[Edge] = []

    def add_node(self, label: str, **properties: Value) -> Node:
        """Create a node of type *label* with the given property values.

        Property keys must all be declared by the node type; the default
        property key must be present.
        """
        node_type = self.schema.node_type(label)
        self._require_keys(label, node_type.keys, properties)
        ordered = {key: properties[key] for key in node_type.keys if key in properties}
        node = Node.of(label, ordered)
        self._nodes.append(node)
        return node

    def add_edge(self, label: str, source: Node, target: Node, **properties: Value) -> Edge:
        """Create an edge of type *label* between two previously added nodes."""
        edge_type = self.schema.edge_type(label)
        self._require_keys(label, edge_type.keys, properties)
        if source not in self._nodes:
            raise SchemaError("edge source must be added to the builder first")
        if target not in self._nodes:
            raise SchemaError("edge target must be added to the builder first")
        ordered = {key: properties[key] for key in edge_type.keys if key in properties}
        edge = Edge.of(label, source, target, ordered)
        self._edges.append(edge)
        return edge

    def build(self, validate: bool = True) -> PropertyGraph:
        """Freeze the accumulated elements into a :class:`PropertyGraph`."""
        graph = PropertyGraph(self.schema, self._nodes, self._edges)
        if validate:
            graph.validate()
        return graph

    @staticmethod
    def _require_keys(label: str, declared: tuple[str, ...], given: dict[str, Value]) -> None:
        unknown = set(given) - set(declared)
        if unknown:
            raise SchemaError(f"{label!r} does not declare property keys {sorted(unknown)}")
        default = declared[0]
        if default not in given:
            raise SchemaError(f"{label!r} element must set its default key {default!r}")
