"""Baseline transpilers the paper compares against (Appendix E)."""

from repro.baselines.opencypher_transpiler import (
    BaselineResult,
    BaselineStatus,
    transpile_baseline,
)

__all__ = ["BaselineResult", "BaselineStatus", "transpile_baseline"]
