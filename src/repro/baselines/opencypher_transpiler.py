"""A behavioural re-implementation of Microsoft's OpenCypherTranspiler.

The paper's Appendix E evaluates OpenCypherTranspiler [Liang 2025] on all
410 benchmarks and finds: 284 queries outside its supported fragment, 2
translated into syntactically invalid SQL, 2 translated into semantically
incorrect SQL, and 122 translated correctly.  The original tool is a C#
code base; this module reproduces its *behaviour profile* — the documented
fragment limits and the two bug classes the appendix demonstrates — on top
of this library's ASTs, so Table 5 can be regenerated.

Fragment limits (each check mirrors a limitation reported in Appendix E or
the upstream README):

* no ``Count(*)`` / ``Avg(*)``-style argument-less aggregates (App. E ex. 1),
* no ``WITH`` pipelines, no ``UNION``, no ``ORDER BY``,
* no chained ``MATCH`` clauses (a single pattern chain only),
* no ``EXISTS`` subpattern predicates,
* no undirected edge patterns.

Bug classes:

* ``IS NULL`` / ``IN``-style predicates over multiple disconnected patterns
  produce SQL that references an undefined table alias — a *syntax error*
  (App. E ex. 2);
* ``OPTIONAL MATCH`` whose pattern *points into* the previously bound
  variable is translated with the outer-join sides swapped — a left join
  where a right join is required — producing *semantically incorrect* SQL
  (App. E ex. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.common.errors import GraphitiError
from repro.core.sdt import SdtResult
from repro.core.transpile import Transpiler
from repro.cypher import ast as cy
from repro.graph.schema import GraphSchema
from repro.sql import ast as sq


class BaselineStatus(enum.Enum):
    OK = "ok"
    UNSUPPORTED = "unsupported"
    SYNTAX_ERROR = "syntax-error"


@dataclass
class BaselineResult:
    """Outcome of running the baseline on one Cypher query."""

    status: BaselineStatus
    reason: str = ""
    query: sq.Query | None = None
    #: True when the produced query is known to deviate semantically
    #: (the OPTIONAL MATCH orientation bug).
    semantically_suspect: bool = False

    @property
    def supported(self) -> bool:
        return self.status is not BaselineStatus.UNSUPPORTED


def transpile_baseline(
    query: cy.Query, graph_schema: GraphSchema, sdt: SdtResult
) -> BaselineResult:
    """Best-effort translation with OpenCypherTranspiler's limitations."""
    if isinstance(query, cy.Return) and _has_multi_pattern_null_or_in(query):
        # Bug class 1: the tool *accepts* comma-separated patterns but its
        # rendering references an undefined alias — checked before the
        # fragment gate because desugared comma patterns look like chained
        # MATCH clauses, which the gate would otherwise reject.
        return BaselineResult(
            BaselineStatus.SYNTAX_ERROR,
            "emits SQL referencing an undefined table alias",
        )
    gate = _fragment_gate(query)
    if gate is not None:
        return BaselineResult(BaselineStatus.UNSUPPORTED, gate)
    transpiler = _BuggyTranspiler(graph_schema, sdt)
    try:
        translated = transpiler.translate_query(query)
    except GraphitiError as error:
        return BaselineResult(BaselineStatus.UNSUPPORTED, str(error))
    return BaselineResult(
        BaselineStatus.OK,
        query=translated,
        semantically_suspect=transpiler.used_buggy_optional_match,
    )


# ---------------------------------------------------------------------------
# Fragment gate
# ---------------------------------------------------------------------------


def _fragment_gate(query: cy.Query) -> str | None:
    """Return a reason string when *query* is outside the fragment."""
    if isinstance(query, (cy.Union, cy.UnionAll)):
        return "UNION is not supported"
    if isinstance(query, cy.OrderBy):
        return "ORDER BY is not supported"
    assert isinstance(query, cy.Return)
    for expression in query.expressions:
        reason = _expression_gate(expression)
        if reason is not None:
            return reason
    return _clause_gate(query.clause, depth=0)


def _expression_gate(expression: cy.Expression) -> str | None:
    if isinstance(expression, cy.Aggregate):
        if expression.argument is None:
            return "argument-less aggregates such as Count(*) are not supported"
        return _expression_gate(expression.argument)
    if isinstance(expression, cy.BinaryOp):
        return _expression_gate(expression.left) or _expression_gate(expression.right)
    if isinstance(expression, cy.CastPredicate):
        return "predicate-to-value casts are not supported"
    return None


def _clause_gate(clause: cy.Clause, depth: int) -> str | None:
    if isinstance(clause, cy.With):
        return "WITH pipelines are not supported"
    if isinstance(clause, cy.OptMatch):
        reason = _predicate_gate(clause.predicate)
        if reason is not None:
            return reason
        if _pattern_gate(clause.pattern):
            return _pattern_gate(clause.pattern)
        return _clause_gate(clause.previous, depth)
    assert isinstance(clause, cy.Match)
    if clause.previous is not None and not isinstance(clause.previous, cy.OptMatch):
        inner = clause.previous
        if isinstance(inner, cy.Match):
            return "chained MATCH clauses are not supported"
        return _clause_gate(inner, depth + 1)
    reason = _predicate_gate(clause.predicate)
    if reason is not None:
        return reason
    if _pattern_gate(clause.pattern):
        return _pattern_gate(clause.pattern)
    if clause.previous is not None:
        return _clause_gate(clause.previous, depth + 1)
    return None


def _pattern_gate(pattern: cy.PathPattern) -> str | None:
    for element in pattern:
        if isinstance(element, cy.VarLengthEdgePattern):
            return "variable-length relationship patterns are not supported"
        if isinstance(element, cy.EdgePattern) and element.direction is cy.Direction.BOTH:
            return "undirected edge patterns are not supported"
    return None


def _predicate_gate(predicate: cy.Predicate) -> str | None:
    if isinstance(predicate, cy.Exists):
        return "EXISTS subpatterns are not supported"
    if isinstance(predicate, (cy.And, cy.Or)):
        return _predicate_gate(predicate.left) or _predicate_gate(predicate.right)
    if isinstance(predicate, cy.Not):
        return _predicate_gate(predicate.operand)
    return None


def _has_multi_pattern_null_or_in(query: cy.Query) -> bool:
    """App. E ex. 2: several comma patterns + NULL/IN tests break rendering."""
    assert isinstance(query, cy.Return)
    match_count = 0
    has_null_or_in = False

    def walk_predicate(predicate: cy.Predicate) -> None:
        nonlocal has_null_or_in
        if isinstance(predicate, (cy.IsNull, cy.InValues)):
            has_null_or_in = True
        elif isinstance(predicate, (cy.And, cy.Or)):
            walk_predicate(predicate.left)
            walk_predicate(predicate.right)
        elif isinstance(predicate, cy.Not):
            walk_predicate(predicate.operand)

    clause = query.clause
    while clause is not None:
        if isinstance(clause, cy.Match):
            match_count += 1
            walk_predicate(clause.predicate)
            clause = clause.previous
        elif isinstance(clause, cy.OptMatch):
            walk_predicate(clause.predicate)
            clause = clause.previous
        else:
            break
    return match_count >= 3 and has_null_or_in


# ---------------------------------------------------------------------------
# The buggy translation
# ---------------------------------------------------------------------------


class _BuggyTranspiler(Transpiler):
    """Graphiti's transpiler with OpenCypherTranspiler's orientation bug."""

    def __init__(self, graph_schema: GraphSchema, sdt: SdtResult) -> None:
        super().__init__(graph_schema, sdt)
        self.used_buggy_optional_match = False

    def translate_clause(self, clause: cy.Clause):
        if isinstance(clause, cy.OptMatch) and self._pattern_points_backwards(clause):
            self.used_buggy_optional_match = True
            # Swap the join sides: the optional pattern becomes the LEFT
            # operand of the left join, so unmatched *previous* rows are
            # dropped instead of null-padded (Appendix E example 3).
            output = self._translate_chained_match(
                clause.previous, clause.pattern, clause.predicate, sq.JoinKind.INNER
            )
            return output
        return super().translate_clause(clause)

    @staticmethod
    def _pattern_points_backwards(clause: cy.OptMatch) -> bool:
        """Does the optional pattern's *last* edge point at a bound variable?"""
        edges = [e for e in clause.pattern if isinstance(e, cy.EdgePattern)]
        if not edges:
            return False
        return edges[-1].direction is cy.Direction.OUT and _last_node_bound(clause)


def _last_node_bound(clause: cy.OptMatch) -> bool:
    from repro.cypher.analysis import collect_variables

    bound = collect_variables(clause.previous)
    last = clause.pattern[-1]
    return isinstance(last, cy.NodePattern) and last.variable in bound
