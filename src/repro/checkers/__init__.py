"""SQL equivalence-checking backends.

The paper reduces Cypher/SQL equivalence to SQL/SQL equivalence and then
delegates to an off-the-shelf backend.  This package provides the two
backends used in the evaluation, rebuilt from scratch:

* :mod:`repro.checkers.bounded` — a VeriEQL-style bounded model checker,
* :mod:`repro.checkers.deductive` — a Mediator-style deductive verifier for
  the aggregation-free, outer-join-free fragment,
* :mod:`repro.checkers.random_testing` — a quick random differential tester.
"""

from repro.checkers.base import CheckOutcome, CheckRequest, Verdict
from repro.checkers.bounded import BoundedChecker
from repro.checkers.deductive import DeductiveChecker
from repro.checkers.random_testing import RandomTester

__all__ = [
    "CheckOutcome",
    "CheckRequest",
    "Verdict",
    "BoundedChecker",
    "DeductiveChecker",
    "RandomTester",
]
