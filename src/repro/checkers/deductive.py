"""Mediator-style deductive verification (paper Section 6.2 backend).

Mediator proves full (unbounded) equivalence for an aggregation-free,
outer-join-free SQL fragment by inferring bisimulation invariants with an
SMT solver.  This substitute reaches the same verdict surface through
classical database theory:

1. both queries are normalised to **unions of conjunctive queries** (UCQs,
   :mod:`repro.checkers.cq`);
2. the target-schema query is rewritten into the induced-schema vocabulary
   by *unfolding* the residual transformer's rules as conjunctive views;
3. tableaux are simplified with two integrity-constraint-aware rewrites —
   primary-key self-join collapse and foreign-key lookup elimination — which
   play the role of Mediator's invariant reasoning over schema constraints;
4. bag-semantics equivalence of UCQs is decided by tableau **isomorphism**
   (Chaudhuri–Vardi); set-semantics (DISTINCT/UNION) single-direction
   containment uses homomorphisms (Chandra–Merlin).

Verdicts mirror Mediator's: ``EQUIVALENT`` on success, ``UNSUPPORTED``
outside the fragment, ``UNKNOWN`` when the structural proof fails (the
queries may still be equivalent — e.g. via constraints the rewrites do not
capture — exactly the paper's "Unknown" row in Table 3).  The backend never
refutes: like Mediator, it cannot produce counterexamples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import count, permutations

from repro.checkers.base import CheckOutcome, CheckRequest, Verdict
from repro.checkers.cq import (
    Atom,
    Condition,
    ConjunctiveQuery,
    Const,
    Expr,
    HeadTerm,
    Normalizer,
    Term,
    Var,
)
from repro.common.errors import UnsupportedError
from repro.relational.schema import RelationalSchema
from repro.sql.analysis import (
    uses_aggregation,
    uses_order_by,
    uses_outer_join,
    uses_recursion,
)
from repro.transformer.dsl import Constant, Rule, Transformer, Variable, Wildcard

_MAX_HEAD_PERMUTATIONS = 5040  # 7! — beyond this only identity is tried
_SEARCH_NODE_BUDGET = 200_000


@dataclass
class DeductiveChecker:
    """Full equivalence verification for the UCQ fragment.

    ``enable_simplification`` toggles the integrity-constraint-aware
    rewrites (primary-key self-join collapse, foreign-key lookup
    elimination).  Turning it off is the ablation measured in
    ``benchmarks/bench_ablations.py``: without the rewrites the structural
    proof fails for most benchmarks, because the transpiled and
    hand-written queries differ exactly by constraint-implied joins.
    """

    time_budget_seconds: float = 20.0
    enable_simplification: bool = True

    def check(self, request: CheckRequest) -> CheckOutcome:
        started = time.monotonic()
        for query in (request.induced_query, request.target_query):
            if uses_aggregation(query):
                return _outcome(Verdict.UNSUPPORTED, started, "aggregation")
            if uses_outer_join(query):
                return _outcome(Verdict.UNSUPPORTED, started, "outer join")
            if uses_order_by(query):
                return _outcome(Verdict.UNSUPPORTED, started, "order by")
            if uses_recursion(query):
                return _outcome(Verdict.UNSUPPORTED, started, "recursive CTE")
        try:
            left = Normalizer(request.induced_schema).normalize(request.induced_query)
            right_raw = Normalizer(request.target_schema).normalize(request.target_query)
            right = unfold_views(right_raw, request.residual)
        except UnsupportedError as error:
            return _outcome(Verdict.UNSUPPORTED, started, str(error))
        if self.enable_simplification:
            left = [simplify(cq, request.induced_schema) for cq in left]
            right = [simplify(cq, request.induced_schema) for cq in right]
        deadline = started + self.time_budget_seconds
        try:
            verdict = decide_ucq_equivalence(left, right, deadline)
        except _Budget:
            return _outcome(Verdict.UNKNOWN, started, "search budget exhausted")
        if verdict:
            return _outcome(Verdict.EQUIVALENT, started, "tableaux isomorphic")
        return _outcome(Verdict.UNKNOWN, started, "no structural proof found")


def _outcome(verdict: Verdict, started: float, detail: str) -> CheckOutcome:
    return CheckOutcome(
        verdict, elapsed_seconds=time.monotonic() - started, detail=detail
    )


class _Budget(Exception):
    """Raised when the isomorphism search exceeds its node budget."""


# ---------------------------------------------------------------------------
# View unfolding (residual transformer rules as conjunctive views)
# ---------------------------------------------------------------------------


def unfold_views(cqs: list[ConjunctiveQuery], rdt: Transformer) -> list[ConjunctiveQuery]:
    """Replace target-relation atoms by the bodies of their defining rules.

    Each rule ``B1, ..., Bn → R(t̄)`` defines ``R`` as a conjunctive view
    over the induced schema.  Soundness under bag semantics needs the view
    to be duplicate-free, which holds for residual transformers derived from
    schema mappings whose extra body atoms are primary-key lookups; a
    relation with several defining rules is rejected as unsupported.
    """
    rules_by_head: dict[str, list[Rule]] = {}
    for rule in rdt:
        rules_by_head.setdefault(rule.head.name, []).append(rule)
    fresh = count(10_000)
    out = []
    for cq in cqs:
        out.append(_unfold_cq(cq, rules_by_head, fresh))
    return [cq for cq in out if cq is not None]


def _unfold_cq(
    cq: ConjunctiveQuery,
    rules_by_head: dict[str, list[Rule]],
    fresh,
) -> ConjunctiveQuery | None:
    current = cq
    progress = True
    while progress:
        progress = False
        for index, atom in enumerate(current.atoms):
            rules = rules_by_head.get(atom.relation)
            if not rules:
                continue
            if len(rules) > 1:
                raise UnsupportedError(
                    f"relation {atom.relation!r} has several defining rules"
                )
            replaced = _replace_atom(current, index, rules[0], fresh)
            if replaced is None:
                return None  # contradictory constants: the disjunct is empty
            current = replaced
            progress = True
            break
    return current


def _replace_atom(
    cq: ConjunctiveQuery, index: int, rule: Rule, fresh
) -> ConjunctiveQuery | None:
    atom = cq.atoms[index]
    if len(rule.head.terms) != len(atom.terms):
        raise UnsupportedError(
            f"rule head arity does not match atom {atom.relation!r}"
        )
    variable_map: dict[str, Term] = {}
    substitutions: list[tuple[Term, Term]] = []
    for head_term, atom_term in zip(rule.head.terms, atom.terms):
        if isinstance(head_term, Constant):
            if isinstance(atom_term, Const):
                if atom_term.value != head_term.value:
                    return None
            else:
                substitutions.append((atom_term, Const(head_term.value)))
        elif isinstance(head_term, Variable):
            bound = variable_map.get(head_term.name)
            if bound is None:
                variable_map[head_term.name] = atom_term
            elif bound != atom_term:
                substitutions.append((atom_term, bound))
        else:  # pragma: no cover - heads cannot hold wildcards
            raise UnsupportedError("wildcard in rule head")
    body_atoms: list[Atom] = []
    for body in rule.body:
        terms: list[Term] = []
        for term in body.terms:
            if isinstance(term, Constant):
                terms.append(Const(term.value))
            elif isinstance(term, Wildcard):
                terms.append(Var(next(fresh)))
            else:
                bound = variable_map.get(term.name)
                if bound is None:
                    bound = Var(next(fresh))
                    variable_map[term.name] = bound
                terms.append(bound)
        body_atoms.append(Atom(body.name, tuple(terms)))
    atoms = cq.atoms[:index] + body_atoms + cq.atoms[index + 1 :]
    result = ConjunctiveQuery(atoms, list(cq.conditions), list(cq.head), cq.distinct)
    for old, new in substitutions:
        if isinstance(old, Const):
            if isinstance(new, Const):
                if old.value != new.value:
                    return None
                continue
            old, new = new, old
        result = _substitute_cq(result, old, new)  # type: ignore[arg-type]
    return result


def _substitute_cq(cq: ConjunctiveQuery, old: Var, new: Term) -> ConjunctiveQuery:
    def sub(term: Term) -> Term:
        return new if term == old else term

    def sub_head(term: HeadTerm) -> HeadTerm:
        if isinstance(term, Expr):
            return Expr(term.op, tuple(sub_head(o) for o in term.operands))
        return sub(term)  # type: ignore[arg-type]

    return ConjunctiveQuery(
        atoms=[Atom(a.relation, tuple(sub(t) for t in a.terms)) for a in cq.atoms],
        conditions=[
            Condition(c.op, sub(c.left), sub(c.right) if c.right is not None else None)
            for c in cq.conditions
        ],
        head=[sub_head(t) for t in cq.head],
        distinct=cq.distinct,
    )


# ---------------------------------------------------------------------------
# Constraint-aware simplification
# ---------------------------------------------------------------------------


def simplify(cq: ConjunctiveQuery, schema: RelationalSchema) -> ConjunctiveQuery:
    """Primary-key self-join collapse + foreign-key lookup elimination.

    Both rewrites are bag-equivalence preserving given the schema's
    integrity constraints; they normalise away the structural differences
    the transpiler introduces (re-joining a table on its primary key for a
    shared MATCH variable; scanning an endpoint table a hand-written query
    elides because the foreign key guarantees the join partner).
    """
    current = cq
    changed = True
    while changed:
        changed = False
        collapsed = _collapse_pk_self_join(current, schema)
        if collapsed is not None:
            current = collapsed
            changed = True
            continue
        pruned = _prune_fk_lookup(current, schema)
        if pruned is not None:
            current = pruned
            changed = True
    return _dedup_conditions(current)


def _collapse_pk_self_join(
    cq: ConjunctiveQuery, schema: RelationalSchema
) -> ConjunctiveQuery | None:
    for i, first in enumerate(cq.atoms):
        if not schema.has_relation(first.relation):
            continue
        pk = schema.constraints.primary_key_of(first.relation)
        if pk is None:
            continue
        pk_index = schema.relation(first.relation).attributes.index(pk)
        for j in range(i + 1, len(cq.atoms)):
            second = cq.atoms[j]
            if second.relation != first.relation:
                continue
            if first.terms[pk_index] != second.terms[pk_index]:
                continue
            # Same relation, same primary key ⇒ same row: merge.
            merged = ConjunctiveQuery(
                cq.atoms[:j] + cq.atoms[j + 1 :],
                list(cq.conditions),
                list(cq.head),
                cq.distinct,
            )
            for left, right in zip(first.terms, second.terms):
                if left == right:
                    continue
                if isinstance(right, Var):
                    merged = _substitute_cq(merged, right, left)
                elif isinstance(left, Var):
                    merged = _substitute_cq(merged, left, right)
                elif left.value != right.value:  # contradictory constants
                    return None
            return merged
    return None


def _prune_fk_lookup(
    cq: ConjunctiveQuery, schema: RelationalSchema
) -> ConjunctiveQuery | None:
    """Drop an atom that is a guaranteed-unique, guaranteed-present lookup."""
    occurrences = _variable_occurrences(cq)
    for index, atom in enumerate(cq.atoms):
        if not schema.has_relation(atom.relation):
            continue
        pk = schema.constraints.primary_key_of(atom.relation)
        if pk is None:
            continue
        attributes = schema.relation(atom.relation).attributes
        pk_index = attributes.index(pk)
        pk_term = atom.terms[pk_index]
        if not isinstance(pk_term, Var):
            continue
        # Every non-key variable must be private to this atom.
        private = True
        for position, term in enumerate(atom.terms):
            if position == pk_index:
                continue
            if isinstance(term, Const):
                private = False
                break
            if occurrences.get(term, 0) > 1:
                private = False
                break
        if not private:
            continue
        if not _pk_var_guarded(cq, schema, atom, index, pk_term):
            continue
        remaining = cq.atoms[:index] + cq.atoms[index + 1 :]
        return ConjunctiveQuery(remaining, list(cq.conditions), list(cq.head), cq.distinct)
    return None


def _pk_var_guarded(
    cq: ConjunctiveQuery,
    schema: RelationalSchema,
    atom: Atom,
    atom_index: int,
    pk_term: Var,
) -> bool:
    """Is *pk_term* bound elsewhere by a NOT-NULL FK referencing this PK?"""
    pk = schema.constraints.primary_key_of(atom.relation)
    not_null = {
        (nn.relation, nn.attribute) for nn in schema.constraints.not_nulls
    }
    for other_index, other in enumerate(cq.atoms):
        if other_index == atom_index:
            continue
        if not schema.has_relation(other.relation):
            continue
        attributes = schema.relation(other.relation).attributes
        for position, term in enumerate(other.terms):
            if term != pk_term:
                continue
            attribute = attributes[position]
            for fk in schema.constraints.foreign_keys_of(other.relation):
                if (
                    fk.attribute == attribute
                    and fk.referenced == atom.relation
                    and fk.referenced_attribute == pk
                    and (other.relation, attribute) in not_null
                ):
                    return True
    return False


def _variable_occurrences(cq: ConjunctiveQuery) -> dict[Var, int]:
    counts: dict[Var, int] = {}

    def bump(term) -> None:
        if isinstance(term, Var):
            counts[term] = counts.get(term, 0) + 1

    for atom in cq.atoms:
        seen_here: set[Var] = set()
        for term in atom.terms:
            if isinstance(term, Var) and term not in seen_here:
                seen_here.add(term)
                bump(term)
    for condition in cq.conditions:
        bump(condition.left)
        if condition.right is not None:
            bump(condition.right)
    for head_term in cq.head:
        for variable in _head_vars(head_term):
            bump(variable)
    return counts


def _head_vars(term: HeadTerm) -> set[Var]:
    if isinstance(term, Var):
        return {term}
    if isinstance(term, Expr):
        out: set[Var] = set()
        for operand in term.operands:
            out |= _head_vars(operand)
        return out
    return set()


def _dedup_conditions(cq: ConjunctiveQuery) -> ConjunctiveQuery:
    seen = []
    for condition in cq.conditions:
        if condition not in seen:
            seen.append(condition)
    return ConjunctiveQuery(list(cq.atoms), seen, list(cq.head), cq.distinct)


# ---------------------------------------------------------------------------
# UCQ equivalence decision
# ---------------------------------------------------------------------------


def decide_ucq_equivalence(
    left: list[ConjunctiveQuery], right: list[ConjunctiveQuery], deadline: float
) -> bool:
    """Equivalence of two UCQs modulo a global output-column permutation."""
    if not left and not right:
        return True
    if not left or not right:
        return False
    arity = len(left[0].head)
    if any(len(cq.head) != arity for cq in left + right):
        return False
    distinct_flags = {cq.distinct for cq in left + right}
    if len(distinct_flags) > 1:
        return False
    set_semantics = distinct_flags.pop()
    head_positions = list(range(arity))
    candidate_permutations = (
        permutations(head_positions)
        if _factorial(arity) <= _MAX_HEAD_PERMUTATIONS
        else iter([tuple(head_positions)])
    )
    for permutation in candidate_permutations:
        if time.monotonic() > deadline:
            raise _Budget()
        permuted_right = [_permute_head(cq, permutation) for cq in right]
        if set_semantics:
            if _set_equivalent(left, permuted_right, deadline):
                return True
        else:
            if _bag_equivalent(left, permuted_right, deadline):
                return True
    return False


def _permute_head(cq: ConjunctiveQuery, permutation: tuple[int, ...]) -> ConjunctiveQuery:
    head = [cq.head[p] for p in permutation]
    return ConjunctiveQuery(list(cq.atoms), list(cq.conditions), head, cq.distinct)


def _bag_equivalent(
    left: list[ConjunctiveQuery], right: list[ConjunctiveQuery], deadline: float
) -> bool:
    """Perfect matching between disjuncts under isomorphism."""
    if len(left) != len(right):
        return False
    used: set[int] = set()

    def match(index: int) -> bool:
        if index == len(left):
            return True
        for j, candidate in enumerate(right):
            if j in used:
                continue
            if isomorphic(left[index], candidate, deadline):
                used.add(j)
                if match(index + 1):
                    return True
                used.remove(j)
        return False

    return match(0)


def _set_equivalent(
    left: list[ConjunctiveQuery], right: list[ConjunctiveQuery], deadline: float
) -> bool:
    """Mutual containment of UCQs (Sagiv–Yannakakis), conservatively."""
    return all(
        any(contained_in(l, r, deadline) for r in right) for l in left
    ) and all(any(contained_in(r, l, deadline) for l in left) for r in right)


# ---------------------------------------------------------------------------
# Isomorphism and homomorphism search
# ---------------------------------------------------------------------------


def isomorphic(
    cq1: ConjunctiveQuery, cq2: ConjunctiveQuery, deadline: float
) -> bool:
    """Tableau isomorphism: a variable bijection mapping atoms bijectively,
    preserving conditions (as a multiset) and the head exactly."""
    if len(cq1.atoms) != len(cq2.atoms):
        return False
    if len(cq1.conditions) != len(cq2.conditions):
        return False
    if len(cq1.head) != len(cq2.head):
        return False
    by_relation_1 = _group_by_relation(cq1.atoms)
    by_relation_2 = _group_by_relation(cq2.atoms)
    if set(by_relation_1) != set(by_relation_2):
        return False
    if any(len(by_relation_1[r]) != len(by_relation_2[r]) for r in by_relation_1):
        return False
    budget = [_SEARCH_NODE_BUDGET]
    mapping: dict[Var, Var] = {}
    reverse: dict[Var, Var] = {}
    order = sorted(by_relation_1, key=lambda r: len(by_relation_1[r]))
    atoms1 = [atom for relation in order for atom in by_relation_1[relation]]

    def try_map(term1: Term, term2: Term) -> tuple[bool, list[Var]]:
        if isinstance(term1, Const) or isinstance(term2, Const):
            return (term1 == term2, [])
        bound = mapping.get(term1)
        if bound is not None:
            return (bound == term2, [])
        if term2 in reverse:
            return (False, [])
        mapping[term1] = term2
        reverse[term2] = term1
        return (True, [term1])

    def undo(added: list[Var]) -> None:
        for variable in added:
            partner = mapping.pop(variable)
            reverse.pop(partner)

    used: set[int] = set()

    def search(index: int) -> bool:
        budget[0] -= 1
        if budget[0] <= 0 or time.monotonic() > deadline:
            raise _Budget()
        if index == len(atoms1):
            return _heads_match(cq1, cq2, mapping) and _conditions_match(
                cq1, cq2, mapping
            )
        atom1 = atoms1[index]
        for j, atom2 in enumerate(cq2.atoms):
            if j in used or atom2.relation != atom1.relation:
                continue
            added: list[Var] = []
            ok = True
            for term1, term2 in zip(atom1.terms, atom2.terms):
                matched, new = try_map(term1, term2)
                added.extend(new)
                if not matched:
                    ok = False
                    break
            if ok:
                used.add(j)
                if search(index + 1):
                    return True
                used.remove(j)
            undo(added)
        return False

    return search(0)


def contained_in(
    sub: ConjunctiveQuery, sup: ConjunctiveQuery, deadline: float
) -> bool:
    """Set-semantics containment ``sub ⊆ sup`` via homomorphism ``sup → sub``.

    Conditions are handled conservatively: each condition of *sup* must map
    to a condition literally present in *sub*.
    """
    if len(sub.head) != len(sup.head):
        return False
    budget = [_SEARCH_NODE_BUDGET]
    mapping: dict[Var, Term] = {}

    def try_map(term_sup: Term, term_sub: Term) -> tuple[bool, list[Var]]:
        if isinstance(term_sup, Const):
            return (term_sup == term_sub, [])
        bound = mapping.get(term_sup)
        if bound is not None:
            return (bound == term_sub, [])
        mapping[term_sup] = term_sub
        return (True, [term_sup])

    def undo(added: list[Var]) -> None:
        for variable in added:
            mapping.pop(variable)

    atoms_sup = list(sup.atoms)

    def search(index: int) -> bool:
        budget[0] -= 1
        if budget[0] <= 0 or time.monotonic() > deadline:
            raise _Budget()
        if index == len(atoms_sup):
            return _hom_head_match(sub, sup, mapping) and _hom_conditions_match(
                sub, sup, mapping
            )
        atom_sup = atoms_sup[index]
        for atom_sub in sub.atoms:
            if atom_sub.relation != atom_sup.relation:
                continue
            added: list[Var] = []
            ok = True
            for term_sup, term_sub in zip(atom_sup.terms, atom_sub.terms):
                matched, new = try_map(term_sup, term_sub)
                added.extend(new)
                if not matched:
                    ok = False
                    break
            if ok and search(index + 1):
                return True
            undo(added)
        return False

    return search(0)


def _group_by_relation(atoms: list[Atom]) -> dict[str, list[Atom]]:
    groups: dict[str, list[Atom]] = {}
    for atom in atoms:
        groups.setdefault(atom.relation, []).append(atom)
    return groups


def _map_head_term(term: HeadTerm, mapping: dict[Var, Term]) -> HeadTerm | None:
    if isinstance(term, Var):
        return mapping.get(term)
    if isinstance(term, Expr):
        operands = []
        for operand in term.operands:
            mapped = _map_head_term(operand, mapping)
            if mapped is None:
                return None
            operands.append(mapped)
        return Expr(term.op, tuple(operands))
    return term


def _heads_match(
    cq1: ConjunctiveQuery, cq2: ConjunctiveQuery, mapping: dict[Var, Var]
) -> bool:
    for term1, term2 in zip(cq1.head, cq2.head):
        if _map_head_term(term1, mapping) != term2:
            return False
    return True


def _conditions_match(
    cq1: ConjunctiveQuery, cq2: ConjunctiveQuery, mapping: dict[Var, Var]
) -> bool:
    mapped = []
    for condition in cq1.conditions:
        left = _map_head_term(condition.left, mapping)
        right = (
            _map_head_term(condition.right, mapping)
            if condition.right is not None
            else None
        )
        if left is None or (condition.right is not None and right is None):
            return False
        mapped.append(Condition(condition.op, left, right))  # type: ignore[arg-type]
    remaining = list(cq2.conditions)
    for condition in mapped:
        if condition in remaining:
            remaining.remove(condition)
        else:
            return False
    return not remaining


def _hom_head_match(
    sub: ConjunctiveQuery, sup: ConjunctiveQuery, mapping: dict[Var, Term]
) -> bool:
    for term_sub, term_sup in zip(sub.head, sup.head):
        if _map_head_term(term_sup, mapping) != term_sub:
            return False
    return True


def _hom_conditions_match(
    sub: ConjunctiveQuery, sup: ConjunctiveQuery, mapping: dict[Var, Term]
) -> bool:
    available = list(sub.conditions)
    for condition in sup.conditions:
        left = _map_head_term(condition.left, mapping)
        right = (
            _map_head_term(condition.right, mapping)
            if condition.right is not None
            else None
        )
        candidate = Condition(condition.op, left, right)  # type: ignore[arg-type]
        if candidate not in available:
            return False
    return True


def _factorial(n: int) -> int:
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result
