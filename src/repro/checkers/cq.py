"""Conjunctive-query normal form for the deductive verifier.

The Mediator-style backend (paper Section 6.2) supports the
aggregation-free, outer-join-free SQL fragment.  Queries in that fragment
normalise to *unions of conjunctive queries* (UCQs):

    CQ = (atoms, conditions, head, distinct)

* ``atoms`` — bag of relational atoms ``R(t1, ..., tn)`` over variables and
  constants (the tableau);
* ``conditions`` — non-equality constraints (``<``, ``<=``, ``<>``,
  ``IS [NOT] NULL``) kept as normalised triples;
* ``head`` — output terms, possibly arithmetic expression trees;
* ``distinct`` — set semantics flag (``SELECT DISTINCT`` / ``UNION``).

Equalities are eliminated eagerly: variable/variable equalities merge
equivalence classes (union-find), variable/constant equalities substitute.
Constructs outside the fragment raise :class:`UnsupportedError`, which the
deductive checker converts into an ``UNSUPPORTED`` verdict — exactly how the
paper reports Mediator's fragment (196 of 410 benchmarks supported).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from itertools import count

from repro.common.errors import UnsupportedError
from repro.common.values import Value
from repro.relational.schema import RelationalSchema
from repro.sql import ast

# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Var:
    """A tableau variable (identified by an integer id)."""

    id: int

    def __str__(self) -> str:
        return f"x{self.id}"


@dataclass(frozen=True)
class Const:
    """A constant term."""

    value: Value

    def __str__(self) -> str:
        return repr(self.value)


Term = typing.Union[Var, Const]


@dataclass(frozen=True)
class Expr:
    """An arithmetic head expression over terms (op, operands)."""

    op: str
    operands: tuple["HeadTerm", ...]

    def __str__(self) -> str:
        return f"({f' {self.op} '.join(str(o) for o in self.operands)})"


HeadTerm = typing.Union[Var, Const, Expr]


@dataclass(frozen=True)
class Atom:
    """``R(t1, ..., tn)``."""

    relation: str
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Condition:
    """A normalised non-equality constraint.

    ``op`` ∈ {"<", "<=", "<>", "isnull", "isnotnull"}; ``right`` is ``None``
    for the unary null tests.  ``<``/``<=`` orient left-to-right; ``>`` and
    ``>=`` are normalised by swapping.  ``<>`` orders its operands by a
    canonical key so the pair is direction-insensitive.
    """

    op: str
    left: Term
    right: Term | None = None

    def __str__(self) -> str:
        if self.right is None:
            return f"{self.op}({self.left})"
        return f"{self.left} {self.op} {self.right}"


@dataclass
class ConjunctiveQuery:
    """One disjunct of a UCQ in tableau form."""

    atoms: list[Atom]
    conditions: list[Condition]
    head: list[HeadTerm]
    distinct: bool = False

    def variables(self) -> set[Var]:
        seen: set[Var] = set()
        for atom in self.atoms:
            seen.update(t for t in atom.terms if isinstance(t, Var))
        for condition in self.conditions:
            if isinstance(condition.left, Var):
                seen.add(condition.left)
            if isinstance(condition.right, Var):
                seen.add(condition.right)
        for term in self.head:
            seen.update(_expr_vars(term))
        return seen

    def __str__(self) -> str:
        atoms = ", ".join(str(a) for a in self.atoms)
        conditions = ", ".join(str(c) for c in self.conditions)
        head = ", ".join(str(t) for t in self.head)
        parts = [f"head({head}) :- {atoms}"]
        if conditions:
            parts.append(f"where {conditions}")
        if self.distinct:
            parts.append("[set]")
        return " ".join(parts)


def _expr_vars(term: HeadTerm) -> set[Var]:
    if isinstance(term, Var):
        return {term}
    if isinstance(term, Expr):
        out: set[Var] = set()
        for operand in term.operands:
            out |= _expr_vars(operand)
        return out
    return set()


# ---------------------------------------------------------------------------
# Normalisation
# ---------------------------------------------------------------------------


@dataclass
class _Block:
    """Intermediate result: a CQ plus its column naming."""

    columns: list[str]
    head: list[HeadTerm]
    atoms: list[Atom]
    conditions: list[Condition]

    def resolve(self, name: str) -> HeadTerm:
        if name in self.columns:
            return self.head[self.columns.index(name)]
        local = [i for i, c in enumerate(self.columns) if c.rsplit(".", 1)[-1] == name]
        if len(local) == 1:
            return self.head[local[0]]
        if len(local) > 1:
            raise UnsupportedError(f"ambiguous attribute {name!r} in tableau")
        raise UnsupportedError(f"unknown attribute {name!r} in tableau")


class Normalizer:
    """Lowers Featherweight SQL (the supported fragment) into UCQs."""

    def __init__(self, schema: RelationalSchema) -> None:
        self.schema = schema
        self._fresh = count(1)

    def fresh(self) -> Var:
        return Var(next(self._fresh))

    # -- queries -----------------------------------------------------------

    def normalize(self, query: ast.Query) -> list[ConjunctiveQuery]:
        """Normalise *query* to a union (bag) of conjunctive queries."""
        blocks, distinct = self._query(query, {})
        out = []
        for block in blocks:
            out.append(
                ConjunctiveQuery(
                    atoms=block.atoms,
                    conditions=block.conditions,
                    head=list(block.head),
                    distinct=distinct,
                )
            )
        return out

    def _query(
        self, query: ast.Query, ctes: dict[str, tuple[list[_Block], bool]]
    ) -> tuple[list[_Block], bool]:
        if isinstance(query, ast.Relation):
            return [self._relation_block(query.name, ctes)], False
        if isinstance(query, ast.Renaming):
            blocks, distinct = self._query(query.query, ctes)
            renamed = [
                _Block(
                    columns=[f"{query.name}.{c.replace('.', '_')}" for c in b.columns],
                    head=b.head,
                    atoms=b.atoms,
                    conditions=b.conditions,
                )
                for b in blocks
            ]
            return renamed, distinct
        if isinstance(query, ast.Selection):
            blocks, distinct = self._query(query.query, ctes)
            return [self._apply_predicate(b, query.predicate) for b in blocks], distinct
        if isinstance(query, ast.Projection):
            blocks, distinct = self._query(query.query, ctes)
            projected = [self._project(b, query.columns) for b in blocks]
            return projected, distinct or query.distinct
        if isinstance(query, ast.Join):
            return self._join(query, ctes)
        if isinstance(query, ast.UnionOp):
            left, left_distinct = self._query(query.left, ctes)
            right, right_distinct = self._query(query.right, ctes)
            if not query.all:
                return left + right, True
            if left_distinct or right_distinct:
                raise UnsupportedError("UNION ALL over DISTINCT operands")
            return left + right, False
        if isinstance(query, ast.WithQuery):
            definition = self._query(query.definition, ctes)
            extended = dict(ctes)
            extended[query.name] = definition
            return self._query(query.body, extended)
        if isinstance(query, ast.GroupBy):
            raise UnsupportedError("aggregation (GROUP BY) is outside the fragment")
        if isinstance(query, ast.OrderBy):
            raise UnsupportedError("ORDER BY is outside the fragment")
        raise UnsupportedError(f"unsupported query node {type(query).__name__}")

    def _relation_block(
        self, name: str, ctes: dict[str, tuple[list[_Block], bool]]
    ) -> _Block:
        if name in ctes:
            blocks, distinct = ctes[name]
            if distinct or len(blocks) != 1:
                raise UnsupportedError("CTE with union/distinct body inside a join")
            block = blocks[0]
            return self._instantiate(block)
        relation = self.schema.relation(name)
        variables: list[HeadTerm] = [self.fresh() for _ in relation.attributes]
        atom = Atom(name, tuple(variables))  # type: ignore[arg-type]
        return _Block(
            columns=list(relation.attributes),
            head=variables,
            atoms=[atom],
            conditions=[],
        )

    def _instantiate(self, block: _Block) -> _Block:
        """Copy a block with fresh variables (CTE reuse safety)."""
        mapping: dict[Var, Var] = {}

        def remap_term(term: Term) -> Term:
            if isinstance(term, Var):
                if term not in mapping:
                    mapping[term] = self.fresh()
                return mapping[term]
            return term

        def remap_head(term: HeadTerm) -> HeadTerm:
            if isinstance(term, Expr):
                return Expr(term.op, tuple(remap_head(o) for o in term.operands))
            return remap_term(term)  # type: ignore[arg-type]

        atoms = [Atom(a.relation, tuple(remap_term(t) for t in a.terms)) for a in block.atoms]
        conditions = [
            Condition(
                c.op,
                remap_term(c.left),
                remap_term(c.right) if c.right is not None else None,
            )
            for c in block.conditions
        ]
        head = [remap_head(t) for t in block.head]
        return _Block(list(block.columns), head, atoms, conditions)

    def _join(
        self, query: ast.Join, ctes: dict[str, tuple[list[_Block], bool]]
    ) -> tuple[list[_Block], bool]:
        if query.kind in (ast.JoinKind.LEFT, ast.JoinKind.RIGHT, ast.JoinKind.FULL):
            raise UnsupportedError("outer joins are outside the fragment")
        left_blocks, left_distinct = self._query(query.left, ctes)
        right_blocks, right_distinct = self._query(query.right, ctes)
        if left_distinct or right_distinct:
            raise UnsupportedError("join over DISTINCT operands")
        out: list[_Block] = []
        for left in left_blocks:
            for right in right_blocks:
                combined = _Block(
                    columns=left.columns + right.columns,
                    head=left.head + right.head,
                    atoms=left.atoms + right.atoms,
                    conditions=left.conditions + right.conditions,
                )
                if query.kind is ast.JoinKind.INNER:
                    combined = self._apply_predicate(combined, query.predicate)
                out.append(combined)
        return out, False

    def _project(self, block: _Block, columns: tuple[ast.OutputColumn, ...]) -> _Block:
        head = [self._expression(c.expression, block) for c in columns]
        return _Block(
            columns=[c.alias for c in columns],
            head=head,
            atoms=block.atoms,
            conditions=block.conditions,
        )

    # -- predicates ----------------------------------------------------------

    def _apply_predicate(self, block: _Block, predicate: ast.Predicate) -> _Block:
        for conjunct in _conjuncts(predicate):
            block = self._apply_atomic(block, conjunct)
        return block

    def _apply_atomic(self, block: _Block, predicate: ast.Predicate) -> _Block:
        if isinstance(predicate, ast.BoolLit):
            if predicate.value:
                return block
            raise UnsupportedError("constant-FALSE predicates are outside the fragment")
        if isinstance(predicate, ast.Comparison):
            return self._apply_comparison(block, predicate.op, predicate.left, predicate.right)
        if isinstance(predicate, ast.Not):
            inner = predicate.operand
            if isinstance(inner, ast.Comparison):
                negated = _negate_comparison(inner.op)
                return self._apply_comparison(block, negated, inner.left, inner.right)
            if isinstance(inner, ast.IsNull):
                return self._apply_isnull(block, inner.operand, not inner.negated)
            raise UnsupportedError("NOT over non-comparison predicates")
        if isinstance(predicate, ast.IsNull):
            return self._apply_isnull(block, predicate.operand, predicate.negated)
        if isinstance(predicate, ast.InValues):
            if len(predicate.values) == 1:
                return self._apply_comparison(
                    block, "=", predicate.operand, ast.Literal(predicate.values[0])
                )
            raise UnsupportedError("multi-value IN is outside the fragment")
        if isinstance(predicate, (ast.InQuery, ast.ExistsQuery)):
            raise UnsupportedError("subquery predicates are outside the fragment")
        if isinstance(predicate, ast.Or):
            raise UnsupportedError("disjunctive predicates are outside the fragment")
        raise UnsupportedError(
            f"unsupported predicate node {type(predicate).__name__}"
        )

    def _apply_comparison(
        self, block: _Block, op: str, left: ast.Expression, right: ast.Expression
    ) -> _Block:
        left_term = self._expression(left, block)
        right_term = self._expression(right, block)
        if op == "=":
            if isinstance(left_term, Expr) or isinstance(right_term, Expr):
                raise UnsupportedError(
                    "equalities over arithmetic are outside the fragment"
                )
            return _unify(block, left_term, right_term)
        if op in (">", ">="):
            op = "<" if op == ">" else "<="
            left_term, right_term = right_term, left_term
        if op == "<>":
            left_term, right_term = _ordered(left_term, right_term)
        if isinstance(left_term, Expr) or isinstance(right_term, Expr):
            raise UnsupportedError("inequalities over arithmetic are outside the fragment")
        return _with_condition(block, Condition(op, left_term, right_term))

    def _apply_isnull(self, block: _Block, operand: ast.Expression, negated: bool) -> _Block:
        term = self._expression(operand, block)
        if isinstance(term, Expr):
            raise UnsupportedError("IS NULL over arithmetic is outside the fragment")
        op = "isnotnull" if negated else "isnull"
        return _with_condition(block, Condition(op, term))

    # -- expressions ----------------------------------------------------------

    def _expression(self, expression: ast.Expression, block: _Block) -> HeadTerm:
        if isinstance(expression, ast.AttributeRef):
            return block.resolve(expression.name)
        if isinstance(expression, ast.Literal):
            return Const(expression.value)
        if isinstance(expression, ast.BinaryOp):
            left = self._expression(expression.left, block)
            right = self._expression(expression.right, block)
            return Expr(expression.op, (left, right))
        if isinstance(expression, ast.Aggregate):
            raise UnsupportedError("aggregates are outside the fragment")
        raise UnsupportedError(
            f"unsupported expression node {type(expression).__name__}"
        )


# ---------------------------------------------------------------------------
# Block surgery
# ---------------------------------------------------------------------------


def _conjuncts(predicate: ast.Predicate) -> list[ast.Predicate]:
    if isinstance(predicate, ast.And):
        return _conjuncts(predicate.left) + _conjuncts(predicate.right)
    return [predicate]


def _negate_comparison(op: str) -> str:
    return {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}[op]


def _ordered(left: HeadTerm, right: HeadTerm) -> tuple:
    key = lambda t: str(t)  # noqa: E731 - canonical, direction-insensitive order
    return (left, right) if key(left) <= key(right) else (right, left)


def _unify(block: _Block, left: Term, right: Term) -> _Block:
    if isinstance(left, Const) and isinstance(right, Const):
        if left.value != right.value:
            raise UnsupportedError("contradictory constant equality")
        return block
    if isinstance(left, Const):
        left, right = right, left
    assert isinstance(left, Var)
    return _substitute(block, left, right)


def _substitute(block: _Block, old: Var, new: Term) -> _Block:
    def sub_term(term: Term) -> Term:
        return new if term == old else term

    def sub_head(term: HeadTerm) -> HeadTerm:
        if isinstance(term, Expr):
            return Expr(term.op, tuple(sub_head(o) for o in term.operands))
        return sub_term(term)  # type: ignore[arg-type]

    atoms = [Atom(a.relation, tuple(sub_term(t) for t in a.terms)) for a in block.atoms]
    conditions = [
        Condition(
            c.op,
            sub_term(c.left),
            sub_term(c.right) if c.right is not None else None,
        )
        for c in block.conditions
    ]
    head = [sub_head(t) for t in block.head]
    return _Block(list(block.columns), head, atoms, conditions)


def _with_condition(block: _Block, condition: Condition) -> _Block:
    return _Block(
        list(block.columns),
        list(block.head),
        list(block.atoms),
        block.conditions + [condition],
    )
