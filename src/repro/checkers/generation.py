"""Randomised instance generation for the bounded model checker.

The checker explores the space of induced-schema instances bounded by a
maximum per-table row count.  Generation respects the integrity constraints
``ξ`` (primary keys unique and non-null, foreign keys drawn from referenced
columns, not-null attributes non-null) so every sample is a legal instance —
i.e. the image of some property graph under the SDT.

Two ingredients matter for refutation power (they play the role VeriEQL's
SMT solver plays in the paper):

* **constant seeding** — literals appearing in either query or in the
  transformer are injected into the value domains of the attributes they are
  compared against, so selective predicates like ``CID = 1`` are exercised;
* **small domains** — values are drawn from a domain barely larger than the
  table bound, forcing joins to collide and fan-in/fan-out shapes (multiple
  edges sharing an endpoint) to appear, which is exactly the shape of the
  motivating example's double-counting bug.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.values import NULL, Value
from repro.relational.instance import Database
from repro.relational.schema import RelationalSchema
from repro.sql import ast as sq
from repro.transformer.dsl import Constant, Transformer

#: Attribute-name (local, unqualified) → constants compared against it.
ConstantSeeds = dict[str, set[Value]]


def collect_constant_seeds(
    queries: list[sq.Query], transformers: list[Transformer]
) -> ConstantSeeds:
    """Harvest literals that flow into comparisons with attributes."""
    seeds: ConstantSeeds = {}

    def note(attribute: str, value: Value) -> None:
        local = attribute.rsplit(".", 1)[-1]
        # Flattened names like ``c1_CID`` should also seed ``CID``.
        if "_" in local:
            suffix = local.rsplit("_", 1)[-1]
            seeds.setdefault(suffix, set()).add(value)
        seeds.setdefault(local, set()).add(value)

    def walk_expression(expr: sq.Expression) -> None:
        if isinstance(expr, sq.BinaryOp):
            # Literals inside arithmetic (e.g. ``DeptNo + 5``) matter for
            # counterexamples even though they face no attribute directly.
            for side in (expr.left, expr.right):
                if isinstance(side, sq.Literal):
                    seeds.setdefault("", set()).add(side.value)
            walk_expression(expr.left)
            walk_expression(expr.right)
        elif isinstance(expr, sq.CastPredicate):
            walk_predicate(expr.predicate)
        elif isinstance(expr, sq.Aggregate) and expr.argument is not None:
            walk_expression(expr.argument)

    def walk_predicate(predicate: sq.Predicate) -> None:
        if isinstance(predicate, sq.Comparison):
            if isinstance(predicate.left, sq.AttributeRef) and isinstance(
                predicate.right, sq.Literal
            ):
                note(predicate.left.name, predicate.right.value)
            if isinstance(predicate.right, sq.AttributeRef) and isinstance(
                predicate.left, sq.Literal
            ):
                note(predicate.right.name, predicate.left.value)
            walk_expression(predicate.left)
            walk_expression(predicate.right)
        elif isinstance(predicate, sq.InValues):
            if isinstance(predicate.operand, sq.AttributeRef):
                for value in predicate.values:
                    note(predicate.operand.name, value)
        elif isinstance(predicate, (sq.And, sq.Or)):
            walk_predicate(predicate.left)
            walk_predicate(predicate.right)
        elif isinstance(predicate, sq.Not):
            walk_predicate(predicate.operand)
        elif isinstance(predicate, sq.InQuery):
            walk_query(predicate.query)
        elif isinstance(predicate, sq.ExistsQuery):
            walk_query(predicate.query)
        elif isinstance(predicate, sq.IsNull):
            walk_expression(predicate.operand)

    def walk_query(query: sq.Query) -> None:
        if isinstance(query, sq.Relation):
            return
        if isinstance(query, sq.Projection):
            for column in query.columns:
                walk_expression(column.expression)
            walk_query(query.query)
        elif isinstance(query, sq.Selection):
            walk_predicate(query.predicate)
            walk_query(query.query)
        elif isinstance(query, sq.Renaming):
            walk_query(query.query)
        elif isinstance(query, sq.Join):
            walk_predicate(query.predicate)
            walk_query(query.left)
            walk_query(query.right)
        elif isinstance(query, sq.UnionOp):
            walk_query(query.left)
            walk_query(query.right)
        elif isinstance(query, sq.GroupBy):
            for key in query.keys:
                walk_expression(key)
            for column in query.columns:
                walk_expression(column.expression)
            walk_predicate(query.having)
            walk_query(query.query)
        elif isinstance(query, sq.WithQuery):
            walk_query(query.definition)
            walk_query(query.body)
        elif isinstance(query, sq.OrderBy):
            for key in query.keys:
                walk_expression(key)
            walk_query(query.query)

    for query in queries:
        walk_query(query)
    for transformer in transformers:
        for rule in transformer:
            for atom in (*rule.body, rule.head):
                for position, term in enumerate(atom.terms):
                    if isinstance(term, Constant):
                        seeds.setdefault(atom.name, set())  # keep name known
                        # Without schema positions we cannot name the attribute,
                        # so seed the global pool via the empty key.
                        seeds.setdefault("", set()).add(term.value)
    return seeds


@dataclass
class InstanceGenerator:
    """Draws random legal instances of *schema* with ≤ *bound* rows/table."""

    schema: RelationalSchema
    seeds: ConstantSeeds = field(default_factory=dict)
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    null_probability: float = 0.15

    def __post_init__(self) -> None:
        # Constants compared against *any* attribute also seed every other
        # attribute's pool: cross-attribute joins against a constant (the
        # paper's Figure-23 counterexample joins EmpNo to DeptNo at 10)
        # are otherwise unreachable with tiny domains.
        self._global_pool: list[Value] = sorted(
            {value for values in self.seeds.values() for value in values},
            key=repr,
        )

    def random_instance(self, bound: int) -> Database:
        database = Database(self.schema)
        for relation in self._topological_relations():
            pk_attr = self.schema.constraints.primary_key_of(relation.name)
            row_count = self.rng.randint(0, bound)
            pk_pool = self._key_pool(relation.name, pk_attr, bound)
            rows_added = 0
            for _ in range(row_count):
                row = self._random_row(database, relation.name, pk_attr, pk_pool, bound)
                if row is None:
                    break
                database.insert(relation.name, row)
                rows_added += 1
        return database

    # -- internals -----------------------------------------------------------

    def _topological_relations(self):
        """Relations ordered so FK targets are populated before referrers."""
        remaining = list(self.schema.relations)
        ordered = []
        placed: set[str] = set()
        while remaining:
            progressed = False
            for relation in list(remaining):
                fks = self.schema.constraints.foreign_keys_of(relation.name)
                if all(fk.referenced in placed or fk.referenced == relation.name for fk in fks):
                    ordered.append(relation)
                    placed.add(relation.name)
                    remaining.remove(relation)
                    progressed = True
            if not progressed:  # FK cycle: emit the rest in declaration order
                ordered.extend(remaining)
                break
        return ordered

    def _key_pool(self, relation: str, pk_attr: str | None, bound: int) -> list[Value]:
        pool: list[Value] = list(range(0, bound + 2))
        if pk_attr is not None:
            pool.extend(self.seeds.get(pk_attr, ()))
        pool.extend(v for v in self._global_pool if isinstance(v, int))
        pool = list(dict.fromkeys(pool))
        self.rng.shuffle(pool)
        return pool

    def _random_row(
        self,
        database: Database,
        relation_name: str,
        pk_attr: str | None,
        pk_pool: list[Value],
        bound: int,
    ):
        relation = self.schema.relation(relation_name)
        constraints = self.schema.constraints
        fks = {fk.attribute: fk for fk in constraints.foreign_keys_of(relation_name)}
        not_null = {
            nn.attribute for nn in constraints.not_nulls if nn.relation == relation_name
        }
        row: list[Value] = []
        for attribute in relation.attributes:
            if attribute == pk_attr:
                if not pk_pool:
                    return None
                row.append(pk_pool.pop())
            elif attribute in fks:
                fk = fks[attribute]
                referenced = database.table(fk.referenced)
                candidates = [
                    referenced.value(r, fk.referenced_attribute) for r in referenced
                ]
                if not candidates:
                    if attribute in not_null:
                        return None
                    row.append(NULL)
                else:
                    row.append(self.rng.choice(candidates))
            else:
                row.append(self._random_value(attribute, bound, attribute in not_null))
        return tuple(row)

    def _random_value(self, attribute: str, bound: int, must_not_be_null: bool) -> Value:
        if not must_not_be_null and self.rng.random() < self.null_probability:
            return NULL
        pool: list[Value] = list(range(0, bound + 2))
        pool.extend(self.seeds.get(attribute, ()))
        pool.extend(self._global_pool)
        return self.rng.choice(pool)
