"""Quick random differential testing backend.

A thin configuration of the bounded checker's machinery: a single bound and
a modest number of samples.  Useful as a fast smoke-test pass before the
more expensive growing-bound search, mirroring the role testing tools play
alongside verifiers in the paper's related-work discussion (Section 7).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkers.base import CheckOutcome, CheckRequest
from repro.checkers.bounded import BoundedChecker


@dataclass
class RandomTester:
    """Differential testing at a fixed bound."""

    bound: int = 4
    samples: int = 150
    seed: int = 7
    time_budget_seconds: float = 10.0

    def check(self, request: CheckRequest) -> CheckOutcome:
        checker = BoundedChecker(
            max_bound=self.bound,
            samples_per_bound=max(1, self.samples // self.bound),
            time_budget_seconds=self.time_budget_seconds,
            seed=self.seed,
        )
        return checker.check(request)
