"""VeriEQL-style bounded model checking (paper Section 6.1 backend).

The paper's first backend, VeriEQL, symbolically explores all database
instances whose tables hold at most *k* rows, growing *k* until it refutes
equivalence or exhausts a time budget.  No SMT solver is available offline,
so this substitute explores the same bounded space by sampling legal
induced-schema instances (see :mod:`repro.checkers.generation`), mapping
each through the residual transformer, executing both queries with the
reference evaluator, and comparing result tables under Definition 4.4.

The contract matches VeriEQL's: a ``NOT_EQUIVALENT`` verdict carries a
concrete counterexample (which the pipeline lifts to a property graph), and
the absence of a counterexample up to the reached bound is reported as
``BOUNDED_EQUIVALENT`` together with that bound.

Counterexamples are shrunk greedily (row removal while the disagreement and
the integrity constraints persist) so the witnesses match the paper's tiny
Figure 3 / Figure 23 style instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.checkers.base import CheckOutcome, CheckRequest, Verdict
from repro.checkers.generation import InstanceGenerator, collect_constant_seeds
from repro.common.errors import GraphitiError
from repro.relational.instance import Database, Table, tables_equivalent
from repro.sql.semantics import evaluate_query
from repro.transformer.semantics import transform_database


@dataclass
class BoundedChecker:
    """Bounded equivalence checking with growing per-table row bounds.

    ``enable_constant_seeding`` and ``enable_shrinking`` exist for the
    ablation study (``benchmarks/bench_ablations.py``): seeding is what
    makes selective predicates reachable with tiny domains, and shrinking
    is what turns raw witnesses into paper-sized counterexamples.
    """

    max_bound: int = 6
    samples_per_bound: int = 220
    time_budget_seconds: float = 20.0
    seed: int = 2025
    enable_constant_seeding: bool = True
    enable_shrinking: bool = True

    def check(self, request: CheckRequest) -> CheckOutcome:
        started = time.monotonic()
        if self.enable_constant_seeding:
            seeds = collect_constant_seeds(
                [request.induced_query, request.target_query], [request.residual]
            )
        else:
            seeds = {}
        generator = InstanceGenerator(
            request.induced_schema,
            seeds=seeds,
        )
        generator.rng.seed(self.seed)
        checked = 0
        reached_bound = 0
        for bound in range(1, self.max_bound + 1):
            for _ in range(self.samples_per_bound):
                if time.monotonic() - started > self.time_budget_seconds:
                    return CheckOutcome(
                        Verdict.BOUNDED_EQUIVALENT,
                        checked_bound=reached_bound,
                        instances_checked=checked,
                        elapsed_seconds=time.monotonic() - started,
                        detail="time budget exhausted",
                    )
                induced = generator.random_instance(bound)
                outcome = self._try_instance(request, induced, bound, checked, started)
                checked += 1
                if outcome is not None:
                    return outcome
            reached_bound = bound
        return CheckOutcome(
            Verdict.BOUNDED_EQUIVALENT,
            checked_bound=reached_bound,
            instances_checked=checked,
            elapsed_seconds=time.monotonic() - started,
        )

    # -- single-instance check ------------------------------------------------

    def _try_instance(
        self,
        request: CheckRequest,
        induced: Database,
        bound: int,
        checked: int,
        started: float,
    ) -> CheckOutcome | None:
        disagreement = self._disagree(request, induced)
        if disagreement is None:
            return None
        induced_small = self._shrink(request, induced) if self.enable_shrinking else induced
        target_small = transform_database(
            request.residual, induced_small, request.target_schema
        )
        return CheckOutcome(
            Verdict.NOT_EQUIVALENT,
            induced_witness=induced_small,
            target_witness=target_small,
            checked_bound=bound,
            instances_checked=checked + 1,
            elapsed_seconds=time.monotonic() - started,
        )

    def _disagree(self, request: CheckRequest, induced: Database) -> bool | None:
        """Return True-ish if the queries disagree on *induced* (else None)."""
        if induced.constraint_violation() is not None:
            return None
        try:
            target = transform_database(
                request.residual, induced, request.target_schema
            )
        except GraphitiError:
            return None
        if target.constraint_violation() is not None:
            return None
        try:
            left = evaluate_query(request.induced_query, induced)
            right = evaluate_query(request.target_query, target)
        except GraphitiError:
            return None
        if tables_equivalent(left, right):
            return None
        return True

    # -- shrinking --------------------------------------------------------------

    def _shrink(self, request: CheckRequest, induced: Database) -> Database:
        """Greedy row-removal shrinking preserving the disagreement."""
        current = induced
        improved = True
        while improved:
            improved = False
            for relation in current.schema.relations:
                table = current.table(relation.name)
                for index in range(len(table.rows)):
                    candidate = _without_row(current, relation.name, index)
                    if candidate.constraint_violation() is not None:
                        continue
                    if self._disagree(request, candidate):
                        current = candidate
                        improved = True
                        break
                if improved:
                    break
        return current


def _without_row(database: Database, relation_name: str, index: int) -> Database:
    clone = Database(database.schema)
    for name, table in database.tables.items():
        rows = list(table.rows)
        if name == relation_name:
            rows = rows[:index] + rows[index + 1 :]
        clone.set_table(name, Table(table.attributes, rows))
    return clone
