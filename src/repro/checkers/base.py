"""The ``CheckSQL`` contract shared by all equivalence-checking backends.

A backend decides whether two SQL queries over *different* schemas agree on
every pair of instances related by a residual database transformer:

    for every induced-schema instance D' satisfying its integrity
    constraints, with D = Φ_rdt(D'):   ⟦Q'_R⟧_{D'} ≡ ⟦Q_R⟧_D

which is the quantifier structure of Definition 4.5 after the SDT bijection
collapses the graph side onto the induced schema.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.relational.instance import Database
from repro.relational.schema import RelationalSchema
from repro.sql import ast as sq
from repro.transformer.dsl import Transformer


class Verdict(enum.Enum):
    """Outcome categories across all backends."""

    EQUIVALENT = "equivalent"  # proven for all instances (deductive backend)
    NOT_EQUIVALENT = "not-equivalent"  # refuted with a counterexample
    BOUNDED_EQUIVALENT = "bounded-equivalent"  # no counterexample up to the bound
    UNKNOWN = "unknown"  # backend gave up / unsupported fragment
    UNSUPPORTED = "unsupported"  # query outside the backend's fragment


@dataclass(frozen=True)
class CheckRequest:
    """One ``CheckSQL(Ψ_R, Q_R, Ψ'_R, Q'_R, Φ_rdt)`` invocation."""

    induced_schema: RelationalSchema
    induced_query: sq.Query
    target_schema: RelationalSchema
    target_query: sq.Query
    residual: Transformer


@dataclass
class CheckOutcome:
    """Backend verdict plus whatever evidence it gathered."""

    verdict: Verdict
    induced_witness: Database | None = None
    target_witness: Database | None = None
    checked_bound: int = 0
    instances_checked: int = 0
    elapsed_seconds: float = 0.0
    detail: str = ""

    @property
    def refuted(self) -> bool:
        return self.verdict is Verdict.NOT_EQUIVALENT

    @property
    def verified(self) -> bool:
        return self.verdict in (Verdict.EQUIVALENT, Verdict.BOUNDED_EQUIVALENT)
