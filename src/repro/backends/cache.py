"""A persistent, cross-process transpilation cache.

The in-memory LRU in :class:`~repro.backends.service.GraphitiService` makes
*repeated* queries cheap within one process; this module makes them cheap
across processes.  Prepared queries (optimised SQL AST + rendered text) are
pickled into a small SQLite store keyed by the same logical key the LRU
uses — ``(schema fingerprint, cypher text, dialect, opt level, statistics
digest)`` — so a cold process skips parse → transpile → optimize → render
entirely for any query any previous process prepared over the same schema
and statistics.

The statistics component is a *content digest* (not the process-local epoch
counter): two processes that load the same data derive the same digest and
therefore share entries, while loading different data invalidates level-2
plans exactly as it should (fresh statistics can change the chosen join
order).

Store location: ``$GRAPHITI_CACHE_DIR``, else ``$XDG_CACHE_HOME/graphiti-repro``,
else ``~/.cache/graphiti-repro``.  The store versions its format with
``PRAGMA user_version`` and silently rebuilds on mismatch — a cache may
always be dropped.  Entries that fail to unpickle (e.g. the AST classes
changed between releases) count as misses and are purged.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import threading
import time
from pathlib import Path

#: Bump when the pickled payload or key layout changes incompatibly.
#: 2: PreparedQuery grew a ``plan`` (PlanReport) field — version-1 pickles
#: would unpickle without it and fail on attribute access.
#: 3: PreparedQuery grew ``feedback`` (ExecutionFeedback) and
#: ``feedback_epoch`` fields for adaptive execution — version-2 pickles
#: lack both and would fail on attribute access.
SCHEMA_VERSION = 3

CACHE_FILE_NAME = "transpilations.sqlite"


def default_cache_dir() -> Path:
    """The platform cache directory for this package (not yet created)."""
    override = os.environ.get("GRAPHITI_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "graphiti-repro"


def cache_key(
    fingerprint: str,
    cypher_text: str,
    dialect_name: str,
    opt_level: int,
    stats_digest: str,
    variant: str = "",
) -> str:
    """The store's primary key: stable, compact, collision-resistant.

    The Cypher text is hashed (queries can be long and multi-line); the
    other components are short and kept readable for debugging.  *variant*
    distinguishes budget-downgraded plans (forced-recursive, depth-capped)
    from the normal plan for the same query — empty for the common case,
    so pre-existing entries keep their keys.
    """
    cypher_digest = hashlib.sha256(cypher_text.encode("utf-8")).hexdigest()[:32]
    parts = [fingerprint, cypher_digest, dialect_name, str(opt_level), stats_digest]
    if variant:
        parts.append(variant)
    return "|".join(parts)


class PersistentQueryCache:
    """SQLite-backed pickle store for prepared queries (thread-safe)."""

    def __init__(self, path: str | Path | None = None) -> None:
        if path is None:
            path = default_cache_dir() / CACHE_FILE_NAME
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
        self._initialise()

    def _initialise(self) -> None:
        with self._lock:
            version = self._connection.execute("PRAGMA user_version").fetchone()[0]
            if version not in (0, SCHEMA_VERSION):
                self._connection.execute("DROP TABLE IF EXISTS entries")
            self._connection.execute(
                "CREATE TABLE IF NOT EXISTS entries ("
                "  key TEXT PRIMARY KEY,"
                "  cypher TEXT NOT NULL,"
                "  payload BLOB NOT NULL,"
                "  created_at REAL NOT NULL"
                ")"
            )
            self._connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            self._connection.commit()

    # -- store -------------------------------------------------------------

    def get(self, key: str) -> object | None:
        """The stored prepared query for *key*, or ``None`` (counted).

        The whole read — select, unpickle, possible purge of a stale
        payload, counter update — happens under the lock, so a concurrent
        ``put`` of the same key can never be deleted by a racing purge and
        the hit/miss counters never lose increments.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT payload FROM entries WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            try:
                value = pickle.loads(row[0])
            except Exception:
                # Stale payload from an incompatible build: purge and miss.
                self._connection.execute("DELETE FROM entries WHERE key = ?", (key,))
                self._connection.commit()
                self.misses += 1
                return None
            self.hits += 1
            return value

    def put(self, key: str, cypher_text: str, value: object) -> None:
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._connection.execute(
                "INSERT OR REPLACE INTO entries (key, cypher, payload, created_at) "
                "VALUES (?, ?, ?, ?)",
                (key, cypher_text, payload, time.time()),
            )
            self._connection.commit()

    # -- maintenance ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM entries"
            ).fetchone()[0]

    def clear(self) -> None:
        """Drop every entry (keeps the store file and counters' semantics)."""
        with self._lock:
            self._connection.execute("DELETE FROM entries")
            self._connection.commit()
        self.hits = 0
        self.misses = 0

    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "PersistentQueryCache":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
