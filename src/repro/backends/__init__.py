"""Pluggable multi-backend execution.

The subsystem has four layers:

* :mod:`repro.backends.base` — the :class:`ExecutionBackend` contract
  (connect, batched bulk-load, execute, explain, timing) plus the shared
  DB-API implementation.
* :mod:`repro.backends.registry` — name → backend factory with
  availability gating (:func:`available_backends`, :func:`create_backend`,
  :func:`load_backend`).
* Engines: :mod:`repro.backends.sqlite` (``sqlite-memory``,
  ``sqlite-file``; always available) and
  :mod:`repro.backends.duckdb_backend` (``duckdb``; skipped when the
  package is absent).  Importing this package registers all of them.
* :mod:`repro.backends.pool` — :class:`ConnectionPool`: per-backend pools
  of warmed, schema-loaded connections (checkout/checkin, lazy growth,
  clone-based members where the engine shares storage).
* :mod:`repro.backends.cache` — :class:`PersistentQueryCache`: the
  cross-process on-disk transpilation store.
* :mod:`repro.backends.service` — the :class:`GraphitiService` facade:
  schema → SDT → cached transpile → pooled, thread-safe execution
  (``run_many`` fans batches across worker threads), multi-engine.
* :mod:`repro.backends.async_service` — :class:`AsyncGraphitiService`:
  the asyncio serving layer over the same pools and caches (``await
  run``/``run_many``, semaphore backpressure, executor offload for the
  blocking drivers; sync and async callers coexist on one pool).
* :mod:`repro.backends.sharding` — :class:`ShardedGraphitiService` /
  :class:`AsyncShardedGraphitiService`: hash-partitioned horizontal
  sharding with scatter-gather execution (fragmentable plans fan out to
  per-shard services and merge at the coordinator; everything else falls
  back transparently to an unsharded backend).
* :mod:`repro.backends.executor` — intra-query parallelism:
  :func:`plan_parallelism` gates fragmentable scans on estimated row
  counts, :class:`FragmentExecutor` splits the scanned relation into
  disjoint rowid ranges and scatter-gathers them over pooled
  connections, and :func:`run_indexed` is the shared batch fan-out loop
  both ``run_many`` implementations use.
* :mod:`repro.backends.guards` — :class:`RetryPolicy` (bounded backoff
  with jitter) and :class:`CircuitBreaker` (per-backend load shedding),
  the recovery primitives both serving layers compose.
* :mod:`repro.backends.faults` — :class:`FaultInjectingBackend`
  (``faulty``; available only while a :class:`FaultPlan` is installed):
  deterministic failure schedules for resilience testing.

Adding an engine: subclass :class:`DbApiBackend` (or
:class:`ExecutionBackend` for exotic engines), give it a ``name`` and a
:class:`~repro.sql.dialect.SqlDialect`, and decorate with
:func:`register_backend`.
"""

from repro.backends.base import (
    BackendUnavailable,
    DbApiBackend,
    ExecutionBackend,
    infer_column_types,
)
from repro.backends.registry import (
    BackendInfo,
    available_backends,
    backend_info,
    create_backend,
    load_backend,
    register_backend,
    registered_backends,
)

# Importing the engine modules registers them.
from repro.backends import sqlite as _sqlite  # noqa: F401
from repro.backends import duckdb_backend as _duckdb  # noqa: F401
from repro.backends import faults as _faults  # noqa: F401
from repro.backends.sqlite import SqliteFileBackend, SqliteMemoryBackend
from repro.backends.duckdb_backend import DuckDbBackend
from repro.backends.pool import ConnectionPool, PoolClosed, PoolTimeout
from repro.backends.cache import PersistentQueryCache, default_cache_dir
from repro.backends.service import (
    CacheInfo,
    ExecutionFeedback,
    GraphitiService,
    PreparedQuery,
    QueryStat,
    schema_fingerprint,
    stats_digest,
)
from repro.backends.async_service import AsyncGraphitiService
from repro.backends.executor import (
    PARALLEL_ROW_THRESHOLD,
    FragmentExecutor,
    ParallelDecision,
    partition_bounds,
    partition_statements,
    plan_parallelism,
    run_indexed,
)
from repro.backends.sharding import (
    AsyncShardedGraphitiService,
    ShardPartitioner,
    ShardedGraphitiService,
    stable_shard_hash,
)
from repro.backends.guards import (
    NO_RETRY,
    CircuitBreaker,
    CircuitOpen,
    RetryPolicy,
)
from repro.backends.faults import (
    FaultInjectingBackend,
    FaultInjected,
    FaultPlan,
    injected_faults,
)
from repro.common.budget import (
    BudgetTracker,
    QueryBudget,
    QueryBudgetExceeded,
)
from repro.backends.comparison import (
    DEFAULT_WORKLOAD,
    BackendTiming,
    compare_backends,
)

__all__ = [
    "BackendUnavailable",
    "DbApiBackend",
    "ExecutionBackend",
    "infer_column_types",
    "BackendInfo",
    "available_backends",
    "backend_info",
    "create_backend",
    "load_backend",
    "register_backend",
    "registered_backends",
    "SqliteFileBackend",
    "SqliteMemoryBackend",
    "DuckDbBackend",
    "ConnectionPool",
    "PoolClosed",
    "PoolTimeout",
    "PersistentQueryCache",
    "default_cache_dir",
    "CacheInfo",
    "AsyncGraphitiService",
    "AsyncShardedGraphitiService",
    "ShardPartitioner",
    "ShardedGraphitiService",
    "stable_shard_hash",
    "GraphitiService",
    "PARALLEL_ROW_THRESHOLD",
    "FragmentExecutor",
    "ParallelDecision",
    "partition_bounds",
    "partition_statements",
    "plan_parallelism",
    "run_indexed",
    "ExecutionFeedback",
    "PreparedQuery",
    "QueryStat",
    "schema_fingerprint",
    "stats_digest",
    "DEFAULT_WORKLOAD",
    "BackendTiming",
    "compare_backends",
    "NO_RETRY",
    "CircuitBreaker",
    "CircuitOpen",
    "RetryPolicy",
    "FaultInjectingBackend",
    "FaultInjected",
    "FaultPlan",
    "injected_faults",
    "BudgetTracker",
    "QueryBudget",
    "QueryBudgetExceeded",
]
