"""Horizontal sharding: hash partitioning with scatter-gather execution.

:class:`ShardedGraphitiService` is a coordinator over *N* ordinary
:class:`~repro.backends.service.GraphitiService` instances ("shards"),
each with its own connection pools over its own slice of the data, plus
one unsharded *fallback* service holding the full database:

* **Partitioning** (:class:`ShardPartitioner`) — node rows are hashed by
  their primary key; edge rows are co-partitioned with their ``SRC``
  endpoint, so every one-hop expansion from a node finds its outgoing
  edges on the same shard.  Edges whose ``TGT`` endpoint hashes to a
  different shard are additionally collected into a *cross-shard edge
  table* per edge label — the correctness ledger that explains why
  multi-scan plans (joins, traversals) cannot run shard-locally and must
  fall back (the planner seam in :mod:`repro.sql.fragment` enforces
  this; the fallback service, which holds all edges, serves them
  exactly).
* **Scatter** — a fragmentable plan (see :func:`~repro.sql.fragment.fragment_query`)
  is rendered once and executed concurrently on every shard: threads via
  a coordinator executor on the sync path, ``asyncio.gather`` on the
  async path (:class:`AsyncShardedGraphitiService`).  Each shard
  execution goes through the shard service's guarded pipeline — pooled
  checkout, circuit breaker, eviction-aware retry — so a shard member
  dying mid-scatter is retried *within its shard*, never failing the
  whole scatter.
* **Gather** — partial results merge at the coordinator: bag union for
  shard-local plans (DISTINCT/ORDER BY/LIMIT re-applied), distributive
  aggregate folding for merge-aggregable plans
  (:func:`~repro.sql.fragment.merge_partials`).
* **Fallback** — non-fragmentable plans run unchanged on the fallback
  service over the full data: same results, no new entry points, with
  the reason recorded in ``PlanReport.sharding`` and counted in
  ``repro_shard_fallbacks_total``.

All member services share one :class:`~repro.observability.metrics.MetricsRegistry`
and one tracer, so ``repro_query_retries_total``, pool gauges, and the
new ``repro_shard_*`` counters aggregate across the fleet, and
``shard.scatter``/``shard.gather`` spans appear in ``repro explain``
traces.
"""

from __future__ import annotations

import asyncio
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Sequence

from repro.common.budget import QueryBudget
from repro.common.values import Value, is_null
from repro.core.sdt import SOURCE_ATTRIBUTE, TARGET_ATTRIBUTE
from repro.execution.datagen import MockDataGenerator
from repro.graph.schema import GraphSchema
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NOOP_TRACER
from repro.relational.instance import Database, Table
from repro.sql.dialect import SqlDialect
from repro.sql.fragment import FragmentPlan, fragment_query, merge_partials
from repro.sql.pretty import to_sql_text

from repro.backends.async_service import (
    DEFAULT_CHECKOUT_TIMEOUT,
    DEFAULT_MAX_CONCURRENCY,
    AsyncGraphitiService,
)
from repro.backends.executor import run_indexed
from repro.backends.service import DEFAULT_BACKEND, GraphitiService, PreparedQuery

DEFAULT_NUM_SHARDS = 2


def stable_shard_hash(value: Value) -> int:
    """A process-stable hash of a partition-key value.

    ``hash()`` is unusable here: Python randomises string hashing per
    process, and shard assignment must agree between the process that
    loaded the data and any process reasoning about it (benchmarks,
    tests, a future distributed deployment).  Integers map to themselves
    (so small key spaces spread round-robin-ish); everything else goes
    through CRC-32 of its ``repr``.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    return zlib.crc32(repr(value).encode("utf-8"))


class ShardPartitioner:
    """Hash-partitions an induced-schema database across *num_shards*.

    Node rows land on ``hash(primary key) % num_shards``; edge rows land
    on their ``SRC`` endpoint's shard.  Edges whose endpoints hash to
    different shards are also reported per label — the cross-shard edge
    set a per-shard traversal would silently miss.
    """

    def __init__(self, graph_schema: GraphSchema, sdt, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = num_shards
        self._sdt = sdt
        #: table name → index of the column whose value picks the shard.
        self._shard_column: dict[str, int] = {}
        #: edge table name → index of the TGT column (cross-shard check).
        self._target_column: dict[str, int] = {}
        for node_type in graph_schema.node_types:
            table = sdt.table_for(node_type.label)
            attributes = sdt.schema.relation(table).attributes
            self._shard_column[table] = attributes.index(node_type.default_key)
        for edge_type in graph_schema.edge_types:
            table = sdt.table_for(edge_type.label)
            attributes = sdt.schema.relation(table).attributes
            self._shard_column[table] = attributes.index(SOURCE_ATTRIBUTE)
            self._target_column[table] = attributes.index(TARGET_ATTRIBUTE)

    def shard_of(self, value: Value) -> int:
        """The shard a partition-key *value* lives on (NULL → shard 0)."""
        if is_null(value):
            return 0
        return stable_shard_hash(value) % self.num_shards

    def shard_of_row(self, table_name: str, row: tuple) -> int:
        return self.shard_of(row[self._shard_column[table_name]])

    def partition(
        self, database: Database
    ) -> tuple[list[Database], dict[str, Table]]:
        """Split *database* into per-shard instances + cross-shard edges.

        Every row of every table is assigned to exactly one shard (rows
        are conserved: the shard databases are a partition of the input).
        The second element maps each edge label's induced table name to
        the edges whose ``SRC`` and ``TGT`` endpoints live on different
        shards — stored with the ``SRC``-side copy, and the reason
        per-shard traversal is unsound.
        """
        shards = [Database(database.schema) for _ in range(self.num_shards)]
        cross_shard: dict[str, Table] = {}
        for name, table in database.tables.items():
            shard_column = self._shard_column.get(name)
            target_column = self._target_column.get(name)
            crossing: list[tuple] = []
            for row in table.rows:
                shard = (
                    self.shard_of(row[shard_column]) if shard_column is not None else 0
                )
                shards[shard].tables[name].rows.append(row)
                if (
                    target_column is not None
                    and self.shard_of(row[target_column]) != shard
                ):
                    crossing.append(row)
            if target_column is not None:
                cross_shard[name] = Table(table.attributes, crossing)
        return shards, cross_shard


class ShardedGraphitiService:
    """Scatter-gather serving over hash shards, one pool fleet per shard.

    Duck-type compatible with :class:`GraphitiService` for the surfaces
    the CLI and ``repro explain`` use (``run``/``run_many``/``prepare``/
    ``reference``/``load_*``/``metrics``/``set_tracer``/...), so a
    ``--shards N`` flag can swap it in without new entry points.

    ``**service_kwargs`` (pool sizing, retry policy, breaker tuning,
    budgets, ...) are forwarded to the fallback *and* every shard
    service; ``persistent_cache`` only to the fallback, which is the one
    that transpiles (shards execute coordinator-rendered fragments).
    """

    def __init__(
        self,
        graph_schema: GraphSchema,
        num_shards: int = DEFAULT_NUM_SHARDS,
        default_backend: str = DEFAULT_BACKEND,
        registry: MetricsRegistry | None = None,
        tracer=None,
        **service_kwargs: Any,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.graph_schema = graph_schema
        self.num_shards = num_shards
        self._registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        shared = dict(
            service_kwargs, registry=self._registry, tracer=self._tracer
        )
        self._fallback = GraphitiService(graph_schema, default_backend, **shared)
        shard_kwargs = dict(shared)
        shard_kwargs.pop("persistent_cache", None)
        self._shards = [
            GraphitiService(graph_schema, default_backend, **shard_kwargs)
            for _ in range(num_shards)
        ]
        self.partitioner = ShardPartitioner(
            graph_schema, self._fallback.sdt, num_shards
        )
        self.cross_shard_edges: dict[str, Table] = {}
        self._lock = threading.Lock()
        #: (fingerprint, cypher, dialect, level) → (FragmentPlan, rendered
        #: per-dialect shard PreparedQuery cache).
        self._fragments: dict[tuple, tuple[FragmentPlan, dict[str, PreparedQuery]]] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=max(4, num_shards * 2), thread_name_prefix="graphiti-shard"
        )
        self._shard_queries = self._registry.counter(
            "repro_shard_queries_total", "Shard-local fragment executions, by shard."
        )
        self._scatters = self._registry.counter(
            "repro_shard_scatters_total",
            "Queries executed by scatter-gather, by fragment kind.",
        )
        self._fallbacks = self._registry.counter(
            "repro_shard_fallbacks_total",
            "Queries routed to the unsharded fallback backend, by reason.",
        )
        self._fanout = self._registry.histogram(
            "repro_shard_fanout", "Shards fanned out to per scattered query."
        )

    # -- GraphitiService surface (delegated) --------------------------------

    @property
    def default_backend(self) -> str:
        return self._fallback.default_backend

    @property
    def opt_level(self) -> int:
        return self._fallback.opt_level

    @property
    def sdt(self):
        return self._fallback.sdt

    @property
    def database(self) -> Database:
        """The full (unpartitioned) instance, held by the fallback."""
        return self._fallback.database

    @property
    def metrics(self) -> MetricsRegistry:
        return self._registry

    @property
    def tracer(self):
        return self._tracer

    def set_tracer(self, tracer) -> None:
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self._fallback.set_tracer(tracer)
        for shard in self._shards:
            shard.set_tracer(tracer)

    def dialect_of(self, backend_name: str) -> SqlDialect:
        return self._fallback.dialect_of(backend_name)

    def backends(self) -> tuple[str, ...]:
        return self._fallback.backends()

    def cache_info(self):
        return self._fallback.cache_info()

    def query_stats(self):
        return self._fallback.query_stats()

    def reset_query_stats(self) -> None:
        self._fallback.reset_query_stats()
        for shard in self._shards:
            shard.reset_query_stats()

    def persistent_cache_info(self):
        return self._fallback.persistent_cache_info()

    def explain(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
    ) -> str:
        """The engine's own plan for the *unsharded* query text (the
        fallback's connection — shard-local plans are identical modulo
        partition contents)."""
        return self._fallback.explain(cypher_text, backend=backend, opt_level=opt_level)

    def breaker(self, backend: str | None = None):
        return self._fallback.breaker(backend)

    @property
    def slow_queries(self):
        return self._fallback.slow_queries

    # -- data ---------------------------------------------------------------

    def load_database(self, database: Database) -> None:
        """Load the full instance into the fallback and its partition into
        the shards (statistics are collected per slice, so each shard's
        level-2 plans see its own row counts)."""
        shard_databases, cross_shard = self.partitioner.partition(database)
        self._fallback.load_database(database)
        for shard, shard_database in zip(self._shards, shard_databases):
            shard.load_database(shard_database)
        self.cross_shard_edges = cross_shard

    def load_graph(self, graph: object) -> None:
        from repro.transformer.semantics import transform_graph

        sdt = self._fallback.sdt
        self.load_database(transform_graph(sdt.transformer, graph, sdt.schema))

    def load_mock(self, rows_per_table: int, seed: int = 42) -> None:
        generator = MockDataGenerator(
            self.graph_schema, self._fallback.sdt, seed=seed
        )
        self.load_database(generator.induced_instance(rows_per_table))

    def partition_report(self) -> dict:
        """Row placement accounting, for ``--stats`` views and tests."""
        return {
            "shards": self.num_shards,
            "rows_per_shard": [
                shard.database.total_rows() for shard in self._shards
            ],
            "total_rows": self._fallback.database.total_rows(),
            "cross_shard_edges": {
                name: len(table) for name, table in sorted(self.cross_shard_edges.items())
            },
        }

    # -- transpilation + fragmentation --------------------------------------

    def prepare(
        self,
        cypher_text: str,
        dialect: str | SqlDialect | None = None,
        opt_level: int | None = None,
    ) -> PreparedQuery:
        """Fallback-service preparation plus fragment classification.

        The classification is recorded on the prepared query's
        :class:`~repro.sql.planner.PlanReport` (``report.sharding``) so
        ``repro explain`` shows the scatter plan, and cached by plan key
        — it depends only on the optimized algebra, not the shard count.
        """
        prepared = self._fallback.prepare(cypher_text, dialect, opt_level=opt_level)
        self._fragment_for(prepared)
        return prepared

    def transpile_to_sql(
        self,
        cypher_text: str,
        dialect: str | SqlDialect | None = None,
        opt_level: int | None = None,
    ) -> str:
        return self.prepare(cypher_text, dialect, opt_level=opt_level).sql_text

    def fragment_plan(
        self, cypher_text: str, opt_level: int | None = None
    ) -> FragmentPlan:
        """The scatter classification of *cypher_text* (prepared if needed)."""
        return self._fragment_for(self.prepare(cypher_text, opt_level=opt_level))

    def _fragment_for(self, prepared: PreparedQuery) -> FragmentPlan:
        key = (
            prepared.fingerprint,
            prepared.cypher_text,
            prepared.dialect,
            prepared.opt_level,
        )
        with self._lock:
            entry = self._fragments.get(key)
        if entry is None:
            plan = fragment_query(prepared.sql_ast, self._fallback.sdt.schema)
            with self._lock:
                entry = self._fragments.setdefault(key, (plan, {}))
        plan = entry[0]
        if prepared.plan is not None and prepared.plan.sharding is None:
            prepared.plan.sharding = dict(plan.to_dict(), shards=self.num_shards)
        return plan

    def _shard_prepared(
        self, prepared: PreparedQuery, plan: FragmentPlan, backend: str
    ) -> PreparedQuery:
        """The (possibly rewritten) fragment each shard executes, rendered
        in *backend*'s dialect and cached alongside the classification."""
        assert plan.shard_query is not None
        if plan.shard_query is prepared.sql_ast:
            return prepared  # unmodified plan: reuse text and report
        dialect = self.dialect_of(backend)
        key = (
            prepared.fingerprint,
            prepared.cypher_text,
            prepared.dialect,
            prepared.opt_level,
        )
        with self._lock:
            rendered = self._fragments[key][1].get(dialect.name)
        if rendered is not None:
            return rendered
        sql_text = to_sql_text(
            plan.shard_query, self._fallback.sdt.schema, optimized=False,
            dialect=dialect,
        )
        rendered = PreparedQuery(
            prepared.cypher_text,
            plan.shard_query,
            sql_text,
            dialect.name,
            prepared.fingerprint,
            prepared.opt_level,
            prepared.plan,
        )
        with self._lock:
            self._fragments[key][1][dialect.name] = rendered
        return rendered

    # -- execution ----------------------------------------------------------

    def run(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        """Scatter-gather execution (or transparent unsharded fallback)."""
        return self.serve(cypher_text, backend, opt_level, budget)[0]

    def serve(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> tuple[Table, PreparedQuery]:
        """Like :meth:`run`, but also returns the coordinator's
        :class:`PreparedQuery` (``repro explain`` uses it, same contract
        as :meth:`GraphitiService.serve`)."""
        name = backend or self.default_backend
        prepared = self.prepare(cypher_text, self.dialect_of(name), opt_level)
        plan = self._fragment_for(prepared)
        if not plan.fragmentable:
            return self._serve_fallback(cypher_text, plan, name, opt_level, budget)
        with self._tracer.span(
            "query", backend=name, cypher=cypher_text, mode="sharded"
        ) as span:
            started = time.perf_counter()
            partials = self._scatter(prepared, plan, name, budget, span)
            result = self._gather(plan, partials, span)
            self._fallback.record_execution(
                cypher_text, time.perf_counter() - started, backend=name
            )
            span.set("opt_level", prepared.opt_level)
            span.set("rows", len(result.rows))
        return result, prepared

    def _serve_fallback(
        self,
        cypher_text: str,
        plan: FragmentPlan,
        name: str,
        opt_level: int | None,
        budget: QueryBudget | None,
    ) -> tuple[Table, PreparedQuery]:
        self._fallbacks.inc(reason=plan.reason)
        with self._tracer.span(
            "shard.fallback", backend=name, reason=plan.reason
        ):
            return self._fallback.serve(
                cypher_text, backend=name, opt_level=opt_level, budget=budget
            )

    def _scatter(
        self,
        prepared: PreparedQuery,
        plan: FragmentPlan,
        name: str,
        budget: QueryBudget | None,
        parent_span,
    ) -> list[Table]:
        """Execute the shard fragment on every shard concurrently.

        Each shard execution rides that shard service's full guarded
        pipeline (:meth:`GraphitiService._run_prepared`): breaker gate,
        pooled checkout, and eviction-aware retry — so one shard's member
        dying mid-scatter recovers inside the shard instead of failing
        the scatter.  *budget* applies per shard execution (each fragment
        is an independent query against a slice of the data).
        """
        shard_prepared = self._shard_prepared(prepared, plan, name)
        effective = self._fallback._effective_budget(budget)
        self._scatters.inc(kind=plan.kind)
        self._fanout.observe(float(self.num_shards))
        with self._tracer.span(
            "shard.scatter", parent=parent_span, kind=plan.kind,
            shards=self.num_shards, backend=name,
        ) as scatter_span:

            def run_shard(index: int) -> Table:
                shard = self._shards[index]
                tracker = effective.start() if effective is not None else None
                with self._tracer.span(
                    "shard.query", parent=scatter_span, shard=index, backend=name
                ) as shard_span:
                    # execute_fragment applies the shard's *own* parallel
                    # gate: a shard whose local slice still clears the
                    # row threshold partition-scans its fragment.
                    table = shard.execute_fragment(
                        name, prepared.cypher_text, shard_prepared, tracker
                    )
                    shard_span.set("rows", len(table.rows))
                self._shard_queries.inc(shard=str(index))
                return table

            if self.num_shards == 1:
                return [run_shard(0)]
            futures = [
                self._executor.submit(run_shard, index)
                for index in range(self.num_shards)
            ]
            return [future.result() for future in futures]

    def _gather(self, plan: FragmentPlan, partials: list[Table], parent_span) -> Table:
        with self._tracer.span(
            "shard.gather", parent=parent_span, kind=plan.kind,
            partial_rows=sum(len(partial) for partial in partials),
        ) as span:
            result = merge_partials(plan, partials)
            span.set("rows", len(result.rows))
        return result

    def run_many(
        self,
        cypher_texts: Sequence[str],
        workers: int = 4,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> list[Table]:
        """A batch of scatter-gather executions; results in batch order.

        The batch fans across *workers* coordinator threads, each of which
        scatters its query across all shards on the shared shard executor
        (two independent pools, so batch workers never deadlock against
        shard fan-out).
        """
        texts = list(cypher_texts)
        if not texts:
            return []
        name = backend or self.default_backend
        workers = max(1, min(workers, len(texts)))
        dialect = self.dialect_of(name)
        for text in dict.fromkeys(texts):  # warm: classify each query once
            self.prepare(text, dialect, opt_level=opt_level)
        for shard in self._shards:
            shard.pool(name, min_capacity=workers)
        self._fallback.pool(name, min_capacity=workers)
        with self._tracer.span(
            "query.batch", backend=name, queries=len(texts), workers=workers,
            mode="sharded",
        ) as batch_span:
            results: list[Table | None] = [None] * len(texts)

            def execute_one(index: int) -> None:
                with self._tracer.span(
                    "query", parent=batch_span, backend=name, index=index
                ) as span:
                    prepared = self.prepare(texts[index], dialect, opt_level)
                    plan = self._fragment_for(prepared)
                    if not plan.fragmentable:
                        table = self._serve_fallback(
                            texts[index], plan, name, opt_level, budget
                        )[0]
                    else:
                        started = time.perf_counter()
                        partials = self._scatter(prepared, plan, name, budget, span)
                        table = self._gather(plan, partials, span)
                        self._fallback.record_execution(
                            texts[index], time.perf_counter() - started, backend=name
                        )
                    results[index] = table
                    span.set("rows", len(table.rows))

            # Batch fan-out stays off the shard executor: a batch worker
            # blocks on shard futures, so sharing one pool could leave no
            # thread free to run them.
            run_indexed(len(texts), execute_one, workers)
        assert all(table is not None for table in results)
        return results  # type: ignore[return-value]

    def reference(
        self,
        cypher_text: str,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        """Reference evaluation over the *full* database (the fallback's)."""
        return self._fallback.reference(cypher_text, opt_level=opt_level, budget=budget)

    def record_execution(
        self, cypher_text: str, seconds: float, backend: str | None = None
    ) -> None:
        self._fallback.record_execution(cypher_text, seconds, backend=backend)

    # -- pooling / observability --------------------------------------------

    def warm_pool(self, backend: str | None = None, members: int | None = None) -> None:
        """Warm the fallback's and every shard's pool for *backend*."""
        self._fallback.warm_pool(backend, members)
        for shard in self._shards:
            shard.warm_pool(backend, members)

    def pool_snapshots(self) -> dict[str, dict]:
        """The fallback's pools (the coordinator-level view)."""
        return self._fallback.pool_snapshots()

    def shard_stats(self) -> list[dict]:
        """Per-shard pool and cache counters, for ``repro backends --stats``."""
        stats = []
        for index, shard in enumerate(self._shards):
            cache = shard.cache_info()
            stats.append(
                {
                    "shard": index,
                    "rows": shard.database.total_rows(),
                    "queries": int(
                        self._shard_queries.value(shard=str(index))
                    ),
                    "pools": shard.pool_snapshots(),
                    "cache": {
                        "hits": cache.hits,
                        "misses": cache.misses,
                        "currsize": cache.currsize,
                    },
                }
            )
        return stats

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._executor.shutdown(wait=True)
        for shard in self._shards:
            shard.close()
        self._fallback.close()

    def __enter__(self) -> "ShardedGraphitiService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class AsyncShardedGraphitiService:
    """The asyncio twin: scatter via ``asyncio.gather`` over per-shard
    :class:`AsyncGraphitiService` wrappers, merge on the event loop.

    Wraps an existing :class:`ShardedGraphitiService` (shared shards,
    pools, metrics) or builds an owned one from a
    :class:`~repro.graph.schema.GraphSchema` (``**kwargs`` forwarded).
    """

    def __init__(
        self,
        sharded_or_schema: ShardedGraphitiService | GraphSchema,
        *,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        checkout_timeout: float | None = DEFAULT_CHECKOUT_TIMEOUT,
        **sharded_kwargs: Any,
    ) -> None:
        if isinstance(sharded_or_schema, ShardedGraphitiService):
            if sharded_kwargs:
                raise TypeError(
                    "sharded service keyword arguments only apply when "
                    "constructing from a GraphSchema"
                )
            self._sharded = sharded_or_schema
            self._owns_sharded = False
        else:
            self._sharded = ShardedGraphitiService(sharded_or_schema, **sharded_kwargs)
            self._owns_sharded = True
        self.max_concurrency = max_concurrency
        self._fallback_async = AsyncGraphitiService(
            self._sharded._fallback,
            max_concurrency=max_concurrency,
            checkout_timeout=checkout_timeout,
        )
        self._shard_async = [
            AsyncGraphitiService(
                shard,
                max_concurrency=max_concurrency,
                checkout_timeout=checkout_timeout,
            )
            for shard in self._sharded._shards
        ]

    @property
    def sharded(self) -> ShardedGraphitiService:
        return self._sharded

    @property
    def service(self) -> ShardedGraphitiService:
        """CLI compatibility with :class:`AsyncGraphitiService.service`."""
        return self._sharded

    # -- execution ----------------------------------------------------------

    async def run(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        sharded = self._sharded
        name = backend or sharded.default_backend
        prepared = sharded.prepare(cypher_text, sharded.dialect_of(name), opt_level)
        plan = sharded._fragment_for(prepared)
        if not plan.fragmentable:
            sharded._fallbacks.inc(reason=plan.reason)
            with sharded.tracer.span(
                "shard.fallback", backend=name, reason=plan.reason, mode="async"
            ):
                return await self._fallback_async.run(
                    cypher_text, backend=name, opt_level=opt_level, budget=budget
                )
        tracer = sharded.tracer
        with tracer.span(
            "query", backend=name, cypher=cypher_text, mode="sharded-async"
        ) as span:
            started = time.perf_counter()
            partials = await self._scatter(prepared, plan, name, budget, span)
            result = sharded._gather(plan, partials, span)
            sharded._fallback.record_execution(
                cypher_text, time.perf_counter() - started, backend=name
            )
            span.set("opt_level", prepared.opt_level)
            span.set("rows", len(result.rows))
        return result

    async def _scatter(
        self,
        prepared: PreparedQuery,
        plan: FragmentPlan,
        name: str,
        budget: QueryBudget | None,
        parent_span,
    ) -> list[Table]:
        sharded = self._sharded
        tracer = sharded.tracer
        shard_prepared = sharded._shard_prepared(prepared, plan, name)
        effective = sharded._fallback._effective_budget(budget)
        sharded._scatters.inc(kind=plan.kind)
        sharded._fanout.observe(float(sharded.num_shards))
        with tracer.span(
            "shard.scatter", parent=parent_span, kind=plan.kind,
            shards=sharded.num_shards, backend=name, mode="async",
        ) as scatter_span:

            async def run_shard(index: int) -> Table:
                shard_async = self._shard_async[index]
                shard = shard_async.service
                tracker = effective.start() if effective is not None else None
                with tracer.span(
                    "shard.query", parent=scatter_span, shard=index, backend=name
                ) as shard_span:
                    pool = shard.pool(name)
                    runner = shard._parallel_runner(shard_prepared)
                    if runner is not None:
                        # The shard's own parallel gate fired: one offloaded
                        # call covers the whole partition scatter-gather
                        # (same shape as AsyncGraphitiService._serve).
                        table = await shard_async._offload(
                            lambda: shard._run_parallel(
                                pool, name, prepared.cypher_text,
                                shard_prepared, runner, tracker,
                                parent=shard_span,
                            )
                        )
                    else:
                        table = await shard_async._run_prepared(
                            pool, name, prepared.cypher_text, shard_prepared,
                            tracker, shard_span,
                        )
                    shard_span.set("rows", len(table.rows))
                sharded._shard_queries.inc(shard=str(index))
                return table

            outcomes = await asyncio.gather(
                *(run_shard(index) for index in range(sharded.num_shards)),
                return_exceptions=True,
            )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(outcomes)

    async def run_many(
        self,
        cypher_texts: Sequence[str],
        concurrency: int = 4,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> list[Table]:
        """A batch of concurrent scatter-gathers; results in batch order."""
        texts = list(cypher_texts)
        if not texts:
            return []
        sharded = self._sharded
        name = backend or sharded.default_backend
        fan_out = max(1, min(concurrency, self.max_concurrency, len(texts)))
        dialect = sharded.dialect_of(name)
        for text in dict.fromkeys(texts):
            sharded.prepare(text, dialect, opt_level=opt_level)
        for shard in sharded._shards:
            shard.pool(name, min_capacity=fan_out)
        sharded._fallback.pool(name, min_capacity=fan_out)
        slots = asyncio.Semaphore(fan_out)
        with sharded.tracer.span(
            "query.batch", backend=name, queries=len(texts), concurrency=fan_out,
            mode="sharded-async",
        ):

            async def one(text: str) -> Table:
                async with slots:
                    return await self.run(
                        text, backend=name, opt_level=opt_level, budget=budget
                    )

            outcomes = await asyncio.gather(
                *(one(text) for text in texts), return_exceptions=True
            )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(outcomes)

    async def reference(
        self,
        cypher_text: str,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        return await self._fallback_async._offload(
            self._sharded.reference, cypher_text, opt_level, budget
        )

    # -- data ---------------------------------------------------------------

    async def load_database(self, database: Database) -> None:
        await self._fallback_async._offload(self._sharded.load_database, database)

    async def load_graph(self, graph: object) -> None:
        await self._fallback_async._offload(self._sharded.load_graph, graph)

    async def load_mock(self, rows_per_table: int, seed: int = 42) -> None:
        await self._fallback_async._offload(
            self._sharded.load_mock, rows_per_table, seed
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        for shard_async in self._shard_async:
            shard_async.close()
        self._fallback_async.close()
        if self._owns_sharded:
            self._sharded.close()

    async def aclose(self) -> None:
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    async def __aenter__(self) -> "AsyncShardedGraphitiService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()


__all__ = [
    "DEFAULT_NUM_SHARDS",
    "AsyncShardedGraphitiService",
    "ShardPartitioner",
    "ShardedGraphitiService",
    "stable_shard_hash",
]
