"""Deterministic fault injection for resilience testing.

:class:`FaultInjectingBackend` is a registered backend (name ``"faulty"``)
that wraps an in-memory SQLite engine and executes a shared
:class:`FaultPlan` — a deterministic schedule of failures indexed by
global operation count, so a test can say "the 2nd execute kills its
connection, the 3rd member spawn fails" and assert exactly what the
serving stack did about it.

Fault kinds:

``die_on_executes``
    Close the member's engine connection *before* running the statement —
    the execute raises and every later liveness probe fails, modelling an
    engine process that died mid-query.  The pool should evict and
    respawn; the service should retry on a healthy member.
``error_on_executes``
    Raise :class:`FaultInjected` while leaving the connection healthy —
    a plain query error, which must *not* be retried.
``hang_on_executes``
    Sleep ``hang_seconds`` before running — a slow member, for timeout
    and latency tests.
``fail_spawns``
    Raise from ``connect`` on the N-th member creation — a checkout-path
    spawn failure, which the service's retry should absorb.

The backend reports ``is_available() == False`` unless a plan is
installed (:func:`install_plan` / :func:`injected_faults`), so it never
appears in ``available_backends()`` during normal operation and other
test modules are unaffected.  Counters are global across all members of
a pool — that is what makes "the N-th execute anywhere" expressible.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.common.budget import BudgetTracker, QueryBudget
from repro.relational.instance import Database, Table
from repro.relational.schema import RelationalSchema
from repro.sql.dialect import SQLITE

from repro.backends.base import ExecutionBackend
from repro.backends.registry import register_backend
from repro.backends.sqlite import SqliteMemoryBackend


class FaultInjected(RuntimeError):
    """An injected failure (spawn refusal or transient engine error)."""


class FaultPlan:
    """A deterministic, thread-safe failure schedule.

    Indices are 1-based and count operations *globally* across every
    member sharing the plan.  ``events`` records what fired, in order,
    as ``(kind, index)`` pairs for test assertions; :meth:`heal` clears
    all remaining schedules (the engine "comes back up").
    """

    def __init__(
        self,
        *,
        die_on_executes: tuple[int, ...] = (),
        error_on_executes: tuple[int, ...] = (),
        hang_on_executes: tuple[int, ...] = (),
        hang_seconds: float = 0.0,
        fail_spawns: tuple[int, ...] = (),
    ) -> None:
        self._lock = threading.Lock()
        self._die = set(die_on_executes)
        self._error = set(error_on_executes)
        self._hang = set(hang_on_executes)
        self.hang_seconds = hang_seconds
        self._fail_spawns = set(fail_spawns)
        self.executes = 0
        self.spawns = 0
        self.events: list[tuple[str, int]] = []

    def on_spawn(self) -> None:
        """Called per member creation; raises when this spawn is doomed."""
        with self._lock:
            self.spawns += 1
            index = self.spawns
            doomed = index in self._fail_spawns
            if doomed:
                self.events.append(("fail_spawn", index))
        if doomed:
            raise FaultInjected(f"injected spawn failure (spawn #{index})")

    def on_execute(self) -> str | None:
        """Called per statement; the fault kind to apply, or ``None``."""
        with self._lock:
            self.executes += 1
            index = self.executes
            if index in self._die:
                self.events.append(("die", index))
                return "die"
            if index in self._error:
                self.events.append(("error", index))
                return "error"
            if index in self._hang:
                self.events.append(("hang", index))
                return "hang"
            return None

    def heal(self) -> None:
        """Clear every remaining scheduled fault."""
        with self._lock:
            self._die.clear()
            self._error.clear()
            self._hang.clear()
            self._fail_spawns.clear()


_active_plan: FaultPlan | None = None
_plan_lock = threading.Lock()


def install_plan(plan: FaultPlan) -> None:
    """Make *plan* the active schedule (and ``"faulty"`` available)."""
    global _active_plan
    with _plan_lock:
        _active_plan = plan


def clear_plan() -> None:
    global _active_plan
    with _plan_lock:
        _active_plan = None


def active_plan() -> FaultPlan | None:
    with _plan_lock:
        return _active_plan


@contextmanager
def injected_faults(**schedule) -> Iterator[FaultPlan]:
    """``with injected_faults(die_on_executes=(2,)) as plan: ...`` —
    installs a fresh :class:`FaultPlan` for the block, always clears it."""
    plan = FaultPlan(**schedule)
    install_plan(plan)
    try:
        yield plan
    finally:
        clear_plan()


@register_backend
class FaultInjectingBackend(ExecutionBackend):
    """An in-memory SQLite backend that executes the active fault plan."""

    name = "faulty"
    dialect = SQLITE

    def __init__(self, schema: RelationalSchema) -> None:
        super().__init__(schema)
        self._inner = SqliteMemoryBackend(schema)

    @classmethod
    def is_available(cls) -> bool:
        return active_plan() is not None

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> None:
        plan = active_plan()
        if plan is not None:
            plan.on_spawn()
        self._inner.connect()

    def close(self) -> None:
        self._inner.close()

    def clone_for_pool(self) -> ExecutionBackend | None:
        # No storage sharing: every pool member is its own loaded copy,
        # which keeps the plan's spawn counter meaningful per member.
        return None

    # -- loading -----------------------------------------------------------

    @property
    def table_stats(self):
        return self._inner.table_stats

    def insert_rows(self, relation, rows, batch_size=1000, commit_mode="end"):
        self._inner.insert_rows(
            relation, rows, batch_size=batch_size, commit_mode=commit_mode
        )

    def bulk_load(
        self, database: Database, batch_size: int = 1000, stats=None
    ) -> None:
        self._inner.bulk_load(database, batch_size=batch_size, stats=stats)

    def create_indexes(self) -> None:
        self._inner.create_indexes()

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        sql_text: str,
        budget: "QueryBudget | BudgetTracker | None" = None,
    ) -> Table:
        plan = active_plan()
        action = plan.on_execute() if plan is not None else None
        if action == "die":
            # The engine "process" dies out from under the statement: the
            # execute below raises, and every later ping fails too.
            self._inner.connection.close()
        elif action == "error":
            raise FaultInjected("injected transient engine error")
        elif action == "hang" and plan is not None:
            time.sleep(plan.hang_seconds)
        return self._inner.execute(sql_text, budget=budget)

    def ping(self) -> bool:
        # Probes bypass the plan: health checks must observe faults'
        # consequences (a closed connection), not consume fault indices.
        return self._inner.ping()

    def explain(self, sql_text: str) -> str:
        return self._inner.explain(sql_text)

    def time(self, sql_text: str, repeats: int = 3) -> float:
        return self._inner.time(sql_text, repeats=repeats)
