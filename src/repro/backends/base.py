"""The :class:`ExecutionBackend` abstraction.

An execution backend owns one connection to a relational engine and knows
how to (1) materialise a :class:`~repro.relational.schema.RelationalSchema`
as DDL in the engine's dialect, (2) bulk-load a
:class:`~repro.relational.instance.Database` in batches, (3) execute SQL
text and marshal results back into :class:`~repro.relational.instance.Table`
values (so results compare directly against the reference bag-semantics
evaluator), and (4) report timings and query plans.

:class:`DbApiBackend` implements the whole contract over any DB-API-2.0-ish
connection (qmark paramstyle); concrete engines usually only provide
``_open_connection`` plus value-conversion tweaks.  Engines that cannot be
imported in the current environment raise :class:`BackendUnavailable` from
``connect`` and report ``is_available() == False`` so callers (registry,
benchmarks, tests) can skip them gracefully.

Threading: one backend instance is one connection and must only be used by
one thread at a time.  Concurrency comes from *many* instances — see
:class:`repro.backends.pool.ConnectionPool`, which keeps warmed instances
and uses :meth:`ExecutionBackend.clone_for_pool` to stamp out additional
members cheaply (sharing a database file or an in-memory engine) instead of
re-loading the data per member where the engine allows it.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Any, Iterable, Sequence

from repro.common.budget import (
    BudgetTracker,
    QueryBudget,
    QueryBudgetExceeded,
    as_tracker,
)
from repro.common.values import NULL, Value, is_null
from repro.relational.instance import Database, Table
from repro.relational.schema import RelationalSchema
from repro.sql.dialect import SQLITE, SqlDialect
from repro.sql.pretty import create_table_ddl
from repro.sql.stats import TableStats, collect_stats


class BackendUnavailable(RuntimeError):
    """The requested engine is not importable/usable in this environment."""


class ExecutionBackend(ABC):
    """Abstract interface every execution engine implements."""

    #: Registry name; subclasses override.
    name: str = "abstract"
    #: SQL dialect the backend's SQL text must be rendered in.
    dialect: SqlDialect = SQLITE

    def __init__(self, schema: RelationalSchema) -> None:
        self.schema = schema
        self._table_stats: dict[str, TableStats] | None = None
        self._stats_source: Database | None = None

    @property
    def table_stats(self) -> dict[str, TableStats] | None:
        """Row-count + distinct-value statistics per loaded relation (fuel
        for the level-2 optimizer's cardinality estimator).

        ``None`` until data is loaded.  Collected lazily on first access
        from the last bulk-loaded database — callers that never consult
        statistics (one-shot benchmark loads) pay nothing for them.
        """
        if self._table_stats is None and self._stats_source is not None:
            self._table_stats = collect_stats(self._stats_source)
            self._stats_source = None
        return self._table_stats

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def is_available(cls) -> bool:
        """Whether the engine can run in this environment."""
        return True

    @abstractmethod
    def connect(self) -> None:
        """Open the connection (idempotent); DDL runs lazily before first use."""

    @abstractmethod
    def close(self) -> None:
        """Release the connection and any on-disk state."""

    def __enter__(self) -> "ExecutionBackend":
        self.connect()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def clone_for_pool(self) -> "ExecutionBackend | None":
        """A new, connected backend sharing this one's loaded data — or
        ``None`` when the engine cannot share storage between connections.

        :class:`~repro.backends.pool.ConnectionPool` calls this on its
        primary (warmed, schema-loaded) member when growing; a ``None``
        return makes the pool fall back to loading a fresh member from the
        source database (per-worker clone loading).  Implementations must
        return a backend that is safe to use from a different thread than
        the one that created the primary.
        """
        return None

    # -- loading -----------------------------------------------------------

    @abstractmethod
    def insert_rows(
        self,
        relation: str,
        rows: Iterable[Sequence[Value]],
        batch_size: int = 1000,
        commit_mode: str = "end",
    ) -> None:
        """Append *rows* to *relation* in *batch_size* ``executemany`` chunks.

        *commit_mode* is ``"end"`` (one commit when all rows are in — the
        default and the fast path), ``"batch"`` (a commit per chunk; only
        useful to measure what the single-transaction load saves), or
        ``"none"`` (the caller owns the transaction, as :meth:`bulk_load`
        does to wrap a whole multi-table load in one commit).
        """

    def bulk_load(
        self,
        database: Database,
        batch_size: int = 1000,
        stats: dict[str, TableStats] | None = None,
    ) -> None:
        """Load every table of *database* (schemas must agree) in a single
        transaction — one commit once every table is in.

        Also makes per-table statistics (row counts, distinct values per
        column) available through :attr:`table_stats` — collected lazily on
        first access, so loads whose statistics nobody reads cost nothing
        extra.  A caller that has already collected statistics for
        *database* (the service does, at ``load_database`` time) passes
        them as *stats*, so the same data is never scanned twice.  Every
        call rebinds the statistics, which therefore describe the most
        recently loaded database.
        """
        for name, table in database.tables.items():
            self.insert_rows(name, table.rows, batch_size=batch_size, commit_mode="none")
        self._commit_load()
        self._table_stats = stats
        self._stats_source = None if stats is not None else database

    def _commit_load(self) -> None:
        """Commit an in-flight bulk load (hook; no-op for autocommit engines)."""

    @abstractmethod
    def create_indexes(self) -> None:
        """Index declared primary/foreign keys (fair benchmark comparisons)."""

    # -- execution ---------------------------------------------------------

    @abstractmethod
    def execute(
        self,
        sql_text: str,
        budget: "QueryBudget | BudgetTracker | None" = None,
    ) -> Table:
        """Run *sql_text*, returning the result as a :class:`Table`.

        *budget* bounds the statement where the engine allows: the row
        limit is enforced by incremental fetching, the wall-clock limit by
        a native interrupt mechanism where one exists (sqlite progress
        handler, duckdb ``interrupt``).  A tripped budget raises
        :class:`~repro.common.budget.QueryBudgetExceeded`; the connection
        stays usable (guards abort the statement, not the session).
        """

    def ping(self) -> bool:
        """Cheap liveness probe: can this backend still run a statement?

        Must never open a new connection — a dead member should report
        dead, not silently resurrect (the pool owns respawn policy).  The
        default refuses when no connection is visibly open (a falsy or
        missing ``connection`` attribute), because :meth:`execute` would
        otherwise reconnect on the way to the probe statement; subclasses
        whose connection state lives elsewhere must override this with an
        equally non-reconnecting check (as :class:`DbApiBackend` does).
        """
        if getattr(self, "connection", None) is None:
            return False
        try:
            self.execute("SELECT 1")
        except Exception:
            return False
        return True

    @abstractmethod
    def explain(self, sql_text: str) -> str:
        """The engine's query plan for *sql_text*, as display text."""

    def time(self, sql_text: str, repeats: int = 3) -> float:
        """Median wall-clock execution time of *sql_text* in seconds."""
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            self.execute(sql_text)
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]


class DbApiBackend(ExecutionBackend):
    """Shared implementation over a DB-API connection (qmark paramstyle).

    Subclasses provide :meth:`_open_connection` and may override the value
    conversion hooks (:meth:`_to_db`, :meth:`_from_db`) and
    :meth:`_column_types` (typed-DDL engines infer types at load time, so
    they defer DDL to :meth:`bulk_load`; see the DuckDB backend).
    """

    def __init__(self, schema: RelationalSchema) -> None:
        super().__init__(schema)
        self.connection: Any = None
        self._schema_created = False

    # -- hooks -------------------------------------------------------------

    @abstractmethod
    def _open_connection(self) -> Any:
        """Open and return the raw engine connection."""

    def _to_db(self, value: Value) -> Any:
        """Convert a repro value for a bound parameter."""
        if isinstance(value, bool):
            return int(value)
        if is_null(value):
            return None
        return value

    def _from_db(self, value: Any) -> Value:
        """Convert an engine result cell back into a repro value."""
        if value is None:
            return NULL
        return value

    def _column_types(self) -> dict[str, dict[str, str]] | None:
        """DDL type hints per relation/attribute (``None`` = untyped)."""
        return None

    # -- lifecycle ---------------------------------------------------------

    def connect(self) -> None:
        if not type(self).is_available():
            raise BackendUnavailable(
                f"backend {self.name!r} is not available in this environment"
            )
        if self.connection is None:
            self.connection = self._open_connection()

    def _ensure_schema(self) -> None:
        # Deferred past connect() so typed-DDL engines can first observe
        # the data they are about to load (infer_column_types).
        if self._schema_created:
            return
        for statement in create_table_ddl(
            self.schema, self.dialect, self._column_types()
        ):
            self.connection.execute(statement)
        self._commit()
        self._schema_created = True

    def _commit(self) -> None:
        commit = getattr(self.connection, "commit", None)
        if commit is not None:
            commit()

    def close(self) -> None:
        if self.connection is not None:
            self.connection.close()
            self.connection = None
        self._schema_created = False

    def _ensure_connected(self) -> None:
        if self.connection is None:
            self.connect()
        self._ensure_schema()

    # -- loading -----------------------------------------------------------

    def insert_rows(
        self,
        relation: str,
        rows: Iterable[Sequence[Value]],
        batch_size: int = 1000,
        commit_mode: str = "end",
    ) -> None:
        if commit_mode not in ("end", "batch", "none"):
            raise ValueError(f"unknown commit mode {commit_mode!r}")
        self._ensure_connected()
        relation_def = self.schema.relation(relation)
        placeholders = ", ".join("?" for _ in relation_def.attributes)
        statement = (
            f"INSERT INTO {self.dialect.quote(relation)} VALUES ({placeholders})"
        )
        batch: list[tuple[Any, ...]] = []
        for row in rows:
            batch.append(tuple(self._to_db(v) for v in row))
            if len(batch) >= batch_size:
                self.connection.executemany(statement, batch)
                if commit_mode == "batch":
                    self._commit()
                batch.clear()
        if batch:
            self.connection.executemany(statement, batch)
        if commit_mode != "none":
            self._commit()

    def _commit_load(self) -> None:
        self._commit()

    def create_indexes(self) -> None:
        self._ensure_connected()
        quote = self.dialect.quote
        counter = 0
        for constraint in (
            *self.schema.constraints.primary_keys,
            *self.schema.constraints.foreign_keys,
        ):
            counter += 1
            self.connection.execute(
                f"CREATE INDEX IF NOT EXISTS {quote(f'idx{counter}')} "
                f"ON {quote(constraint.relation)} ({quote(constraint.attribute)})"
            )
        self._commit()

    # -- execution ---------------------------------------------------------

    #: How many rows to fetch per round when a row budget is active —
    #: large enough to amortise the per-batch budget check, small enough
    #: that a runaway result stops within one batch of its limit.
    _BUDGET_FETCH_SIZE = 1024

    def execute(
        self,
        sql_text: str,
        budget: "QueryBudget | BudgetTracker | None" = None,
    ) -> Table:
        self._ensure_connected()
        tracker = as_tracker(budget)
        if tracker is None:
            cursor = self.connection.execute(sql_text)
            attributes = tuple(
                description[0] for description in cursor.description or ()
            )
            rows = [
                tuple(self._from_db(v) for v in row) for row in cursor.fetchall()
            ]
            return Table(dedup_attributes(attributes), rows)
        guard = self._install_budget_guard(tracker)
        try:
            cursor = self.connection.execute(sql_text)
            attributes = tuple(
                description[0] for description in cursor.description or ()
            )
            rows = self._fetch_budgeted(cursor, tracker)
        except QueryBudgetExceeded:
            raise
        except Exception as error:
            if guard is not None and guard.tripped:
                raise QueryBudgetExceeded(
                    f"query interrupted by the {self.name} engine after "
                    f"{tracker.elapsed_seconds:.3f}s, over the budget of "
                    f"{tracker.budget.timeout_seconds:g}s",
                    dimension="timeout",
                    limit=tracker.budget.timeout_seconds,
                    rows_produced=tracker.rows_produced,
                    depth_reached=tracker.depth_reached or None,
                    elapsed_seconds=tracker.elapsed_seconds,
                    stage="engine",
                ) from error
            raise
        finally:
            if guard is not None:
                guard.cancel()
        tracker.check_timeout(stage="engine")
        return Table(dedup_attributes(attributes), rows)

    def _fetch_budgeted(self, cursor: Any, tracker: BudgetTracker) -> list:
        """Drain *cursor* incrementally, charging the row budget per batch
        so a runaway result set stops near its limit instead of being
        materialised whole before anyone looks at its size."""
        rows: list = []
        while True:
            batch = cursor.fetchmany(self._BUDGET_FETCH_SIZE)
            if not batch:
                return rows
            rows.extend(
                tuple(self._from_db(v) for v in row) for row in batch
            )
            tracker.charge_rows(len(batch), stage="engine")

    def _install_budget_guard(self, tracker: BudgetTracker):
        """Arm the engine's native interrupt mechanism for *tracker*'s
        wall-clock deadline, returning a guard object with a ``tripped``
        flag and a ``cancel()`` method — or ``None`` when the engine has
        no such mechanism (the deadline is then only checked between
        fetch batches and after the statement)."""
        return None

    def ping(self) -> bool:
        if self.connection is None:
            return False
        try:
            self.connection.execute("SELECT 1").fetchall()
        except Exception:
            return False
        return True

    def explain(self, sql_text: str) -> str:
        self._ensure_connected()
        cursor = self.connection.execute(
            f"{self.dialect.explain_prefix} {sql_text}"
        )
        return "\n".join(
            " ".join(str(cell) for cell in row) for row in cursor.fetchall()
        )

    def time(self, sql_text: str, repeats: int = 3) -> float:
        """Median execution time, fetching raw rows (no value conversion)."""
        self._ensure_connected()
        samples = []
        for _ in range(repeats):
            start = time.perf_counter()
            cursor = self.connection.execute(sql_text)
            cursor.fetchall()
            samples.append(time.perf_counter() - start)
        samples.sort()
        return samples[len(samples) // 2]


def infer_column_types(
    database: Database, dialect: SqlDialect
) -> dict[str, dict[str, str]]:
    """DDL type hints for *database*'s columns, unified over all their values.

    Typed-DDL engines (DuckDB, the ANSI display dialect) need a type per
    column; the repro's values are dynamically typed, so scan the data:
    all-integer columns type as integers, an int/float mix widens to the
    real type, and any string (or any other mix) falls back to the text
    type, which every value converts into.  Columns with no non-null
    values use the dialect default.
    """
    hints: dict[str, dict[str, str]] = {}
    for name, table in database.tables.items():
        per_column: dict[str, str] = {}
        for index, attribute in enumerate(table.attributes):
            per_column[attribute] = _unified_type(
                (row[index] for row in table.rows), dialect
            )
        hints[name] = per_column
    return hints


def _unified_type(values, dialect: SqlDialect) -> str:
    saw_int = saw_real = False
    for value in values:
        if is_null(value):
            continue
        if isinstance(value, bool) or isinstance(value, int):
            saw_int = True
        elif isinstance(value, float):
            saw_real = True
        else:
            return dialect.text_type
    if saw_real:
        return dialect.real_type
    if saw_int:
        return dialect.integer_type
    return dialect.default_column_type


def dedup_attributes(attributes: tuple[str, ...]) -> tuple[str, ...]:
    """Engines may report duplicate column names for SELECT *; uniquify."""
    seen: dict[str, int] = {}
    out = []
    for attribute in attributes:
        if attribute in seen:
            seen[attribute] += 1
            out.append(f"{attribute}:{seen[attribute]}")
        else:
            seen[attribute] = 0
            out.append(attribute)
    return tuple(out)
