"""Cross-backend benchmark harness (``repro bench-backends``).

Loads one mock dataset into every available backend through a
:class:`~repro.backends.service.GraphitiService` and measures each query of
a workload on each engine, cross-checking the returned bags against the
reference evaluator so a fast-but-wrong engine cannot silently win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.relational.instance import tables_equivalent

from repro.backends.service import GraphitiService

#: The Figure-14 EMP/DEPT schema — small, but exercises joins, outer joins,
#: aggregation, and correlated EXISTS, which is where engines diverge.
DEFAULT_SCHEMA = GraphSchema.of(
    [NodeType("EMP", ("id", "name")), NodeType("DEPT", ("dnum", "dname"))],
    [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
)

DEFAULT_WORKLOAD: dict[str, str] = {
    "scan": "MATCH (n:EMP) RETURN n.name",
    "join": "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN n.name, m.dname",
    "aggregate": "MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) RETURN m.dname, Count(*)",
    "optional": (
        "MATCH (n:EMP) OPTIONAL MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) "
        "RETURN n.name, m.dname"
    ),
    "exists": (
        "MATCH (n:EMP) WHERE EXISTS { MATCH (n:EMP)-[e:WORK_AT]->(m:DEPT) } "
        "RETURN n.name"
    ),
}


@dataclass(frozen=True)
class BackendTiming:
    """One (backend, query) measurement."""

    backend: str
    query: str
    seconds: float
    rows: int
    matches_reference: bool

    def format(self) -> str:
        check = "ok" if self.matches_reference else "MISMATCH"
        return (
            f"{self.backend:15} {self.query:10} "
            f"{self.seconds * 1000:8.2f} ms  {self.rows:7} rows  [{check}]"
        )


def compare_backends(
    graph_schema: GraphSchema | None = None,
    workload: dict[str, str] | None = None,
    rows_per_table: int = 2000,
    repeats: int = 3,
    backends: tuple[str, ...] | None = None,
    check_small: int = 25,
    seed: int = 42,
) -> list[BackendTiming]:
    """Per-backend timings for *workload* over mock data.

    Result correctness is cross-checked against the reference evaluator on
    a small instance (``check_small`` rows per table) — the reference
    evaluator nested-loops joins and re-evaluates correlated subqueries per
    row, so validating at full benchmark scale would dominate the run.
    """
    graph_schema = graph_schema or DEFAULT_SCHEMA
    workload = workload or DEFAULT_WORKLOAD

    with GraphitiService(graph_schema) as checker:
        checker.load_mock(check_small, seed=seed)
        names = backends or checker.backends()
        expected = {label: checker.reference(text) for label, text in workload.items()}
        matches: dict[tuple[str, str], bool] = {}
        for name in names:
            for label, text in workload.items():
                actual = checker.run(text, backend=name)
                matches[(name, label)] = tables_equivalent(expected[label], actual)

    results: list[BackendTiming] = []
    with GraphitiService(graph_schema) as service:
        service.load_mock(rows_per_table, seed=seed)
        for name in names:
            for label, text in workload.items():
                seconds = service.time(text, backend=name, repeats=repeats)
                rows = len(service.run(text, backend=name))
                results.append(
                    BackendTiming(name, label, seconds, rows, matches[(name, label)])
                )
    return results
