"""Sharded scatter-gather benchmark: QPS/p95 sharded vs single-backend.

The third tracked perf baseline (``BENCH_sharding.json``, alongside the
optimizer-latency and concurrency ones).  One fixed mixed batch of Cypher
texts over the SOCIAL universe is served two ways from the same mock
dataset:

* **single** — one unsharded :class:`~repro.backends.service.GraphitiService`
  driving ``run_many`` at the same coordinator fan-out (the baseline); and
* **sharded** — a :class:`~repro.backends.sharding.ShardedGraphitiService`
  at each requested shard count (2/4/8 by default), scattering fragmentable
  plans across per-shard pools and merging at the coordinator.

The workload is deliberately fragment-shaped — single-relation scans,
filters, COUNT/AVG/grouped aggregates, DISTINCT, and ORDER BY+LIMIT over a
unique key — plus one join query that is *non-fragmentable* by design, so
every report also exercises (and counts) the transparent unsharded
fallback path.

Correctness gates the numbers twice, exactly as ``BENCH_throughput.json``
does:

* on a small instance every query is checked bag-equivalent against the
  reference evaluator at every shard count, in both the threaded and the
  asyncio scatter lane, and
* at bench scale every sharded batch is checked element-wise against the
  single-backend batch (any merge error or lost partial fails the run).

Scatter speedup needs hardware: ``meta.cpu_count`` is recorded and
``meta.note`` carries the shared single-CPU qualifier from
:func:`repro.backends.throughput.speedup_note`, so sharded-vs-single QPS
is only meaningful (and only asserted by the pytest wrapper) on
multi-core hosts.
"""

from __future__ import annotations

import asyncio
import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.benchmarks.universes import SOCIAL
from repro.relational.instance import tables_equivalent

from repro.backends.service import GraphitiService
from repro.backends.sharding import AsyncShardedGraphitiService, ShardedGraphitiService
from repro.backends.throughput import available_cpus, build_batch, speedup_note

#: Fragment-shaped queries (single base relation each) plus one join that
#: the classifier rejects — the bench must exercise the fallback path too.
SHARD_WORKLOAD: dict[str, str] = {
    "filter-scan": "MATCH (u:USER) WHERE u.age > 30 RETURN u.uname, u.age",
    "node-count": "MATCH (p:POST) RETURN Count(*)",
    "grouped-count": "MATCH (u:USER) RETURN u.age, Count(*)",
    "avg-score": "MATCH (p:POST) RETURN Avg(p.score)",
    "top-posts": "MATCH (p:POST) RETURN p.pid, p.score ORDER BY p.pid LIMIT 25",
    "distinct-age": "MATCH (u:USER) RETURN DISTINCT u.age",
    # One hop = three base relations once co-partitioned by SRC — the
    # classifier falls back, transparently, and the bench counts it.
    "fallback-one-hop": (
        "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN a.uname, Count(*)"
    ),
}

SHARD_COUNTS = (2, 4, 8)

#: Coordinator-side batch fan-out (matches BENCH_throughput's 4-worker bar).
DEFAULT_WORKERS = 4

DEFAULT_BACKEND = "sqlite-memory"


# ---------------------------------------------------------------------------
# correctness: every query vs the reference evaluator, per shard count
# ---------------------------------------------------------------------------


def validate_sharded(
    shard_counts: tuple[int, ...],
    backend: str = DEFAULT_BACKEND,
    check_rows: int = 30,
    seed: int = 42,
) -> dict[str, dict[str, bool]]:
    """Bag-equivalence of every workload query against the reference
    evaluator at every shard count (small instance — the reference
    evaluator nested-loops joins), in both scatter lanes.

    The async lane drives the *same* coordinator through
    :class:`AsyncShardedGraphitiService`, so ``True`` in both lanes means
    threaded and asyncio scatter-gather agree with the reference (and
    hence with each other) on every query — including the merged
    aggregates, the re-sorted ORDER BY, and the unsharded fallback.
    """
    verdicts: dict[str, dict[str, bool]] = {}
    for num_shards in shard_counts:
        with ShardedGraphitiService(
            SOCIAL.graph_schema, num_shards=num_shards, default_backend=backend
        ) as coordinator:
            coordinator.load_mock(check_rows, seed=seed)
            expected = {
                text: coordinator.reference(text)
                for text in SHARD_WORKLOAD.values()
            }
            sync_ok = all(
                tables_equivalent(expected[text], coordinator.run(text))
                for text in SHARD_WORKLOAD.values()
            )

            async def check_async() -> bool:
                async with AsyncShardedGraphitiService(coordinator) as async_coord:
                    results = [
                        await async_coord.run(text)
                        for text in SHARD_WORKLOAD.values()
                    ]
                return all(
                    tables_equivalent(expected[text], table)
                    for text, table in zip(SHARD_WORKLOAD.values(), results)
                )

            verdicts[str(num_shards)] = {
                "threads": sync_ok,
                "async": asyncio.run(check_async()),
            }
    return verdicts


# ---------------------------------------------------------------------------
# throughput: sharded vs single-backend QPS and p95
# ---------------------------------------------------------------------------


def _latency_snapshot(service) -> dict[str, dict | None]:
    """Per-workload p50/p95 from the service's current QueryStat samples."""
    return {
        label: next(
            (
                {
                    "p50_ms": round(stat.p50_seconds * 1000, 3),
                    "p95_ms": round(stat.p95_seconds * 1000, 3),
                    "executions": stat.executions,
                }
                for stat in service.query_stats()
                if stat.cypher_text == text
            ),
            None,
        )
        for label, text in SHARD_WORKLOAD.items()
    }


def _timed_batches(service, batch, workers: int, repeats: int):
    """Best wall time over *repeats* runs; returns (first tables, best wall)."""
    first_tables = None
    best_wall = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        tables = service.run_many(batch, workers=workers)
        best_wall = min(best_wall, time.perf_counter() - start)
        if first_tables is None:
            first_tables = tables
    return first_tables, best_wall


def measure_sharding(
    rows_per_table: int = 2000,
    batch_size: int = 40,
    repeats: int = 3,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    backend: str = DEFAULT_BACKEND,
    workers: int = DEFAULT_WORKERS,
    seed: int = 42,
) -> dict:
    """Single-backend baseline plus one entry per shard count, all serving
    the identical batch from the identical mock dataset, each sharded batch
    checked element-wise against the single-backend one."""
    batch = build_batch(batch_size, SHARD_WORKLOAD)

    with GraphitiService(SOCIAL.graph_schema, default_backend=backend) as single:
        single.load_mock(rows_per_table, seed=seed)
        single.warm_pool(backend, workers)
        single.reset_query_stats()
        single_tables, single_wall = _timed_batches(single, batch, workers, repeats)
        single_qps = len(batch) / single_wall
        baseline = {
            "backend": backend,
            "workers": workers,
            "qps": round(single_qps, 1),
            "wall_ms": round(single_wall * 1000, 2),
            "latency": _latency_snapshot(single),
        }
        reference_tables = dict(zip(batch, single_tables))

    sharded_entries: list[dict] = []
    for num_shards in shard_counts:
        with ShardedGraphitiService(
            SOCIAL.graph_schema, num_shards=num_shards, default_backend=backend
        ) as coordinator:
            coordinator.load_mock(rows_per_table, seed=seed)
            coordinator.warm_pool(backend, workers)
            # Untimed warmup: fill the transpilation and fragment caches so
            # the lane measures scatter-gather serving, not compilation.
            coordinator.run_many(batch[: len(SHARD_WORKLOAD)], workers=workers)
            coordinator.reset_query_stats()
            tables, wall = _timed_batches(coordinator, batch, workers, repeats)
            qps = len(batch) / wall
            consistent = all(
                tables_equivalent(reference_tables[text], table)
                for text, table in zip(batch, tables)
            )
            scatters = coordinator.metrics.counter("repro_shard_scatters_total")
            fallbacks = coordinator.metrics.counter("repro_shard_fallbacks_total")
            sharded_entries.append(
                {
                    "shards": num_shards,
                    "backend": backend,
                    "workers": workers,
                    "qps": round(qps, 1),
                    "wall_ms": round(wall * 1000, 2),
                    "speedup_vs_single": round(qps / single_qps, 3)
                    if single_qps
                    else 0.0,
                    "latency": _latency_snapshot(coordinator),
                    "consistent_with_single": consistent,
                    "scatters": {
                        kind: int(scatters.value(kind=kind))
                        for kind in ("shard_local", "merge_aggregable")
                        if scatters.value(kind=kind)
                    },
                    "fallbacks": int(fallbacks.total()),
                    "per_shard_queries": [
                        stats["queries"] for stats in coordinator.shard_stats()
                    ],
                    "partition": coordinator.partition_report(),
                }
            )
    return {"single": baseline, "sharded": sharded_entries}


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


def summarize(results: dict, valid: dict[str, dict[str, bool]]) -> dict:
    best = max(
        (
            (entry["speedup_vs_single"], entry["shards"])
            for entry in results["sharded"]
        ),
        default=(0.0, None),
    )
    return {
        "shard_counts": [entry["shards"] for entry in results["sharded"]],
        "single_backend_qps": results["single"]["qps"],
        "qps_by_shards": {
            str(entry["shards"]): entry["qps"] for entry in results["sharded"]
        },
        "best_speedup_vs_single": best[0],
        "best_shard_count": best[1],
        "sharded_ge_single": best[0] >= 1.0,
        "all_results_valid": all(
            verdict for lanes in valid.values() for verdict in lanes.values()
        ),
        "all_batches_consistent_with_single": all(
            entry["consistent_with_single"] for entry in results["sharded"]
        ),
        "fallbacks_exercised": all(
            entry["fallbacks"] > 0 for entry in results["sharded"]
        ),
    }


def run_bench(
    rows_per_table: int = 2000,
    batch_size: int = 40,
    repeats: int = 3,
    shard_counts: tuple[int, ...] = SHARD_COUNTS,
    backend: str = DEFAULT_BACKEND,
    workers: int = DEFAULT_WORKERS,
    out_path: Path | None = None,
    seed: int = 42,
) -> dict:
    """The full sharding benchmark; writes *out_path*, returns the report."""
    started = time.time()
    valid = validate_sharded(shard_counts, backend=backend, seed=seed)
    results = measure_sharding(
        rows_per_table=rows_per_table,
        batch_size=batch_size,
        repeats=repeats,
        shard_counts=shard_counts,
        backend=backend,
        workers=workers,
        seed=seed,
    )
    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "rows_per_table": rows_per_table,
            "batch_size": batch_size,
            "repeats": repeats,
            "shard_counts": list(shard_counts),
            "backend": backend,
            "workers": workers,
            "universe": SOCIAL.name,
            "workload": list(SHARD_WORKLOAD),
            "cpu_count": available_cpus(),
            "note": speedup_note(),
            "elapsed_seconds": round(time.time() - started, 1),
        },
        "summary": summarize(results, valid),
        "validation": valid,
        "single": results["single"],
        "sharded": results["sharded"],
    }
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> list[str]:
    meta = report["meta"]
    lines = [
        f"== sharding benchmark ({meta['rows_per_table']} rows/table, "
        f"batch {meta['batch_size']}, backend {meta['backend']}, "
        f"{meta['cpu_count']} cpu) =="
    ]
    single = report["single"]
    lines.append(
        f"single backend    {single['qps']:7.1f} qps "
        f"({single['wall_ms']:.0f} ms/batch, {single['workers']} workers)"
    )
    for entry in report["sharded"]:
        lanes = report["validation"][str(entry["shards"])]
        check = "ok" if all(lanes.values()) and entry["consistent_with_single"] else "MISMATCH"
        scatters = sum(entry["scatters"].values())
        lines.append(
            f"{entry['shards']} shard(s)        {entry['qps']:7.1f} qps "
            f"(x{entry['speedup_vs_single']:.2f} vs single, "
            f"{scatters} scatters, {entry['fallbacks']} fallbacks)  [{check}]"
        )
    summary = report["summary"]
    lines.append(
        f"best: x{summary['best_speedup_vs_single']} at "
        f"{summary['best_shard_count']} shard(s); all results valid: "
        f"{summary['all_results_valid']}"
    )
    if meta["note"]:
        lines.append(f"note: {meta['note']}")
    return lines
