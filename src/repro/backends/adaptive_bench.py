"""Adaptive-execution benchmark: feedback-triggered re-planning on skew.

The scenario the estimator cannot win statically: the service plans with
statistics the data has outgrown (small uniform numbers), while the live
``FOLLOWS`` graph is hub-skewed — a dense core of high-fan-out hubs that
blows up the unrolled join chains' intermediates while the traversal's
*output* (distinct endpoint pairs) stays small.  The stale stats pick the
unrolled plan; even freshly collected stats keep picking it, because mean
NDVs cannot see the hot hubs.  Only the estimate-vs-actual feedback loop
(:meth:`~repro.backends.service.GraphitiService.observe_execution`)
escapes: divergence → stats refresh (epoch 1) → still diverging with an
unchanged digest → traversal forced recursive (epoch 2) → converged on
the incremental-frontier plan.

Lanes:

* **static** — feedback disabled, stale stats: the mis-chosen unrolled
  plan forever (the pre-PR serving stack).
* **adaptive** — feedback on: the same start, then the re-plan sequence
  above; per-execution latencies show the convergence step.
* **overhead** — a well-estimated uniform workload served with feedback
  on vs off (equal-sample interleaved rounds): the observation path must
  stay inside the established <5% guard-budget lane.

Every executed result — every lane, every epoch — is bag-equivalence
checked against the reference evaluator's table (computed once; the
pure-Python evaluator nested-loops joins, so it is the scale limiter).

``benchmarks/bench_adaptive.py`` is the CLI entry point; the tracked
baseline is ``BENCH_adaptive.json`` at the repo root.
"""

from __future__ import annotations

import json
import statistics
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.backends.service import GraphitiService
from repro.backends.throughput import build_batch
from repro.benchmarks.universes import SOCIAL
from repro.core.sdt import infer_sdt
from repro.relational.instance import Database, tables_equivalent
from repro.sql.stats import collect_stats

#: The mis-estimated workload: a bounded traversal whose unrolled chains
#: explode on the hub core while the distinct-pair output stays small.
ADAPTIVE_QUERY = "MATCH (a:USER)-[:FOLLOWS*1..3]->(b:USER) RETURN a.uid, b.uid"

#: The serving stack's established overhead budget (guards, tracing, and
#: now feedback observation all answer to the same lane).
FEEDBACK_BUDGET_PCT = 5.0


def build_skewed_database(
    users: int, hubs: int, hub_edges: int, posts: int = 10
) -> Database:
    """A hub-skewed social instance: *hubs* users own all ``FOLLOWS``
    fan-out (a dense hub→hub core plus one spoke per remaining user), so
    per-hop fan-out is ``hub_edges/hubs`` while the *mean* fan-out the NDV
    statistics see is only ``edges/users``."""
    sdt = infer_sdt(SOCIAL.graph_schema)
    database = Database(sdt.schema)
    user_table = sdt.table_for("USER")
    post_table = sdt.table_for("POST")
    follows = sdt.table_for("FOLLOWS")
    wrote = sdt.table_for("WROTE")
    likes = sdt.table_for("LIKES")
    for uid in range(1, users + 1):
        database.insert(user_table, [uid, f"user{uid}", 20 + uid % 50])
    for pid in range(1, posts + 1):
        database.insert(post_table, [pid, f"post{pid}", pid % 7])
    fid = 0
    for index in range(hub_edges):
        fid += 1
        source = (index % hubs) + 1
        target = ((index * 7 + index // hubs) % hubs) + 1
        database.insert(follows, [fid, source, target])
    for uid in range(hubs + 1, users + 1):
        fid += 1
        database.insert(follows, [fid, uid, (uid % hubs) + 1])
    for pid in range(1, posts + 1):
        database.insert(wrote, [pid, (pid % users) + 1, pid])
        database.insert(likes, [pid, (pid * 3 % users) + 1, pid])
    return database


def _lane_executions(
    service: GraphitiService,
    expected,
    executions: int,
    backend: str,
) -> list[dict]:
    """Serve :data:`ADAPTIVE_QUERY` *executions* times, recording latency,
    plan choice, feedback epoch, and the bag-equivalence verdict."""
    steps = []
    for _ in range(executions):
        start = time.perf_counter()
        result, prepared = service.serve(ADAPTIVE_QUERY, backend=backend)
        elapsed = time.perf_counter() - start
        plan = prepared.plan
        steps.append(
            {
                "ms": round(elapsed * 1000.0, 3),
                "rows": len(result.rows),
                "choice": plan.traversal_choice if plan is not None else None,
                "estimated_rows": (
                    round(plan.estimated_rows, 1)
                    if plan is not None and plan.estimated_rows is not None
                    else None
                ),
                "epoch": prepared.feedback_epoch,
                "valid": tables_equivalent(expected, result),
            }
        )
    return steps


def measure_feedback_overhead(
    rows_per_table: int = 400,
    batch_size: int = 30,
    repeats: int = 12,
    backend: str = "sqlite-memory",
    seed: int = 42,
) -> dict:
    """Feedback-on vs feedback-off serving QPS on a *well-estimated*
    workload (fresh uniform stats, so no re-plan ever triggers — the lane
    prices the always-on observation path: per-execution bookkeeping and
    the q-error histogram).

    Equal-sample interleaved rounds, as in
    :func:`repro.backends.throughput.measure_guard_overhead`; the spread
    between the off-lane's two half-samples bounds host noise.
    """
    batch = build_batch(batch_size)
    results: dict[str, list[float]] = {"on": [], "off": []}
    with GraphitiService(SOCIAL.graph_schema) as on_service, GraphitiService(
        SOCIAL.graph_schema, feedback_ratio=None
    ) as off_service:
        for service in (on_service, off_service):
            service.load_mock(rows_per_table, seed=seed)
            service.warm_pool(backend, 1)
            service.run_many(batch, workers=1, backend=backend)  # warm caches

        def timed(service: GraphitiService) -> float:
            start = time.perf_counter()
            service.run_many(batch, workers=1, backend=backend)
            return time.perf_counter() - start

        for round_index in range(repeats):
            if round_index % 2 == 0:
                results["off"].append(timed(off_service))
                results["on"].append(timed(on_service))
            else:
                results["on"].append(timed(on_service))
                results["off"].append(timed(off_service))
        replans = on_service.feedback_state(batch[0])
    off_first = len(batch) / min(results["off"][0::2])
    off_second = len(batch) / min(results["off"][1::2])
    baseline = len(batch) / min(results["off"])
    with_feedback = len(batch) / min(results["on"])
    spread = (
        abs(off_first - off_second) / max(off_first, off_second) * 100.0
        if off_first and off_second
        else 0.0
    )
    overhead = (
        (baseline - with_feedback) / baseline * 100.0 if baseline else 0.0
    )
    return {
        "backend": backend,
        "rows_per_table": rows_per_table,
        "batch_size": batch_size,
        "repeats": repeats,
        "feedback_off_qps_first": round(off_first, 1),
        "feedback_off_qps_second": round(off_second, 1),
        "feedback_off_spread_pct": round(spread, 2),
        "feedback_on_qps": round(with_feedback, 1),
        "feedback_overhead_pct": round(overhead, 2),
        "budget_pct": FEEDBACK_BUDGET_PCT,
        "within_budget": overhead <= FEEDBACK_BUDGET_PCT,
        # A well-estimated workload must never re-plan.
        "spurious_replans": replans is not None,
    }


def run_bench(
    users: int = 100,
    hubs: int = 12,
    hub_edges: int = 480,
    stale_rows: int = 60,
    executions: int = 12,
    backend: str = "sqlite-memory",
    overhead_rows: int = 400,
    overhead_batch: int = 30,
    overhead_repeats: int = 12,
    out_path: Path | str | None = None,
    seed: int = 42,
) -> dict:
    """The full adaptive-execution benchmark (see the module docstring)."""
    started = time.perf_counter()
    sdt = infer_sdt(SOCIAL.graph_schema)
    from repro.execution.datagen import MockDataGenerator

    small = MockDataGenerator(
        SOCIAL.graph_schema, sdt, seed=seed
    ).induced_instance(stale_rows)
    stale_stats = collect_stats(small)
    skewed = build_skewed_database(users, hubs, hub_edges)

    # Reference truth, computed once: the pure-Python evaluator is the
    # scale limiter, every engine result below compares against this table.
    with GraphitiService(SOCIAL.graph_schema, feedback_ratio=None) as ref_service:
        ref_service.load_database(skewed, stats=stale_stats)
        expected = ref_service.reference(ADAPTIVE_QUERY)

    # Static lane: stale stats, feedback off — mis-planned forever.
    with GraphitiService(SOCIAL.graph_schema, feedback_ratio=None) as static_service:
        static_service.load_database(skewed, stats=stale_stats)
        static_steps = _lane_executions(
            static_service, expected, executions, backend
        )

    # Adaptive lane: same stale start, feedback on.
    with GraphitiService(SOCIAL.graph_schema) as adaptive_service:
        adaptive_service.load_database(skewed, stats=stale_stats)
        adaptive_steps = _lane_executions(
            adaptive_service, expected, executions, backend
        )
        feedback = adaptive_service.feedback_state(ADAPTIVE_QUERY)
        replan_counts = (
            adaptive_service.metrics.snapshot()
            .get("repro_plan_replans_total", {})
            .get("series", [])
        )

    overhead = measure_feedback_overhead(
        rows_per_table=overhead_rows,
        batch_size=overhead_batch,
        repeats=overhead_repeats,
        backend=backend,
        seed=seed,
    )

    final_epoch = adaptive_steps[-1]["epoch"]
    converged = [s for s in adaptive_steps if s["epoch"] == final_epoch]
    pre_replan = [s for s in adaptive_steps if s["epoch"] == 0]
    static_median = statistics.median(s["ms"] for s in static_steps)
    converged_median = statistics.median(s["ms"] for s in converged)
    pre_median = (
        statistics.median(s["ms"] for s in pre_replan) if pre_replan else None
    )
    all_valid = all(
        s["valid"] for s in static_steps + adaptive_steps
    )
    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
            "universe": SOCIAL.name,
            "backend": backend,
            "users": users,
            "hubs": hubs,
            "hub_edges": hub_edges,
            "stale_rows": stale_rows,
            "executions": executions,
            "elapsed_seconds": round(time.perf_counter() - started, 1),
        },
        "static": {
            "steps": static_steps,
            "median_ms": round(static_median, 3),
            "choice": static_steps[-1]["choice"],
        },
        "adaptive": {
            "steps": adaptive_steps,
            "pre_replan_median_ms": (
                round(pre_median, 3) if pre_median is not None else None
            ),
            "converged_median_ms": round(converged_median, 3),
            "converged_choice": converged[-1]["choice"],
            "final_epoch": final_epoch,
            "feedback": feedback,
            "replan_counts": replan_counts,
        },
        "overhead": overhead,
        "summary": {
            "all_results_valid": all_valid,
            "replans_triggered": feedback["replans"] if feedback else 0,
            "replanned": bool(feedback and feedback["replans"]),
            "converged_choice": converged[-1]["choice"],
            "speedup_converged_vs_static": (
                round(static_median / converged_median, 2)
                if converged_median
                else None
            ),
            "feedback_overhead_within_budget": overhead["within_budget"],
        },
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> list[str]:
    meta = report["meta"]
    summary = report["summary"]
    adaptive = report["adaptive"]
    overhead = report["overhead"]
    lines = [
        f"adaptive-execution bench — universe={meta['universe']} "
        f"backend={meta['backend']} users={meta['users']} hubs={meta['hubs']} "
        f"hub_edges={meta['hub_edges']} stale_rows={meta['stale_rows']}",
        f"static lane (stale stats, feedback off): "
        f"median {report['static']['median_ms']} ms, "
        f"plan stays {report['static']['choice']}",
        f"adaptive lane: pre-replan median "
        f"{adaptive['pre_replan_median_ms']} ms → converged median "
        f"{adaptive['converged_median_ms']} ms "
        f"({adaptive['converged_choice']}, epoch {adaptive['final_epoch']}, "
        f"{summary['replans_triggered']} re-plan(s))",
        f"speedup converged vs static: "
        f"{summary['speedup_converged_vs_static']}x",
        f"feedback overhead: {overhead['feedback_overhead_pct']}% "
        f"(budget {overhead['budget_pct']}%, "
        f"{'within' if overhead['within_budget'] else 'OVER'})",
        f"bag-equivalence: "
        f"{'all results match reference' if summary['all_results_valid'] else 'FAILURES'}",
    ]
    return lines
