"""The :class:`AsyncGraphitiService`: asyncio-native serving over the pool.

:class:`~repro.backends.service.GraphitiService` serves concurrent traffic
by *blocking* worker threads on pool checkout and engine execution.  That
is the right shape for a fixed batch (``run_many``), but a high-fan-out
server — thousands of in-flight requests, most of them waiting — wastes a
thread per waiter.  This module keeps the exact same pipeline and swaps
the waiting discipline:

* **prepare stays sync** — transpilation is cached, GIL-bound, and
  microseconds-fast after the first hit, so it runs inline on the event
  loop, sharing the service's LRU *and* persistent store;
* **execution awaits** — the blocking DB driver call is offloaded to a
  small thread-pool executor, so the event loop never stalls on a query;
* **checkout awaits** — the pool's non-blocking protocol
  (:meth:`~repro.backends.pool.ConnectionPool.try_checkout` /
  :meth:`~repro.backends.pool.ConnectionPool.try_reserve` /
  :meth:`~repro.backends.pool.ConnectionPool.add_waiter`) lets a
  coroutine wait for a free member on an :class:`asyncio.Event` wired to
  checkin wakeups, while sync callers keep blocking on the same pool's
  condition variable — one pool, both worlds;
* **backpressure, not queueing** — an :class:`asyncio.Semaphore` caps the
  number of in-flight executions (``max_concurrency``), and an exhausted
  pool raises :class:`~repro.backends.pool.PoolTimeout` after
  ``checkout_timeout`` seconds instead of queueing unboundedly.

The async service can own its :class:`GraphitiService` (pass a
:class:`~repro.graph.schema.GraphSchema`) or wrap an existing one (pass
the service), in which case caches, pools, and statistics are shared with
sync callers — ``await async_service.run(q)`` and ``service.run(q)`` are
interchangeable and feed the same :class:`~repro.backends.service.QueryStat`
accounting.

Typical use::

    async def main():
        async with AsyncGraphitiService(graph_schema) as service:
            await service.load_mock(1000)
            table = await service.run("MATCH (n:EMP) RETURN n.name")
            tables = await service.run_many(batch, concurrency=8)
"""

from __future__ import annotations

import asyncio
import time
import weakref
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.common.budget import BudgetTracker, QueryBudget, QueryBudgetExceeded
from repro.graph.schema import GraphSchema
from repro.relational.instance import Database, Table

from repro.backends.guards import CircuitOpen
from repro.backends.pool import ConnectionPool, PoolClosed, PoolTimeout
from repro.backends.service import GraphitiService, PreparedQuery

#: Default cap on concurrently executing queries per event loop.
DEFAULT_MAX_CONCURRENCY = 8

#: Default seconds an awaited checkout may wait before raising PoolTimeout.
DEFAULT_CHECKOUT_TIMEOUT = 30.0


class _MemberLost(Exception):
    """Internal: the member died mid-query and was evicted (``__cause__``
    holds the engine error) — a retry on a healthy member may succeed."""


class _SpawnFailed(Exception):
    """Internal: spawning a fresh member failed (``__cause__`` holds the
    engine error) — transient from the caller's viewpoint."""


class AsyncGraphitiService:
    """Async facade over :class:`GraphitiService`: ``await run(cypher)``.

    Parameters
    ----------
    service_or_schema:
        An existing :class:`GraphitiService` to share (its caches, pools,
        and stats serve sync and async callers side by side), or a
        :class:`GraphSchema` from which to build an owned service
        (``**service_kwargs`` forwarded; the owned service is closed with
        this object).
    max_concurrency:
        Ceiling on simultaneously *executing* queries per event loop —
        the backpressure valve.  Also sizes the offload executor.
    checkout_timeout:
        Seconds an awaited pool checkout may wait when the pool is
        exhausted at capacity before raising
        :class:`~repro.backends.pool.PoolTimeout` (``None``: wait
        forever).
    executor:
        An optional shared :class:`ThreadPoolExecutor` for the blocking
        driver calls; by default the service lazily creates (and owns)
        one sized ``max_concurrency + 1``.
    """

    def __init__(
        self,
        service_or_schema: GraphitiService | GraphSchema,
        *,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        checkout_timeout: float | None = DEFAULT_CHECKOUT_TIMEOUT,
        executor: ThreadPoolExecutor | None = None,
        **service_kwargs: Any,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {max_concurrency}")
        if isinstance(service_or_schema, GraphitiService):
            if service_kwargs:
                raise TypeError(
                    "service keyword arguments only apply when constructing "
                    "from a GraphSchema, not when wrapping an existing service"
                )
            self._service = service_or_schema
            self._owns_service = False
        else:
            self._service = GraphitiService(service_or_schema, **service_kwargs)
            self._owns_service = True
        self.max_concurrency = max_concurrency
        self.checkout_timeout = checkout_timeout
        self._executor = executor
        self._owns_executor = executor is None
        self._closed = False
        # asyncio primitives bind to the running loop on first use, so one
        # semaphore cannot serve several asyncio.run() lifetimes; keep one
        # per loop, dropped automatically when the loop is garbage collected.
        self._semaphores: weakref.WeakKeyDictionary[
            asyncio.AbstractEventLoop, asyncio.Semaphore
        ] = weakref.WeakKeyDictionary()

    # -- plumbing ----------------------------------------------------------

    @property
    def service(self) -> GraphitiService:
        """The wrapped synchronous service (shared caches, pools, stats)."""
        return self._service

    def _semaphore(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        semaphore = self._semaphores.get(loop)
        if semaphore is None:
            semaphore = asyncio.Semaphore(self.max_concurrency)
            self._semaphores[loop] = semaphore
        return semaphore

    def _ensure_executor(self) -> ThreadPoolExecutor:
        if self._closed:
            raise RuntimeError("AsyncGraphitiService is closed")
        if self._executor is None:
            # +1 so a long bulk load cannot starve query execution slots.
            self._executor = ThreadPoolExecutor(
                max_workers=self.max_concurrency + 1,
                thread_name_prefix="graphiti-async",
            )
        return self._executor

    async def _offload(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run blocking *fn* on the executor without stalling the loop.

        NOTE: cancelling the awaiting task raises here *immediately* even
        while the executor thread is still inside *fn* — asyncio marks the
        wrapper future cancelled and only best-effort-cancels the
        concurrent one.  Callers whose *fn* holds pool state must therefore
        not clean up in a ``finally`` around this await; they defer cleanup
        to the concurrent future's done-callback instead (see
        :meth:`_execute` / :meth:`_spawn_reserved`).
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._ensure_executor(), fn, *args)

    async def _acquire(self, pool: ConnectionPool, timeout: float | None = None):
        """An exclusive pool member, without ever blocking the event loop.

        Fast path: pop an idle member.  Growth path: reserve a slot and
        spawn the member on the executor (spawning may repeat a bulk
        load).  Exhausted path: register a waiter callback that trips an
        :class:`asyncio.Event` from whichever thread checks a member in,
        and await it — re-polling on every wakeup, since a woken waiter
        races blocking ``checkout`` callers for the freed member.

        *timeout* overrides ``checkout_timeout`` (a budget's remaining
        wall clock is tighter than the configured ceiling).
        """
        loop = asyncio.get_running_loop()
        if timeout is None:
            timeout = self.checkout_timeout
        started = loop.time()
        deadline = None if timeout is None else started + timeout
        while True:
            member = pool.try_checkout()
            if member is not None:
                return member
            if pool.try_reserve():
                return await self._spawn_reserved(pool)
            event = asyncio.Event()
            token = pool.add_waiter(
                lambda: loop.call_soon_threadsafe(event.set)
            )
            try:
                # Close the race with a checkin that happened between the
                # failed try_checkout above and the waiter registration.
                member = pool.try_checkout()
                if member is not None:
                    return member
                remaining = None if deadline is None else deadline - loop.time()
                if remaining is not None and remaining <= 0:
                    raise pool.timeout_error(timeout, loop.time() - started)
                try:
                    await asyncio.wait_for(event.wait(), timeout=remaining)
                except asyncio.TimeoutError:
                    raise pool.timeout_error(
                        timeout, loop.time() - started
                    ) from None
            except BaseException:
                # Exiting without retrying: if our wakeup hint was already
                # consumed (callback popped — fired, or in flight on the
                # loop), hand it to the next waiter so the freed member it
                # advertises is not stranded behind sleeping waiters.
                if not pool.remove_waiter(token):
                    pool.wake_waiter()
                raise
            else:
                pool.remove_waiter(token)

    async def _spawn_reserved(self, pool: ConnectionPool):
        """Run a reserved spawn on the executor, leak-proofed.

        The reservation made by ``try_reserve`` obliges ``spawn_reserved``
        to run exactly once, and the spawned member arrives *checked out*.
        The await can fail with the spawn never started (service closed,
        or the dispatch cancelled while queued) — then the reservation
        must be released — or with the executor thread still mid-spawn
        (cancellation is delivered immediately, not on thread completion)
        — then cleanup must wait for the thread: a done-callback on the
        concurrent future checks the orphaned member back in, or releases
        the reservation if the queued job was chain-cancelled.
        """
        future = self._ensure_executor().submit(pool.spawn_reserved)
        try:
            return await asyncio.wrap_future(future)
        except BaseException:
            if future.cancel():
                # Never started: the reservation is still held — release it.
                pool.cancel_reservation()
            else:

                def reclaim(done) -> None:
                    if done.cancelled():
                        pool.cancel_reservation()
                    elif done.exception() is None:
                        pool.checkin(done.result())  # orphan goes back
                    # spawn_reserved raised: it released the slot itself.

                # Fires immediately if already finished, else on the
                # executor thread the moment the spawn completes.
                future.add_done_callback(reclaim)
            raise

    async def _execute(
        self,
        pool: ConnectionPool,
        prepared: PreparedQuery,
        backend: str | None = None,
        span=None,
        tracker: BudgetTracker | None = None,
    ) -> Table:
        """Checkout → offloaded execute → record → guaranteed checkin.

        One *attempt*: the retry/breaker loop lives in
        :meth:`_run_prepared`.  The checkin must *never* run while the
        executor thread is still driving the member (one backend = one
        connection = one thread at a time), but cancelling the awaiting
        task raises immediately even mid-query.  So the member is
        reclaimed via the concurrent future: right away when the job
        finished or was cancelled before starting, otherwise from a
        done-callback the moment the engine call returns.

        A failed member is checked in ``damaged=True``: the pool pings it
        and either retains (genuine query error — re-raised as-is) or
        evicts it (connection dead — re-raised as :class:`_MemberLost` so
        the caller knows a retry on a healthy member may succeed).

        *span*, when given, is the caller's per-query span — the explicit
        parent the ``execute`` span (opened on an executor thread, where
        the context variable is useless) hangs under.
        """
        name = backend or pool.backend_name
        tracer = self._service.tracer
        async with self._semaphore():
            # The async path never enters pool.checkout, so it opens the
            # pool.checkout span itself — same name, same tree position as
            # the sync path's, marked with the waiting discipline.
            started = time.perf_counter()
            with tracer.span(
                "pool.checkout", backend=name, waiting="async"
            ) as checkout_span:
                try:
                    member = await self._acquire(
                        pool,
                        timeout=(
                            None if tracker is None else tracker.remaining_seconds()
                        ),
                    )
                except (PoolClosed, PoolTimeout, asyncio.CancelledError):
                    raise
                except Exception as error:
                    # Spawning a member failed: the engine refused a fresh
                    # connection — transient from the caller's viewpoint.
                    raise _SpawnFailed(name) from error
                checkout_span.set(
                    "waited_ms", round((time.perf_counter() - started) * 1000.0, 3)
                )
            future = self._ensure_executor().submit(
                self._execute_recorded, member, prepared, name, span, tracker
            )
            try:
                result = await asyncio.wrap_future(future)
            except QueryBudgetExceeded:
                # The guard aborted the statement (thread is done); validate
                # on checkin so the member rejoins only if healthy.
                pool.checkin(member, damaged=True)
                raise
            except Exception as error:
                # The engine call completed (by raising): the thread no
                # longer owns the member, so classify it inline — ping is a
                # sub-millisecond SELECT 1.
                retained = pool.checkin(member, damaged=True)
                if retained:
                    raise
                raise _MemberLost(name) from error
            except BaseException:
                if future.cancel() or future.done():
                    pool.checkin(member)  # never ran, or already finished
                else:
                    # Cancelled mid-execution: the thread still owns the
                    # member; hand it back only once the engine call ends.
                    future.add_done_callback(lambda done: pool.checkin(member))
                raise
            else:
                pool.checkin(member)
                return result

    def _execute_recorded(
        self,
        member,
        prepared: PreparedQuery,
        backend: str | None = None,
        parent=None,
        tracker: BudgetTracker | None = None,
    ) -> Table:
        # Runs on an executor thread; timing and stats mirror the sync path.
        # The explicit parent crosses the loop→executor boundary (context
        # variables do not follow submitted jobs).
        name = backend or self._service.default_backend
        with self._service.tracer.span("execute", parent=parent, backend=name) as span:
            start = time.perf_counter()
            # budget= only when bounded: keeps stubbed/monkeypatched
            # engines with the pre-budget signature working.
            result = (
                member.execute(prepared.sql_text)
                if tracker is None
                else member.execute(prepared.sql_text, budget=tracker)
            )
            elapsed = time.perf_counter() - start
            span.set("rows", len(result.rows))
        self._service.record_execution(prepared.cypher_text, elapsed, backend=name)
        return result

    async def _run_prepared(
        self,
        pool: ConnectionPool,
        name: str,
        cypher_text: str,
        prepared: PreparedQuery,
        tracker: BudgetTracker | None,
        span=None,
    ) -> Table:
        """One plan's execution with the same recovery discipline as the
        sync service: breaker gate, budget-bounded checkout, eviction-aware
        retry with backoff (awaited, never blocking the loop)."""
        service = self._service
        breaker = service.breaker(name)
        retry = service.retry_policy
        attempt = 1
        while True:
            if tracker is not None:
                tracker.check_timeout(stage="service")
            try:
                probe = breaker.allow()
            except CircuitOpen:
                service._breaker_rejections.inc(backend=name)
                raise
            # Everything past allow() must settle the breaker or release
            # the half-open probe slot, or an exit without a verdict (pool
            # timeout, task cancellation) wedges the breaker shedding
            # forever.
            try:
                try:
                    result = await self._execute(
                        pool, prepared, name, span, tracker
                    )
                except QueryBudgetExceeded as error:
                    # The guard aborted the statement, not the engine: the
                    # breaker must not open on a caller's tight budget.
                    breaker.record_success()
                    service._budget_exceeded.inc(
                        backend=name, dimension=error.dimension
                    )
                    raise error.annotate(backend=name, cypher_text=cypher_text)
                except (PoolClosed, PoolTimeout):
                    raise  # pool congestion is not engine failure
                except (_MemberLost, _SpawnFailed) as error:
                    breaker.record_failure()
                    if retry.should_retry(attempt) and not (
                        tracker is not None and tracker.timed_out()
                    ):
                        service._query_retries.inc(backend=name)
                        await asyncio.sleep(retry.delay_for(attempt))
                        attempt += 1
                        continue
                    cause = error.__cause__
                    raise (cause if cause is not None else error) from None
                except Exception:
                    # A genuine query error on a retained (pinged-healthy)
                    # member: the connection just proved alive, so the
                    # breaker records success — it watches engine health,
                    # not query validity.
                    breaker.record_success()
                    raise
                else:
                    breaker.record_success()
                    return result
            finally:
                breaker.release_probe(probe)

    # -- execution ---------------------------------------------------------

    async def _serve(
        self,
        cypher_text: str,
        name: str,
        opt_level: int | None,
        budget: QueryBudget | None,
        span=None,
    ) -> tuple[Table, PreparedQuery]:
        """Prepare + guarded execution with the budget downgrade — the
        async twin of :meth:`GraphitiService._serve`."""
        service = self._service
        budget = service._effective_budget(budget)
        tracker = budget.start() if budget is not None else None
        depth_cap = (
            budget.max_depth
            if budget is not None and budget.allow_downgrade
            else None
        )
        prepared = service.prepare(
            cypher_text, service.dialect_of(name), opt_level=opt_level,
            depth_cap=depth_cap,
        )
        pool = service.pool(name)
        try:
            runner = service._parallel_runner(prepared)
            if runner is not None:
                # Partition-parallel scatter: the sync runner already fans
                # out over its own executor and pooled connections (with
                # the full per-partition retry/breaker discipline), so the
                # event loop only needs one offloaded call for the whole
                # scatter-gather.  The explicit parent= keeps the
                # parallel.* spans under this query's span even though
                # they open on executor threads.
                result = await self._offload(
                    lambda: service._run_parallel(
                        pool, name, cypher_text, prepared, runner, tracker,
                        parent=span,
                    )
                )
            else:
                result = await self._run_prepared(
                    pool, name, cypher_text, prepared, tracker, span
                )
            if depth_cap is None:
                # Same adaptive seam as the sync path: actuals accumulate
                # on the shared cache entry, divergence re-plans it.
                service.observe_execution(prepared, len(result.rows), name)
            return result, prepared
        except QueryBudgetExceeded as error:
            assert budget is not None and tracker is not None
            downgradable = (
                budget.allow_downgrade
                and prepared.plan is not None
                and any(
                    traversal.choice == "unrolled"
                    for traversal in prepared.plan.traversals
                )
            )
            if not downgradable:
                raise
            service._budget_downgrades.inc(backend=name)
            tracker.reset_work()
            with service.tracer.span(
                "query.downgrade", backend=name, reason=error.dimension, parent=span
            ):
                downgraded = service.prepare(
                    cypher_text, service.dialect_of(name), opt_level=opt_level,
                    force_recursive=True, depth_cap=depth_cap,
                )
                try:
                    result = await self._run_prepared(
                        pool, name, cypher_text, downgraded, tracker, span
                    )
                    return result, downgraded
                except QueryBudgetExceeded as final:
                    final.attempted_downgrade = True
                    raise

    async def run(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        """Execute *cypher_text* on *backend*; the engine call is awaited.

        Any number of coroutines may call this concurrently; executions
        beyond ``max_concurrency`` wait their turn (backpressure), and an
        exhausted pool raises :class:`PoolTimeout` after
        ``checkout_timeout`` seconds rather than queueing without bound.

        *budget* (default: the wrapped service's ``default_budget``)
        carries the same semantics as the sync path: structured
        :class:`~repro.common.budget.QueryBudgetExceeded` on overrun after
        an attempted plan downgrade, eviction-aware retries, per-backend
        circuit breaking.
        """
        name = backend or self._service.default_backend
        with self._service.tracer.span(
            "query", backend=name, cypher=cypher_text, mode="async"
        ) as span:
            result, prepared = await self._serve(
                cypher_text, name, opt_level, budget, span
            )
            span.set("opt_level", prepared.opt_level)
            span.set("rows", len(result.rows))
        return result

    async def run_many(
        self,
        cypher_texts: Sequence[str],
        concurrency: int = 4,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> list[Table]:
        """Execute a batch concurrently; ``results[i]`` answers ``texts[i]``.

        At most ``min(concurrency, max_concurrency)`` queries are in
        flight at once (the pool's capacity is raised to match), each on
        its own pooled connection via the executor.  All transpilation
        happens up front on the calling task — cached and fast — so the
        awaited work is pure engine execution.  If any query fails, the
        remaining ones finish (their connections are checked back in) and
        the first failure is re-raised.
        """
        texts = list(cypher_texts)
        if not texts:
            return []
        name = backend or self._service.default_backend
        tracer = self._service.tracer
        fan_out = max(1, min(concurrency, self.max_concurrency, len(texts)))
        with tracer.span(
            "query.batch",
            backend=name,
            queries=len(texts),
            concurrency=fan_out,
            mode="async",
        ) as batch_span:
            dialect = self._service.dialect_of(name)
            effective = self._service._effective_budget(budget)
            depth_cap = (
                effective.max_depth
                if effective is not None and effective.allow_downgrade
                else None
            )
            for text in dict.fromkeys(texts):  # warm the cache: each once
                self._service.prepare(
                    text, dialect, opt_level=opt_level, depth_cap=depth_cap
                )
            self._service.pool(name, min_capacity=fan_out)
            batch_slots = asyncio.Semaphore(fan_out)

            async def one(index: int, text: str) -> Table:
                async with batch_slots:
                    # parent= pins each branch's subtree to the batch span;
                    # sibling gather branches each set their own task-local
                    # current span, so their children never interleave.
                    # Each query gets its own fresh budget tracker.
                    with tracer.span(
                        "query", parent=batch_span, backend=name, index=index
                    ) as span:
                        result, _ = await self._serve(
                            text, name, opt_level, budget, span
                        )
                        span.set("rows", len(result.rows))
                        return result

            outcomes = await asyncio.gather(
                *(one(index, text) for index, text in enumerate(texts)),
                return_exceptions=True,
            )
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        return list(outcomes)

    # -- data / pool management (offloaded: loading is blocking I/O) -------

    async def warm_pool(
        self, backend: str | None = None, members: int | None = None
    ) -> None:
        """Eagerly spawn pool members without stalling the event loop."""
        await self._offload(self._service.warm_pool, backend, members)

    async def load_database(self, database: Database) -> None:
        await self._offload(self._service.load_database, database)

    async def load_graph(self, graph: object) -> None:
        await self._offload(self._service.load_graph, graph)

    async def load_mock(self, rows_per_table: int, seed: int = 42) -> None:
        await self._offload(self._service.load_mock, rows_per_table, seed)

    async def reference(
        self,
        cypher_text: str,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        """The reference bag-semantics evaluation (offloaded: it's slow)."""
        return await self._offload(
            self._service.reference, cypher_text, opt_level, budget
        )

    # -- sync delegates (cheap, loop-safe) ----------------------------------

    def prepare(
        self,
        cypher_text: str,
        dialect: object | None = None,
        opt_level: int | None = None,
    ) -> PreparedQuery:
        """Cached transpilation — sync on purpose: micro-fast after first hit."""
        return self._service.prepare(cypher_text, dialect, opt_level=opt_level)

    def transpile_to_sql(
        self, cypher_text: str, dialect: object | None = None,
        opt_level: int | None = None,
    ) -> str:
        return self._service.transpile_to_sql(cypher_text, dialect, opt_level)

    def backends(self) -> tuple[str, ...]:
        return self._service.backends()

    def cache_info(self):
        return self._service.cache_info()

    def query_stats(self):
        return self._service.query_stats()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release the executor (and the inner service when owned).

        Safe to call from sync code; an owned executor's threads are only
        idle once no coroutine is mid-execution, so close after awaiting
        outstanding work (the async context manager does).
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_executor and self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._owns_service:
            self._service.close()

    async def aclose(self) -> None:
        await asyncio.get_running_loop().run_in_executor(None, self.close)

    async def __aenter__(self) -> "AsyncGraphitiService":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.aclose()
