"""Concurrent-serving benchmark: QPS serial vs. pooled worker threads.

The second tracked perf baseline (``BENCH_throughput.json``, alongside
``BENCH_optimizer.json``'s latency/plan-quality one).  For every available
execution backend it measures the queries-per-second of a fixed mixed batch
of Cypher texts driven through :meth:`GraphitiService.run_many` at 1 (the
serial baseline), 2, 4, and 8 workers over a warmed
:class:`~repro.backends.pool.ConnectionPool`, and reports per-query
p50/p95 tail latency from the service's :class:`~repro.backends.service.QueryStat`
samples.

Correctness gates the numbers twice:

* on a small instance every *concurrently produced* result is checked
  bag-equivalent against the reference evaluator, and
* at bench scale every concurrent batch is checked element-wise against the
  serial batch (any cross-query corruption or lost result fails the run).

The report also quantifies two satellite wins:

* **bulk load** — single-transaction loading vs. the old
  commit-per-batch behaviour, and
* **persistent transpilation cache** — this run's on-disk cache hits
  (a second, cold-process invocation of the bench reports hits for every
  query the first invocation prepared).

Thread-level speedup needs hardware: on a single-CPU container the workers
time-slice one core and QPS stays flat, so ``meta.cpu_count`` is recorded
and the pytest wrapper only asserts the ≥2× speedup target when at least
two CPUs are actually available (CI runners are multi-core).
"""

from __future__ import annotations

import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.benchmarks.universes import SOCIAL
from repro.relational.instance import tables_equivalent

from repro.backends.cache import PersistentQueryCache
from repro.backends.registry import available_backends, create_backend
from repro.backends.service import GraphitiService

#: Join-heavy, small-output queries: the engine does the work (C code that
#: releases the GIL), the marshalling stays cheap — the shape where pooled
#: worker threads actually scale.
WORKLOAD: dict[str, str] = {
    "one-hop-agg": (
        "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN a.uname, Count(*)"
    ),
    "two-hop-agg": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "RETURN b.uname, Count(*)"
    ),
    "two-hop-filter": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "WHERE p.score = 10 RETURN a.uname, p.title"
    ),
    "diamond-count": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "MATCH (c:USER)-[l:LIKES]->(p:POST) RETURN Count(*)"
    ),
    "three-hop-count": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[g:FOLLOWS]->(c:USER)"
        "-[w:WROTE]->(p:POST) RETURN Count(*)"
    ),
}

WORKER_COUNTS = (1, 2, 4, 8)


def build_batch(size: int, workload: dict[str, str] | None = None) -> list[str]:
    """A mixed batch of *size* texts, round-robin over the workload."""
    texts = list((workload or WORKLOAD).values())
    return [texts[i % len(texts)] for i in range(size)]


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


# ---------------------------------------------------------------------------
# correctness: concurrent results vs the reference evaluator
# ---------------------------------------------------------------------------


def validate_concurrent(
    backends: tuple[str, ...],
    workers: int = 4,
    check_rows: int = 25,
    seed: int = 42,
) -> dict[str, bool]:
    """Bag-equivalence of every concurrently produced result against the
    reference evaluator, per backend (small instance — the reference
    evaluator nested-loops joins)."""
    verdicts: dict[str, bool] = {}
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_mock(check_rows, seed=seed)
        expected = {text: service.reference(text) for text in WORKLOAD.values()}
        batch = build_batch(3 * len(WORKLOAD))
        for name in backends:
            results = service.run_many(batch, workers=workers, backend=name)
            verdicts[name] = all(
                tables_equivalent(expected[text], result)
                for text, result in zip(batch, results)
            )
    return verdicts


# ---------------------------------------------------------------------------
# throughput: QPS per worker count per backend
# ---------------------------------------------------------------------------


def measure_throughput(
    rows_per_table: int = 2000,
    batch_size: int = 40,
    repeats: int = 3,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    backends: tuple[str, ...] | None = None,
    seed: int = 42,
    persistent_cache: PersistentQueryCache | None = None,
) -> list[dict]:
    """Per-backend QPS at each worker count, with tail latency and an
    element-wise consistency check of every concurrent batch against the
    serial one."""
    names = backends or available_backends()
    batch = build_batch(batch_size)
    max_workers = max(worker_counts)
    results: list[dict] = []
    with GraphitiService(
        SOCIAL.graph_schema, persistent_cache=persistent_cache
    ) as service:
        service.load_mock(rows_per_table, seed=seed)
        for name in names:
            # Pay member creation (bulk loads for clone-loading engines)
            # before the clock starts.
            service.warm_pool(name, max_workers)
            service.reset_query_stats()
            serial_reference: dict[str, object] = {}
            per_worker: dict[str, dict] = {}
            serial_qps = 0.0
            consistent = True
            for workers in worker_counts:
                best_wall = float("inf")
                for repeat in range(repeats):
                    start = time.perf_counter()
                    tables = service.run_many(batch, workers=workers, backend=name)
                    wall = time.perf_counter() - start
                    best_wall = min(best_wall, wall)
                    if workers == 1 and not serial_reference:
                        serial_reference = dict(zip(batch, tables))
                    elif repeat == 0 and serial_reference:
                        consistent = consistent and all(
                            tables_equivalent(serial_reference[text], table)
                            for text, table in zip(batch, tables)
                        )
                qps = len(batch) / best_wall
                if workers == 1:
                    serial_qps = qps
                per_worker[str(workers)] = {
                    "qps": round(qps, 1),
                    "wall_ms": round(best_wall * 1000, 2),
                    "speedup_vs_serial": round(qps / serial_qps, 3)
                    if serial_qps
                    else 0.0,
                }
            latencies = {
                label: next(
                    (
                        {
                            "p50_ms": round(stat.p50_seconds * 1000, 3),
                            "p95_ms": round(stat.p95_seconds * 1000, 3),
                            "executions": stat.executions,
                        }
                        for stat in service.query_stats()
                        if stat.cypher_text == text
                    ),
                    None,
                )
                for label, text in WORKLOAD.items()
            }
            results.append(
                {
                    "backend": name,
                    "pool_size": service.pool(name).size,
                    "serial_qps": round(serial_qps, 1),
                    "workers": per_worker,
                    "latency": latencies,
                    "consistent_with_serial": consistent,
                }
            )
    return results


# ---------------------------------------------------------------------------
# satellite: single-transaction bulk load vs commit-per-batch
# ---------------------------------------------------------------------------


def measure_bulk_load(
    rows_per_table: int = 5000, batch_size: int = 200, seed: int = 42
) -> dict:
    """Load-time win of the single-transaction bulk load on ``sqlite-file``
    (the engine where commits mean fsync, so the win is real I/O)."""
    from repro.core.sdt import infer_sdt
    from repro.execution.datagen import MockDataGenerator

    sdt = infer_sdt(SOCIAL.graph_schema)
    database = MockDataGenerator(
        SOCIAL.graph_schema, sdt, seed=seed
    ).induced_instance(rows_per_table)

    def load_once(commit_mode: str) -> float:
        backend = create_backend("sqlite-file", database.schema)
        backend.connect()
        try:
            start = time.perf_counter()
            for name, table in database.tables.items():
                backend.insert_rows(
                    name, table.rows, batch_size=batch_size, commit_mode=commit_mode
                )
            return time.perf_counter() - start
        finally:
            backend.close()

    per_batch = load_once("batch")
    single = load_once("end")
    return {
        "rows_per_table": rows_per_table,
        "batch_size": batch_size,
        "commit_per_batch_ms": round(per_batch * 1000, 2),
        "single_transaction_ms": round(single * 1000, 2),
        "speedup": round(per_batch / single, 2) if single else 0.0,
    }


# ---------------------------------------------------------------------------
# satellite: persistent transpilation cache across processes
# ---------------------------------------------------------------------------


def persistent_cache_demo(cache_path: Path, rows_per_table: int = 50) -> dict:
    """Prepare the workload in one service, then again in a *fresh* service
    over the same store — the second, cold-cache service must hit disk for
    every query (the in-process stand-in for a cold process; running the
    bench script twice demonstrates the real thing)."""

    def prepare_all(service: GraphitiService) -> None:
        service.load_mock(rows_per_table, seed=42)
        for text in WORKLOAD.values():
            service.prepare(text)

    with PersistentQueryCache(cache_path) as store:
        with GraphitiService(SOCIAL.graph_schema, persistent_cache=store) as first:
            prepare_all(first)
            warm = first.persistent_cache_info()
        store.hits = store.misses = 0
        with GraphitiService(SOCIAL.graph_schema, persistent_cache=store) as cold:
            prepare_all(cold)
            cold_info = cold.persistent_cache_info()
        return {
            "path": str(cache_path),
            "first_service": {"hits": warm.hits, "misses": warm.misses},
            "cold_service": {"hits": cold_info.hits, "misses": cold_info.misses},
            "cold_hit_every_query": cold_info.misses == 0 and cold_info.hits > 0,
        }


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


def summarize(results: list[dict], valid: dict[str, bool]) -> dict:
    def speedup_at(entry: dict, workers: int) -> float:
        data = entry["workers"].get(str(workers))
        return data["speedup_vs_serial"] if data else 0.0

    best = max(
        (
            (speedup_at(entry, 4), entry["backend"])
            for entry in results
        ),
        default=(0.0, None),
    )
    return {
        "backends": [entry["backend"] for entry in results],
        "best_speedup_at_4_workers": best[0],
        "best_speedup_backend": best[1],
        "target_2x_at_4_workers_met": best[0] >= 2.0,
        "all_concurrent_results_valid": all(valid.values()),
        "all_batches_consistent_with_serial": all(
            entry["consistent_with_serial"] for entry in results
        ),
    }


def run_bench(
    rows_per_table: int = 2000,
    batch_size: int = 40,
    repeats: int = 3,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    backends: tuple[str, ...] | None = None,
    out_path: Path | None = None,
    cache_path: Path | None = None,
    seed: int = 42,
) -> dict:
    """The full benchmark; writes *out_path* and returns the report dict."""
    started = time.time()
    names = backends or available_backends()
    if cache_path is None:
        from repro.backends.cache import CACHE_FILE_NAME, default_cache_dir

        cache_path = default_cache_dir() / CACHE_FILE_NAME
    run_cache = PersistentQueryCache(cache_path)
    try:
        valid = validate_concurrent(names, seed=seed)
        results = measure_throughput(
            rows_per_table=rows_per_table,
            batch_size=batch_size,
            repeats=repeats,
            worker_counts=worker_counts,
            backends=names,
            seed=seed,
            persistent_cache=run_cache,
        )
        run_cache_stats = {
            "path": str(cache_path),
            "hits": run_cache.hits,
            "misses": run_cache.misses,
            "entries": len(run_cache),
            "cold_second_run_hits": run_cache.hits >= run_cache.misses
            and run_cache.hits > 0,
        }
    finally:
        run_cache.close()
    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "rows_per_table": rows_per_table,
            "batch_size": batch_size,
            "repeats": repeats,
            "worker_counts": list(worker_counts),
            "backends": list(names),
            "universe": SOCIAL.name,
            "cpu_count": available_cpus(),
            "note": (
                "thread-level QPS speedup requires >1 CPU; on a single-CPU "
                "host workers time-slice one core and speedups hover near 1.0"
                if available_cpus() < 2
                else ""
            ),
            "elapsed_seconds": round(time.time() - started, 1),
        },
        "bulk_load": measure_bulk_load(),
        "persistent_cache": {
            "this_run": run_cache_stats,
            "cross_service_demo": persistent_cache_demo(cache_path),
        },
        "summary": summarize(results, valid),
        "validation": valid,
        "results": results,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> list[str]:
    meta = report["meta"]
    lines = [
        f"== throughput benchmark ({meta['rows_per_table']} rows/table, "
        f"batch {meta['batch_size']}, {meta['cpu_count']} cpu) =="
    ]
    for entry in report["results"]:
        check = "ok" if report["validation"][entry["backend"]] else "MISMATCH"
        steps = "  ".join(
            f"w{workers}={data['qps']:.0f}qps(x{data['speedup_vs_serial']:.2f})"
            for workers, data in entry["workers"].items()
        )
        lines.append(
            f"{entry['backend']:15} serial={entry['serial_qps']:7.1f} qps  "
            f"{steps}  [{check}]"
        )
    load = report["bulk_load"]
    lines.append(
        f"bulk load: single txn {load['single_transaction_ms']:.0f} ms vs "
        f"per-batch commits {load['commit_per_batch_ms']:.0f} ms "
        f"(x{load['speedup']:.1f})"
    )
    cache = report["persistent_cache"]
    lines.append(
        f"persistent cache: this run hits={cache['this_run']['hits']} "
        f"misses={cache['this_run']['misses']}; cold service "
        f"hits={cache['cross_service_demo']['cold_service']['hits']} "
        f"misses={cache['cross_service_demo']['cold_service']['misses']}"
    )
    summary = report["summary"]
    lines.append(
        f"best speedup at 4 workers: x{summary['best_speedup_at_4_workers']} "
        f"({summary['best_speedup_backend']}); 2x target met: "
        f"{summary['target_2x_at_4_workers_met']}"
    )
    if meta["note"]:
        lines.append(f"note: {meta['note']}")
    return lines
