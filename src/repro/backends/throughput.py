"""Concurrent-serving benchmark: QPS serial vs. threads vs. asyncio.

The second tracked perf baseline (``BENCH_throughput.json``, alongside
``BENCH_optimizer.json``'s latency/plan-quality one).  For every available
execution backend it measures the queries-per-second of a fixed mixed batch
of Cypher texts over a warmed :class:`~repro.backends.pool.ConnectionPool`
in two lanes sharing the same dataset and serial baseline:

* **threads** — :meth:`GraphitiService.run_many` at 1 (the serial
  baseline), 2, 4, and 8 worker threads;
* **async** — :meth:`AsyncGraphitiService.run_many` at concurrency 2, 4,
  and 8 (semaphore-bounded coroutines, executor-offloaded driver calls).

Each lane reports per-query p50/p95 tail latency from the service's
:class:`~repro.backends.service.QueryStat` samples (statistics are reset
between lanes so the percentiles describe one lane each).

Correctness gates the numbers twice per lane:

* on a small instance every *concurrently produced* result (threaded and
  async) is checked bag-equivalent against the reference evaluator, and
* at bench scale every concurrent batch is checked element-wise against the
  serial batch (any cross-query corruption or lost result fails the run).

The report also quantifies two satellite wins:

* **bulk load** — single-transaction loading vs. the old
  commit-per-batch behaviour, and
* **persistent transpilation cache** — this run's on-disk cache hits
  (a second, cold-process invocation of the bench reports hits for every
  query the first invocation prepared).

Thread-level speedup needs hardware: on a single-CPU container the workers
time-slice one core and QPS stays flat, so ``meta.cpu_count`` is recorded
and the pytest wrapper only asserts the ≥2× speedup target when at least
two CPUs are actually available (CI runners are multi-core).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.benchmarks.universes import SOCIAL
from repro.relational.instance import tables_equivalent

from repro.backends.async_service import AsyncGraphitiService
from repro.backends.cache import PersistentQueryCache
from repro.backends.registry import available_backends, create_backend
from repro.backends.service import GraphitiService

#: Join-heavy, small-output queries: the engine does the work (C code that
#: releases the GIL), the marshalling stays cheap — the shape where pooled
#: worker threads actually scale.
WORKLOAD: dict[str, str] = {
    "one-hop-agg": (
        "MATCH (a:USER)-[w:WROTE]->(p:POST) RETURN a.uname, Count(*)"
    ),
    "two-hop-agg": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "RETURN b.uname, Count(*)"
    ),
    "two-hop-filter": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "WHERE p.score = 10 RETURN a.uname, p.title"
    ),
    "diamond-count": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[w:WROTE]->(p:POST) "
        "MATCH (c:USER)-[l:LIKES]->(p:POST) RETURN Count(*)"
    ),
    "three-hop-count": (
        "MATCH (a:USER)-[f:FOLLOWS]->(b:USER)-[g:FOLLOWS]->(c:USER)"
        "-[w:WROTE]->(p:POST) RETURN Count(*)"
    ),
}

WORKER_COUNTS = (1, 2, 4, 8)

#: Measurement lanes: threaded ``run_many`` and the asyncio service.
MODES = ("threads", "async")


def build_batch(size: int, workload: dict[str, str] | None = None) -> list[str]:
    """A mixed batch of *size* texts, round-robin over the workload."""
    texts = list((workload or WORKLOAD).values())
    return [texts[i % len(texts)] for i in range(size)]


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def speedup_note(cpu_count: int | None = None) -> str:
    """The single-CPU qualifier every concurrency bench records in its meta.

    Parallel speedups (worker threads, async gather, shard scatter) need
    hardware: on a single-CPU host the lanes time-slice one core and
    speedups hover near 1.0, so the reports qualify their numbers with
    this shared note instead of each bench wording its own.
    """
    count = available_cpus() if cpu_count is None else cpu_count
    if count < 2:
        return (
            "parallel QPS speedup requires >1 CPU; on a single-CPU host "
            "concurrent lanes time-slice one core and speedups hover near 1.0"
        )
    return ""


# ---------------------------------------------------------------------------
# correctness: concurrent results vs the reference evaluator
# ---------------------------------------------------------------------------


def validate_concurrent(
    backends: tuple[str, ...],
    workers: int = 4,
    check_rows: int = 25,
    seed: int = 42,
    modes: tuple[str, ...] = MODES,
) -> dict[str, dict[str, bool]]:
    """Bag-equivalence of every concurrently produced result against the
    reference evaluator, per backend and per lane (small instance — the
    reference evaluator nested-loops joins).

    The async lane drives the *same* service through
    :class:`AsyncGraphitiService`, so a verdict of ``True`` in both lanes
    means threaded and asyncio serving agree with the reference (and hence
    with each other) on every query of the batch.
    """
    verdicts: dict[str, dict[str, bool]] = {name: {} for name in backends}
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_mock(check_rows, seed=seed)
        expected = {text: service.reference(text) for text in WORKLOAD.values()}
        batch = build_batch(3 * len(WORKLOAD))

        def equivalent(results) -> bool:
            return all(
                tables_equivalent(expected[text], result)
                for text, result in zip(batch, results)
            )

        if "threads" in modes:
            for name in backends:
                results = service.run_many(batch, workers=workers, backend=name)
                verdicts[name]["threads"] = equivalent(results)
        if "async" in modes:

            async def check_async() -> None:
                async with AsyncGraphitiService(
                    service, max_concurrency=workers
                ) as async_service:
                    for name in backends:
                        results = await async_service.run_many(
                            batch, concurrency=workers, backend=name
                        )
                        verdicts[name]["async"] = equivalent(results)

            asyncio.run(check_async())
    return verdicts


# ---------------------------------------------------------------------------
# throughput: QPS per worker count / async concurrency per backend
# ---------------------------------------------------------------------------


def _latency_snapshot(service: GraphitiService) -> dict[str, dict | None]:
    """Per-workload p50/p95 from the service's current QueryStat samples."""
    return {
        label: next(
            (
                {
                    "p50_ms": round(stat.p50_seconds * 1000, 3),
                    "p95_ms": round(stat.p95_seconds * 1000, 3),
                    "executions": stat.executions,
                }
                for stat in service.query_stats()
                if stat.cypher_text == text
            ),
            None,
        )
        for label, text in WORKLOAD.items()
    }


def _lane_step(qps: float, wall: float, serial_qps: float) -> dict:
    return {
        "qps": round(qps, 1),
        "wall_ms": round(wall * 1000, 2),
        "speedup_vs_serial": round(qps / serial_qps, 3) if serial_qps else 0.0,
    }


def measure_throughput(
    rows_per_table: int = 2000,
    batch_size: int = 40,
    repeats: int = 3,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    backends: tuple[str, ...] | None = None,
    seed: int = 42,
    persistent_cache: PersistentQueryCache | None = None,
    modes: tuple[str, ...] = MODES,
) -> list[dict]:
    """Per-backend QPS in every requested lane, sharing one dataset and one
    serial baseline, with per-lane tail latency and an element-wise
    consistency check of every concurrent batch against the serial one.

    The serial baseline (``run_many(workers=1)``) is always measured; the
    *threads* lane adds the multi-worker counts, the *async* lane drives
    the same pooled connections through :class:`AsyncGraphitiService` at
    matching concurrency levels.  Query statistics are reset between lanes
    so each latency snapshot (``serial``, ``threads``, ``async``) describes
    only its own lane's executions.  A lane that is not measured reports
    ``None`` for its consistency verdict — never a vacuous pass.
    """
    names = backends or available_backends()
    batch = build_batch(batch_size)
    max_workers = max(worker_counts)
    fan_out_counts = tuple(count for count in worker_counts if count > 1)
    results: list[dict] = []
    with GraphitiService(
        SOCIAL.graph_schema, persistent_cache=persistent_cache
    ) as service:
        service.load_mock(rows_per_table, seed=seed)
        async_service = AsyncGraphitiService(service, max_concurrency=max_workers)
        try:
            for name in names:
                # Pay member creation (bulk loads for clone-loading engines)
                # before the clock starts.
                service.warm_pool(name, max_workers)

                # Serial baseline — shared denominator for both lanes.
                service.reset_query_stats()
                serial_tables: list | None = None
                best_wall = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    tables = service.run_many(batch, workers=1, backend=name)
                    best_wall = min(best_wall, time.perf_counter() - start)
                    if serial_tables is None:
                        serial_tables = tables
                serial_qps = len(batch) / best_wall
                serial_reference = dict(zip(batch, serial_tables))
                per_worker = {"1": _lane_step(serial_qps, best_wall, serial_qps)}
                latency: dict[str, dict] = {"serial": _latency_snapshot(service)}
                # None = lane not measured this run (recorded as null, never
                # as a vacuous pass).
                consistent: dict[str, bool | None] = {
                    "threads": True if "threads" in modes else None,
                    "async": True if "async" in modes else None,
                }

                def batch_consistent(tables) -> bool:
                    return all(
                        tables_equivalent(serial_reference[text], table)
                        for text, table in zip(batch, tables)
                    )

                if "threads" in modes:
                    service.reset_query_stats()
                    for workers in fan_out_counts:
                        best_wall = float("inf")
                        for repeat in range(repeats):
                            start = time.perf_counter()
                            tables = service.run_many(
                                batch, workers=workers, backend=name
                            )
                            best_wall = min(best_wall, time.perf_counter() - start)
                            if repeat == 0:
                                consistent["threads"] = consistent[
                                    "threads"
                                ] and batch_consistent(tables)
                        per_worker[str(workers)] = _lane_step(
                            len(batch) / best_wall, best_wall, serial_qps
                        )
                    latency["threads"] = _latency_snapshot(service)

                per_async: dict[str, dict] = {}
                if "async" in modes:

                    async def timed_async_batch(concurrency: int):
                        # Clock inside the running loop: event-loop setup/
                        # teardown and lazy executor spin-up must not be
                        # charged to the lane being measured.
                        start = time.perf_counter()
                        tables = await async_service.run_many(
                            batch, concurrency=concurrency, backend=name
                        )
                        return tables, time.perf_counter() - start

                    # Untimed warmup: spin up the offload executor.
                    asyncio.run(timed_async_batch(fan_out_counts[0] if fan_out_counts else 1))
                    service.reset_query_stats()
                    for concurrency in fan_out_counts:
                        best_wall = float("inf")
                        for repeat in range(repeats):
                            tables, wall = asyncio.run(
                                timed_async_batch(concurrency)
                            )
                            best_wall = min(best_wall, wall)
                            if repeat == 0:
                                consistent["async"] = consistent[
                                    "async"
                                ] and batch_consistent(tables)
                        per_async[str(concurrency)] = _lane_step(
                            len(batch) / best_wall, best_wall, serial_qps
                        )
                    latency["async"] = _latency_snapshot(service)

                results.append(
                    {
                        "backend": name,
                        "pool_size": service.pool(name).size,
                        "serial_qps": round(serial_qps, 1),
                        "workers": per_worker,
                        "async": per_async,
                        "latency": latency,
                        "consistent_with_serial": consistent["threads"],
                        "async_consistent_with_serial": consistent["async"],
                    }
                )
        finally:
            async_service.close()
    return results


# ---------------------------------------------------------------------------
# satellite: tracing overhead (always-on instrumentation must stay cheap)
# ---------------------------------------------------------------------------

#: QPS regression allowed with a real tracer attached (percent).
TRACING_BUDGET_PCT = 5.0


def measure_tracing_overhead(
    rows_per_table: int = 1000,
    batch_size: int = 40,
    repeats: int = 20,
    backend: str = "sqlite-memory",
    seed: int = 42,
) -> dict:
    """Traced-vs-untraced serving QPS (the always-on tracing budget).

    Two lanes over one warmed service — the default no-op tracer and a
    real :class:`~repro.observability.tracing.Tracer` — sampled as
    *repeats* interleaved rounds of one batch per lane, the lane order
    alternating every round, each lane's QPS taken from its best batch
    time over an **equal sample count**.  Equal counts matter: comparing
    a minimum over more samples against one over fewer is systematically
    biased by host noise (the bigger pool's floor is lower), which on a
    busy container fabricates several percent of phantom "overhead".
    The even- and odd-round no-op samples form two half-lanes whose
    best-time spread (``noop_spread_pct``) bounds the residual noise —
    what "~zero no-op cost" means on this host.  Negative overhead is
    noise, not a speedup.
    """
    from repro.observability.tracing import Tracer

    batch = build_batch(batch_size)
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_mock(rows_per_table, seed=seed)
        service.warm_pool(backend, 1)
        # Warmup fills the transpilation caches: the lanes measure serving,
        # not first-call compilation.
        service.run_many(batch, workers=1, backend=backend)

        def one_batch() -> float:
            start = time.perf_counter()
            service.run_many(batch, workers=1, backend=backend)
            return time.perf_counter() - start

        def traced_batch() -> float:
            service.set_tracer(Tracer(max_traces=8))
            try:
                return one_batch()
            finally:
                service.set_tracer(None)

        noop_times: list[float] = []
        traced_times: list[float] = []
        for round_index in range(repeats):
            if round_index % 2 == 0:
                noop_times.append(one_batch())
                traced_times.append(traced_batch())
            else:
                traced_times.append(traced_batch())
                noop_times.append(one_batch())
    noop_first = len(batch) / min(noop_times[0::2])
    noop_second = len(batch) / min(noop_times[1::2])
    traced = len(batch) / min(traced_times)
    baseline = len(batch) / min(noop_times)
    spread = (
        abs(noop_first - noop_second) / max(noop_first, noop_second) * 100.0
        if noop_first and noop_second
        else 0.0
    )
    overhead = (baseline - traced) / baseline * 100.0 if baseline else 0.0
    return {
        "backend": backend,
        "rows_per_table": rows_per_table,
        "batch_size": batch_size,
        "repeats": repeats,
        "noop_qps_first": round(noop_first, 1),
        "noop_qps_second": round(noop_second, 1),
        "noop_spread_pct": round(spread, 2),
        "traced_qps": round(traced, 1),
        "traced_overhead_pct": round(overhead, 2),
        "budget_pct": TRACING_BUDGET_PCT,
        "within_budget": overhead <= TRACING_BUDGET_PCT,
    }


# ---------------------------------------------------------------------------
# satellite: resource-guard overhead (budgets + checkout validation)
# ---------------------------------------------------------------------------

#: QPS regression allowed with budgets and checkout validation on (percent).
GUARD_BUDGET_PCT = 5.0


def measure_guard_overhead(
    rows_per_table: int = 1000,
    batch_size: int = 40,
    repeats: int = 20,
    backend: str = "sqlite-memory",
    seed: int = 42,
) -> dict:
    """Guarded-vs-unguarded serving QPS (the resource-guard budget).

    Same equal-sample interleaved discipline as
    :func:`measure_tracing_overhead`.  The guarded lane runs every query
    under a *generous* :class:`~repro.common.budget.QueryBudget` —
    engaging the budgeted fetch loop, the engine deadline guard, and the
    budget bookkeeping without ever tripping — with checkout liveness
    validation on; the unguarded lane turns validation off and passes no
    budget (the pre-budget fast path).  The half-lane spread of the
    unguarded samples bounds host noise, as before.
    """
    from repro.common.budget import QueryBudget

    generous = QueryBudget(max_rows=1_000_000_000, timeout_seconds=3600.0)
    batch = build_batch(batch_size)
    with GraphitiService(SOCIAL.graph_schema) as service:
        service.load_mock(rows_per_table, seed=seed)
        service.warm_pool(backend, 1)
        pool = service.pool(backend)
        service.run_many(batch, workers=1, backend=backend)  # warm the caches

        def unguarded_batch() -> float:
            pool.validate_on_checkout = False
            try:
                start = time.perf_counter()
                service.run_many(batch, workers=1, backend=backend)
                return time.perf_counter() - start
            finally:
                pool.validate_on_checkout = True

        def guarded_batch() -> float:
            start = time.perf_counter()
            service.run_many(batch, workers=1, backend=backend, budget=generous)
            return time.perf_counter() - start

        plain_times: list[float] = []
        guarded_times: list[float] = []
        for round_index in range(repeats):
            if round_index % 2 == 0:
                plain_times.append(unguarded_batch())
                guarded_times.append(guarded_batch())
            else:
                guarded_times.append(guarded_batch())
                plain_times.append(unguarded_batch())
    plain_first = len(batch) / min(plain_times[0::2])
    plain_second = len(batch) / min(plain_times[1::2])
    guarded = len(batch) / min(guarded_times)
    baseline = len(batch) / min(plain_times)
    spread = (
        abs(plain_first - plain_second) / max(plain_first, plain_second) * 100.0
        if plain_first and plain_second
        else 0.0
    )
    overhead = (baseline - guarded) / baseline * 100.0 if baseline else 0.0
    return {
        "backend": backend,
        "rows_per_table": rows_per_table,
        "batch_size": batch_size,
        "repeats": repeats,
        "unguarded_qps_first": round(plain_first, 1),
        "unguarded_qps_second": round(plain_second, 1),
        "unguarded_spread_pct": round(spread, 2),
        "guarded_qps": round(guarded, 1),
        "guarded_overhead_pct": round(overhead, 2),
        "budget_pct": GUARD_BUDGET_PCT,
        "within_budget": overhead <= GUARD_BUDGET_PCT,
    }


# ---------------------------------------------------------------------------
# satellite: single-transaction bulk load vs commit-per-batch
# ---------------------------------------------------------------------------


def measure_bulk_load(
    rows_per_table: int = 5000, batch_size: int = 200, seed: int = 42
) -> dict:
    """Load-time win of the single-transaction bulk load on ``sqlite-file``
    (the engine where commits mean fsync, so the win is real I/O)."""
    from repro.core.sdt import infer_sdt
    from repro.execution.datagen import MockDataGenerator

    sdt = infer_sdt(SOCIAL.graph_schema)
    database = MockDataGenerator(
        SOCIAL.graph_schema, sdt, seed=seed
    ).induced_instance(rows_per_table)

    def load_once(commit_mode: str) -> float:
        backend = create_backend("sqlite-file", database.schema)
        backend.connect()
        try:
            start = time.perf_counter()
            for name, table in database.tables.items():
                backend.insert_rows(
                    name, table.rows, batch_size=batch_size, commit_mode=commit_mode
                )
            return time.perf_counter() - start
        finally:
            backend.close()

    per_batch = load_once("batch")
    single = load_once("end")
    return {
        "rows_per_table": rows_per_table,
        "batch_size": batch_size,
        "commit_per_batch_ms": round(per_batch * 1000, 2),
        "single_transaction_ms": round(single * 1000, 2),
        "speedup": round(per_batch / single, 2) if single else 0.0,
    }


# ---------------------------------------------------------------------------
# satellite: persistent transpilation cache across processes
# ---------------------------------------------------------------------------


def persistent_cache_demo(cache_path: Path, rows_per_table: int = 50) -> dict:
    """Prepare the workload in one service, then again in a *fresh* service
    over the same store — the second, cold-cache service must hit disk for
    every query (the in-process stand-in for a cold process; running the
    bench script twice demonstrates the real thing)."""

    def prepare_all(service: GraphitiService) -> None:
        service.load_mock(rows_per_table, seed=42)
        for text in WORKLOAD.values():
            service.prepare(text)

    with PersistentQueryCache(cache_path) as store:
        with GraphitiService(SOCIAL.graph_schema, persistent_cache=store) as first:
            prepare_all(first)
            warm = first.persistent_cache_info()
        store.hits = store.misses = 0
        with GraphitiService(SOCIAL.graph_schema, persistent_cache=store) as cold:
            prepare_all(cold)
            cold_info = cold.persistent_cache_info()
        return {
            "path": str(cache_path),
            "first_service": {"hits": warm.hits, "misses": warm.misses},
            "cold_service": {"hits": cold_info.hits, "misses": cold_info.misses},
            "cold_hit_every_query": cold_info.misses == 0 and cold_info.hits > 0,
        }


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


def summarize(results: list[dict], valid: dict[str, dict[str, bool]]) -> dict:
    def speedup_at(entry: dict, lane: str, count: int) -> float:
        data = entry.get(lane, {}).get(str(count))
        return data["speedup_vs_serial"] if data else 0.0

    best = max(
        (
            (speedup_at(entry, "workers", 4), entry["backend"])
            for entry in results
            if "4" in entry["workers"]
        ),
        default=(0.0, None),
    )
    best_async = max(
        (
            (speedup_at(entry, "async", 4), entry["backend"])
            for entry in results
            if entry.get("async")
        ),
        default=(0.0, None),
    )
    return {
        "backends": [entry["backend"] for entry in results],
        "best_speedup_at_4_workers": best[0],
        "best_speedup_backend": best[1],
        "best_async_speedup_at_4": best_async[0],
        "best_async_backend": best_async[1],
        "target_2x_at_4_workers_met": best[0] >= 2.0,
        "all_concurrent_results_valid": all(
            verdict for lanes in valid.values() for verdict in lanes.values()
        ),
        # None when the async lane was not measured — a skipped lane must
        # not read as a validated one.
        "async_results_valid": (
            all(lanes["async"] for lanes in valid.values())
            if all("async" in lanes for lanes in valid.values()) and valid
            else None
        ),
        "all_batches_consistent_with_serial": all(
            verdict
            for entry in results
            for verdict in (
                entry["consistent_with_serial"],
                entry["async_consistent_with_serial"],
            )
            if verdict is not None
        ),
    }


def run_bench(
    rows_per_table: int = 2000,
    batch_size: int = 40,
    repeats: int = 3,
    worker_counts: tuple[int, ...] = WORKER_COUNTS,
    backends: tuple[str, ...] | None = None,
    out_path: Path | None = None,
    cache_path: Path | None = None,
    seed: int = 42,
    modes: tuple[str, ...] = MODES,
) -> dict:
    """The full benchmark; writes *out_path* and returns the report dict."""
    started = time.time()
    names = backends or available_backends()
    unknown = set(modes) - set(MODES)
    if unknown or not modes:
        raise ValueError(f"modes must be a non-empty subset of {MODES}, got {modes!r}")
    if cache_path is None:
        from repro.backends.cache import CACHE_FILE_NAME, default_cache_dir

        cache_path = default_cache_dir() / CACHE_FILE_NAME
    run_cache = PersistentQueryCache(cache_path)
    try:
        valid = validate_concurrent(names, seed=seed, modes=modes)
        results = measure_throughput(
            rows_per_table=rows_per_table,
            batch_size=batch_size,
            repeats=repeats,
            worker_counts=worker_counts,
            backends=names,
            seed=seed,
            persistent_cache=run_cache,
            modes=modes,
        )
        run_cache_stats = {
            "path": str(cache_path),
            "hits": run_cache.hits,
            "misses": run_cache.misses,
            "entries": len(run_cache),
            "cold_second_run_hits": run_cache.hits >= run_cache.misses
            and run_cache.hits > 0,
        }
    finally:
        run_cache.close()
    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "rows_per_table": rows_per_table,
            "batch_size": batch_size,
            "repeats": repeats,
            "worker_counts": list(worker_counts),
            "modes": list(modes),
            "backends": list(names),
            "universe": SOCIAL.name,
            "cpu_count": available_cpus(),
            "note": speedup_note(),
            "elapsed_seconds": round(time.time() - started, 1),
        },
        "bulk_load": measure_bulk_load(),
        "tracing_overhead": measure_tracing_overhead(
            rows_per_table=min(rows_per_table, 1000),
            batch_size=batch_size,
            seed=seed,
        ),
        "guard_overhead": measure_guard_overhead(
            rows_per_table=min(rows_per_table, 1000),
            batch_size=batch_size,
            seed=seed,
        ),
        "persistent_cache": {
            "this_run": run_cache_stats,
            "cross_service_demo": persistent_cache_demo(cache_path),
        },
        "summary": summarize(results, valid),
        "validation": valid,
        "results": results,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> list[str]:
    meta = report["meta"]
    lines = [
        f"== throughput benchmark ({meta['rows_per_table']} rows/table, "
        f"batch {meta['batch_size']}, {meta['cpu_count']} cpu) =="
    ]
    for entry in report["results"]:
        lanes = report["validation"][entry["backend"]]
        check = "ok" if all(lanes.values()) else "MISMATCH"
        steps = "  ".join(
            f"w{workers}={data['qps']:.0f}qps(x{data['speedup_vs_serial']:.2f})"
            for workers, data in entry["workers"].items()
        )
        lines.append(
            f"{entry['backend']:15} serial={entry['serial_qps']:7.1f} qps  "
            f"{steps}  [{check}]"
        )
        if entry.get("async"):
            async_steps = "  ".join(
                f"c{count}={data['qps']:.0f}qps(x{data['speedup_vs_serial']:.2f})"
                for count, data in entry["async"].items()
            )
            lines.append(f"{'':15}  async  {async_steps}")
    load = report["bulk_load"]
    lines.append(
        f"bulk load: single txn {load['single_transaction_ms']:.0f} ms vs "
        f"per-batch commits {load['commit_per_batch_ms']:.0f} ms "
        f"(x{load['speedup']:.1f})"
    )
    tracing = report.get("tracing_overhead")
    if tracing:
        lines.append(
            f"tracing overhead ({tracing['backend']}): "
            f"{tracing['traced_overhead_pct']:+.2f}% traced "
            f"(noise ±{tracing['noop_spread_pct']:.2f}%, "
            f"budget {tracing['budget_pct']:.0f}%: "
            f"{'ok' if tracing['within_budget'] else 'OVER'})"
        )
    guards = report.get("guard_overhead")
    if guards:
        lines.append(
            f"guard overhead ({guards['backend']}): "
            f"{guards['guarded_overhead_pct']:+.2f}% guarded "
            f"(noise ±{guards['unguarded_spread_pct']:.2f}%, "
            f"budget {guards['budget_pct']:.0f}%: "
            f"{'ok' if guards['within_budget'] else 'OVER'})"
        )
    cache = report["persistent_cache"]
    lines.append(
        f"persistent cache: this run hits={cache['this_run']['hits']} "
        f"misses={cache['this_run']['misses']}; cold service "
        f"hits={cache['cross_service_demo']['cold_service']['hits']} "
        f"misses={cache['cross_service_demo']['cold_service']['misses']}"
    )
    summary = report["summary"]
    if summary.get("best_speedup_backend"):
        lines.append(
            f"best speedup at 4 workers: x{summary['best_speedup_at_4_workers']} "
            f"({summary['best_speedup_backend']}); 2x target met: "
            f"{summary['target_2x_at_4_workers_met']}"
        )
    if summary.get("best_async_backend"):
        lines.append(
            f"best async speedup at concurrency 4: "
            f"x{summary['best_async_speedup_at_4']} ({summary['best_async_backend']})"
        )
    if meta["note"]:
        lines.append(f"note: {meta['note']}")
    return lines
