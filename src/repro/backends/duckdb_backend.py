"""DuckDB execution backend (feature-detected).

DuckDB is an optional dependency (``pip install repro[duckdb]``); when the
package is missing the backend stays registered but reports
``is_available() == False``, so registry lookups raise
:class:`~repro.backends.base.BackendUnavailable` and benchmarks/tests skip
it instead of failing.

DuckDB demands typed DDL, while the repro's values are dynamically typed —
so :meth:`DuckDbBackend.bulk_load` samples the data it is about to load and
creates the tables with inferred column types before the first insert
(schema DDL is deferred until then; see ``DbApiBackend._ensure_schema``).
"""

from __future__ import annotations

import threading
from importlib import import_module, util

from repro.common.budget import BudgetTracker
from repro.relational.instance import Database
from repro.sql.dialect import DUCKDB

from repro.backends.base import DbApiBackend, infer_column_types
from repro.backends.registry import register_backend


class _InterruptDeadlineGuard:
    """A timer-armed ``connection.interrupt()`` deadline for DuckDB.

    DuckDB has no progress-handler hook, but its connections expose
    ``interrupt()``, which aborts the currently running statement (the
    connection survives).  A daemon timer fires it at the budget deadline;
    ``cancel()`` both stops the timer and closes a small race window — a
    timer that fires after the statement finished must not interrupt the
    *next* statement, so firing and cancelling are mutually excluded.
    """

    def __init__(self, connection, delay_seconds: float) -> None:
        self.tripped = False
        self._connection = connection
        self._lock = threading.Lock()
        self._cancelled = False
        self._timer = threading.Timer(max(delay_seconds, 0.0), self._fire)
        self._timer.daemon = True
        self._timer.start()

    def _fire(self) -> None:
        with self._lock:
            if self._cancelled:
                return
            self.tripped = True
            try:
                self._connection.interrupt()
            except Exception:
                pass

    def cancel(self) -> None:
        with self._lock:
            self._cancelled = True
        self._timer.cancel()


@register_backend
class DuckDbBackend(DbApiBackend):
    """An in-memory DuckDB instance (skipped when duckdb is not installed)."""

    name = "duckdb"
    dialect = DUCKDB

    def __init__(self, schema) -> None:
        super().__init__(schema)
        self._type_hints: dict[str, dict[str, str]] | None = None

    @classmethod
    def is_available(cls) -> bool:
        return util.find_spec("duckdb") is not None

    def _open_connection(self):
        duckdb = import_module("duckdb")
        return duckdb.connect(":memory:")

    def _column_types(self) -> dict[str, dict[str, str]] | None:
        return self._type_hints

    def bulk_load(
        self, database: Database, batch_size: int = 1000, stats=None
    ) -> None:
        if not self._schema_created:
            self._type_hints = infer_column_types(database, self.dialect)
        super().bulk_load(database, batch_size=batch_size, stats=stats)

    def clone_for_pool(self):
        """Another connection into the same in-memory DuckDB database.

        ``duckdb.Connection.cursor()`` returns an independent connection
        sharing the parent's database (DuckDB supports concurrent readers),
        so pool members see the primary's loaded tables without re-loading.
        Closing the clone closes only its own cursor, never the shared
        database — that stays owned by the primary member.
        """
        clone = DuckDbBackend(self.schema)
        clone._type_hints = self._type_hints
        clone.connection = self.connection.cursor()
        clone._schema_created = True
        clone._table_stats = self._table_stats
        clone._stats_source = self._stats_source
        return clone

    def _install_budget_guard(self, tracker: BudgetTracker):
        remaining = tracker.remaining_seconds()
        if remaining is None or not hasattr(self.connection, "interrupt"):
            return None
        return _InterruptDeadlineGuard(self.connection, remaining)

    def explain(self, sql_text: str) -> str:
        self._ensure_connected()
        cursor = self.connection.execute(
            f"{self.dialect.explain_prefix} {sql_text}"
        )
        # DuckDB's EXPLAIN yields (key, rendered-plan-text) rows.
        return "\n".join(str(row[-1]) for row in cursor.fetchall())
