"""Partition-parallel scan benchmark: per-query latency serial vs N-way.

The tracked intra-query parallelism baseline (``BENCH_parallel.json``,
alongside the optimizer-latency, concurrency, sharding, and adaptive
ones).  Where ``BENCH_sharding.json`` measures *inter*-query scaling of a
batch across shards, this one measures *intra*-query scaling: the same
single query served serially and partition-scattered at degree 2/4/8 over
the same loaded data, on the same connection pool.

The workload is fragment-shaped — one scan-heavy headline query
(``large-scan``: a selective filter whose cost is the full table scan,
not result marshalling) plus COUNT/AVG/grouped aggregates and DISTINCT —
because those are exactly the plans the gate admits.  Joins and
traversals classify non-fragmentable and would measure the serial path
twice.

Correctness gates the numbers twice, as every tracked bench does:

* on a small instance every workload query is checked bag-equivalent
  against the reference evaluator at every degree (threshold forced to 0
  so the gate opens on tiny data), in both the sync and asyncio serving
  lanes, and
* at bench scale every parallel result is checked bag-equivalent against
  the serial service's result for the same query (a partition boundary
  error — lost rows, double-counted rows, a broken Avg recomposition —
  fails the run, it does not ship a fast wrong number).

Two overhead lanes keep the feature honest when it *cannot* help:

* ``gate_overhead`` — a parallel-enabled service whose queries all fall
  below the row threshold (the gate keeps everything serial) vs a
  ``parallelism=1`` service: the cost of carrying the feature turned on
  but idle, budgeted at :data:`OVERHEAD_BUDGET_PCT` percent.

Scan speedup needs hardware: ``meta.cpu_count`` is recorded and
``meta.note`` carries the single-CPU qualifier from
:func:`repro.backends.throughput.speedup_note`, so the pytest wrapper
only asserts the speedup bar on multi-core hosts.
"""

from __future__ import annotations

import asyncio
import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.benchmarks.universes import SOCIAL
from repro.relational.instance import tables_equivalent

from repro.backends.async_service import AsyncGraphitiService
from repro.backends.service import GraphitiService
from repro.backends.throughput import available_cpus, speedup_note

#: Fragment-shaped queries only — the plans the partition gate admits.
#: ``large-scan`` is the headline lane: a selective filter whose result is
#: small, so its latency is dominated by the table scan the partitions
#: split (not by marshalling rows back into Python).
PARALLEL_WORKLOAD: dict[str, str] = {
    "large-scan": "MATCH (u:USER) WHERE u.age = 30 RETURN u.uname, u.age",
    "node-count": "MATCH (p:POST) RETURN Count(*)",
    "avg-score": "MATCH (p:POST) RETURN Avg(p.score)",
    "grouped-count": "MATCH (u:USER) RETURN u.age, Count(*)",
    "distinct-age": "MATCH (u:USER) RETURN DISTINCT u.age",
}

#: The headline lane the summary's ``speedup_at_4`` tracks.
HEADLINE = "large-scan"

DEGREES = (2, 4, 8)

DEFAULT_BACKEND = "sqlite-memory"

#: Budget for the parallel-enabled-but-gated-serial overhead lane, in
#: percent — same bar the tracing and guard overhead lanes use.
OVERHEAD_BUDGET_PCT = 5.0


# ---------------------------------------------------------------------------
# correctness: every query vs the reference evaluator, per degree
# ---------------------------------------------------------------------------


def validate_parallel(
    degrees: tuple[int, ...] = DEGREES,
    backend: str = DEFAULT_BACKEND,
    check_rows: int = 30,
    seed: int = 42,
) -> dict[str, dict[str, bool]]:
    """Bag-equivalence of every workload query against the reference
    evaluator at every degree, in both serving lanes.

    The threshold is forced to 0 so the gate opens on the small check
    instance; the async lane drives the *same* service through
    :class:`AsyncGraphitiService`, so ``True`` in both lanes means the
    threaded scatter and the offloaded asyncio scatter agree with the
    reference (and with each other) on every query — including the Avg
    Sum/Count recomposition and the DISTINCT re-application.
    """
    verdicts: dict[str, dict[str, bool]] = {}
    for degree in degrees:
        with GraphitiService(
            SOCIAL.graph_schema,
            default_backend=backend,
            parallelism=degree,
            parallel_row_threshold=0,
        ) as service:
            service.load_mock(check_rows, seed=seed)
            expected = {
                text: service.reference(text)
                for text in PARALLEL_WORKLOAD.values()
            }
            sync_ok = all(
                tables_equivalent(expected[text], service.run(text))
                for text in PARALLEL_WORKLOAD.values()
            )

            async def check_async() -> bool:
                async with AsyncGraphitiService(service) as async_service:
                    results = [
                        await async_service.run(text)
                        for text in PARALLEL_WORKLOAD.values()
                    ]
                return all(
                    tables_equivalent(expected[text], table)
                    for text, table in zip(PARALLEL_WORKLOAD.values(), results)
                )

            scattered = (
                service.metrics.counter("repro_parallel_queries_total").total()
                > 0
            )
            verdicts[str(degree)] = {
                "threads": sync_ok,
                "async": asyncio.run(check_async()),
                "scattered": scattered,
            }
    return verdicts


# ---------------------------------------------------------------------------
# latency: serial vs N-way per query
# ---------------------------------------------------------------------------


def _timed_query(service, text: str, repeats: int) -> float:
    """Best wall seconds for one served query over *repeats* runs (the
    first, untimed, run warms the prepare and fragment caches)."""
    service.run(text)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        service.run(text)
        best = min(best, time.perf_counter() - start)
    return best


def measure_parallel(
    rows_per_table: int = 20000,
    repeats: int = 5,
    degrees: tuple[int, ...] = DEGREES,
    backend: str = DEFAULT_BACKEND,
    seed: int = 42,
) -> dict:
    """Serial baseline plus one entry per degree, every parallel result
    checked bag-equivalent against the serial one at bench scale."""
    with GraphitiService(
        SOCIAL.graph_schema, default_backend=backend
    ) as serial:
        serial.load_mock(rows_per_table, seed=seed)
        serial_wall = {
            label: _timed_query(serial, text, repeats)
            for label, text in PARALLEL_WORKLOAD.items()
        }
        reference_tables = {
            label: serial.run(text)
            for label, text in PARALLEL_WORKLOAD.items()
        }
    baseline = {
        "backend": backend,
        "latency_ms": {
            label: round(wall * 1000, 3) for label, wall in serial_wall.items()
        },
    }

    entries: list[dict] = []
    for degree in degrees:
        with GraphitiService(
            SOCIAL.graph_schema,
            default_backend=backend,
            parallelism=degree,
        ) as service:
            service.load_mock(rows_per_table, seed=seed)
            service.warm_pool(backend, degree)
            walls: dict[str, float] = {}
            consistent = True
            engaged: dict[str, bool] = {}
            for label, text in PARALLEL_WORKLOAD.items():
                walls[label] = _timed_query(service, text, repeats)
                table, prepared = service.serve(text)
                verdict = prepared.plan.parallelism or {}
                engaged[label] = bool(verdict.get("parallel"))
                consistent = consistent and tables_equivalent(
                    reference_tables[label], table
                )
            entries.append(
                {
                    "degree": degree,
                    "backend": backend,
                    "latency_ms": {
                        label: round(wall * 1000, 3)
                        for label, wall in walls.items()
                    },
                    "speedup_vs_serial": {
                        label: round(serial_wall[label] / walls[label], 3)
                        if walls[label]
                        else 0.0
                        for label in PARALLEL_WORKLOAD
                    },
                    "parallel_engaged": engaged,
                    "consistent_with_serial": consistent,
                    "parallel_queries": int(
                        service.metrics.counter(
                            "repro_parallel_queries_total"
                        ).total()
                    ),
                }
            )
    return {"serial": baseline, "parallel": entries}


# ---------------------------------------------------------------------------
# overhead: the gate on, but every query below the threshold
# ---------------------------------------------------------------------------


def measure_gate_overhead(
    rows_per_table: int = 1000,
    iterations: int = 40,
    repeats: int = 5,
    backend: str = DEFAULT_BACKEND,
    seed: int = 42,
) -> dict:
    """Cost of carrying ``parallelism=4`` enabled but gated serial.

    *rows_per_table* sits below the default row threshold, so every
    workload query classifies, gates, and then runs the ordinary serial
    path — the measured delta is pure gate overhead (one cached
    classification per prepared query plus a per-serve dictionary probe).
    """

    def loop_wall(service) -> float:
        for text in PARALLEL_WORKLOAD.values():  # warm caches untimed
            service.run(text)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                for text in PARALLEL_WORKLOAD.values():
                    service.run(text)
            best = min(best, time.perf_counter() - start)
        return best

    with GraphitiService(
        SOCIAL.graph_schema, default_backend=backend
    ) as plain:
        plain.load_mock(rows_per_table, seed=seed)
        serial_wall = loop_wall(plain)
    with GraphitiService(
        SOCIAL.graph_schema, default_backend=backend, parallelism=4
    ) as gated:
        gated.load_mock(rows_per_table, seed=seed)
        gated_wall = loop_wall(gated)
        stayed_serial = (
            gated.metrics.counter("repro_parallel_queries_total").total() == 0
        )
    overhead_pct = (
        (gated_wall - serial_wall) / serial_wall * 100 if serial_wall else 0.0
    )
    return {
        "rows_per_table": rows_per_table,
        "iterations": iterations,
        "queries_per_iteration": len(PARALLEL_WORKLOAD),
        "serial_wall_ms": round(serial_wall * 1000, 2),
        "gated_wall_ms": round(gated_wall * 1000, 2),
        "overhead_pct": round(overhead_pct, 2),
        "budget_pct": OVERHEAD_BUDGET_PCT,
        "stayed_serial": stayed_serial,
    }


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------


def summarize(
    results: dict, valid: dict[str, dict[str, bool]], overhead: dict
) -> dict:
    speedups = {
        str(entry["degree"]): entry["speedup_vs_serial"][HEADLINE]
        for entry in results["parallel"]
    }
    best = max(
        (
            (entry["speedup_vs_serial"][HEADLINE], entry["degree"])
            for entry in results["parallel"]
        ),
        default=(0.0, None),
    )
    return {
        "degrees": [entry["degree"] for entry in results["parallel"]],
        "headline_lane": HEADLINE,
        "serial_headline_ms": results["serial"]["latency_ms"][HEADLINE],
        "headline_speedup_by_degree": speedups,
        "speedup_at_4": speedups.get("4"),
        "best_speedup": best[0],
        "best_degree": best[1],
        "all_results_valid": all(
            verdict
            for lanes in valid.values()
            for verdict in lanes.values()
        ),
        "all_parallel_consistent_with_serial": all(
            entry["consistent_with_serial"] for entry in results["parallel"]
        ),
        "all_lanes_engaged": all(
            all(entry["parallel_engaged"].values())
            for entry in results["parallel"]
        ),
        "gate_overhead_pct": overhead["overhead_pct"],
        "overhead_within_budget": overhead["overhead_pct"]
        <= overhead["budget_pct"],
        # The noise-tolerant bar automated gates assert (same 3x slack the
        # guard-overhead CI lane uses): single-digit-ms walls jitter on
        # loaded runners; the strict verdict above tracks the real number.
        "overhead_within_3x_budget": overhead["overhead_pct"]
        <= 3 * overhead["budget_pct"],
    }


def run_bench(
    rows_per_table: int = 20000,
    repeats: int = 5,
    degrees: tuple[int, ...] = DEGREES,
    backend: str = DEFAULT_BACKEND,
    out_path: Path | None = None,
    seed: int = 42,
) -> dict:
    """The full parallelism benchmark; writes *out_path*, returns the report."""
    started = time.time()
    valid = validate_parallel(degrees, backend=backend, seed=seed)
    results = measure_parallel(
        rows_per_table=rows_per_table,
        repeats=repeats,
        degrees=degrees,
        backend=backend,
        seed=seed,
    )
    overhead = measure_gate_overhead(backend=backend, seed=seed)
    report = {
        "meta": {
            "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "rows_per_table": rows_per_table,
            "repeats": repeats,
            "degrees": list(degrees),
            "backend": backend,
            "universe": SOCIAL.name,
            "workload": list(PARALLEL_WORKLOAD),
            "cpu_count": available_cpus(),
            "note": speedup_note(),
            "elapsed_seconds": round(time.time() - started, 1),
        },
        "summary": summarize(results, valid, overhead),
        "validation": valid,
        "serial": results["serial"],
        "parallel": results["parallel"],
        "gate_overhead": overhead,
    }
    if out_path is not None:
        out_path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def format_report(report: dict) -> list[str]:
    meta = report["meta"]
    lines = [
        f"== parallel scan benchmark ({meta['rows_per_table']} rows/table, "
        f"backend {meta['backend']}, {meta['cpu_count']} cpu) =="
    ]
    serial_ms = report["serial"]["latency_ms"]
    lines.append(
        "serial            "
        + "  ".join(f"{label} {ms:7.2f} ms" for label, ms in serial_ms.items())
    )
    for entry in report["parallel"]:
        lanes = report["validation"][str(entry["degree"])]
        check = (
            "ok"
            if all(lanes.values()) and entry["consistent_with_serial"]
            else "MISMATCH"
        )
        lines.append(
            f"{entry['degree']}-way             "
            + "  ".join(
                f"{label} x{speedup:.2f}"
                for label, speedup in entry["speedup_vs_serial"].items()
            )
            + f"  [{check}]"
        )
    summary = report["summary"]
    lines.append(
        f"headline ({summary['headline_lane']}): best x{summary['best_speedup']} "
        f"at degree {summary['best_degree']}; gate overhead "
        f"{summary['gate_overhead_pct']}% (budget "
        f"{report['gate_overhead']['budget_pct']}%)"
    )
    if meta["note"]:
        lines.append(f"note: {meta['note']}")
    return lines
