"""Intra-query parallelism: partition-parallel scans over one connection pool.

The sharding coordinator (:mod:`repro.backends.sharding`) scales *across*
processes by hash-partitioning the data; this module scales *within* one
node without moving a single row.  The same fragment classifier
(:mod:`repro.sql.fragment`) that decides whether a plan can scatter over
shards also tells us whether it can scatter over **rowid range partitions**
of the scanned base table:

* ``shard_local`` fragments bag-union — each input row lives in exactly
  one rowid range, so the union of per-partition results is the answer;
* ``merge_aggregable`` fragments fold — partitions compute partial
  aggregates (Avg decomposed into Sum+Count) and
  :func:`~repro.sql.fragment.merge_partials` combines them, exactly as
  the shard coordinator does.

Partition SQL is built by rewriting the fragment's scanned relation to a
synthetic CTE that selects the same columns restricted to one rowid range::

    WITH "__partition" AS (
        SELECT "uid", "uname", "age" FROM "USER"
        WHERE "rowid" >= 500 AND "rowid" < 1000
    ) SELECT ... original fragment body over "__partition" ...

Engines that expose a rowid pseudo-column (SQLite, DuckDB — see
:attr:`~repro.sql.dialect.SqlDialect.rowid_column`) inline the single-use
CTE, so the range predicate reaches the base table's b-tree and each
partition genuinely scans a disjoint slice.  The rewrite is safe because
fragmentable plans never contain a ``WITH`` of their own (the classifier
rejects :class:`~repro.sql.ast.WithQuery`), so prefixing one cannot
collide.

The cost gate (:func:`plan_parallelism`) keeps a query serial unless the
:class:`~repro.sql.planner.CardinalityEstimator`'s row count for the
scanned relation clears :data:`PARALLEL_ROW_THRESHOLD` — splitting a small
scan buys nothing and pays thread + merge overhead.  The verdict, either
way, is recorded in :attr:`~repro.sql.planner.PlanReport.parallelism` so
``repro explain`` shows the chosen degree or the reason it stayed serial.

The module also hosts :func:`run_indexed`, the one batch fan-out loop the
service and the shard coordinator both use for ``run_many`` — in-order
results and first-failure propagation live in a single place.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.relational.instance import Table
from repro.relational.schema import Relation, RelationalSchema
from repro.sql import ast
from repro.sql.analysis import referenced_relations
from repro.sql.dialect import SqlDialect
from repro.sql.fragment import FragmentPlan, merge_partials
from repro.sql.planner import CardinalityEstimator
from repro.sql.pretty import to_sql_text
from repro.sql.stats import DatabaseStats

#: Estimated scanned rows below which a fragmentable plan stays serial —
#: partitioning a small scan costs more in thread handoff and merge than
#: the engine saves.  Services override per instance
#: (``parallel_row_threshold``); tests force the gate open with ``0``.
PARALLEL_ROW_THRESHOLD = 2048.0

#: Name of the synthetic range-restricted CTE each partition scans.  The
#: double underscore keeps it out of the way of induced relation names
#: (Cypher identifiers cannot start with ``_``), mirroring the
#: ``__shard_avg_*`` aliases of the fragment seam.
PARTITION_CTE = "__partition"


# ---------------------------------------------------------------------------
# The cost gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParallelDecision:
    """Whether (and how) one prepared query's scan is partitioned.

    ``degree`` is the *effective* fan-out — the requested degree, possibly
    clamped down when the table has fewer rows than partitions; ``1``
    whenever ``parallel`` is false.  ``reason`` explains the serial
    verdict (or restates the gate that opened); ``estimated_rows`` is the
    estimator's (feedback-scaled) row count the threshold was compared
    against, when the gate got that far.
    """

    parallel: bool
    degree: int
    requested: int
    reason: str
    relation: str | None = None
    kind: str | None = None
    estimated_rows: float | None = None
    threshold: float | None = None

    def to_dict(self) -> dict:
        """JSON-friendly summary, embedded in ``PlanReport.parallelism``."""
        document: dict = {
            "parallel": self.parallel,
            "degree": self.degree,
            "requested": self.requested,
            "reason": self.reason,
        }
        if self.relation is not None:
            document["relation"] = self.relation
        if self.kind is not None:
            document["kind"] = self.kind
        if self.estimated_rows is not None:
            document["estimated_rows"] = round(self.estimated_rows, 1)
        if self.threshold is not None:
            document["threshold"] = self.threshold
        return document


def _serial(requested: int, reason: str, **fields) -> ParallelDecision:
    return ParallelDecision(False, 1, requested, reason, **fields)


def plan_parallelism(
    fragment: FragmentPlan,
    *,
    schema: RelationalSchema,
    stats: DatabaseStats | None,
    degree: int,
    dialect: SqlDialect,
    row_scale: float = 1.0,
    threshold: float | None = None,
) -> ParallelDecision:
    """Decide whether *fragment* should scatter over rowid partitions.

    Serial verdicts name their gate: parallelism not requested, a dialect
    without a rowid pseudo-column, a non-fragmentable plan, missing row
    statistics, a scanned column shadowing the rowid name, or an
    estimated scan too small to beat the threshold.  *row_scale* is the
    adaptive layer's base-cardinality correction, so a feedback-scaled
    estimate opens (or closes) the same gate the join planner sees.
    """
    limit = PARALLEL_ROW_THRESHOLD if threshold is None else float(threshold)
    if degree < 2:
        return _serial(degree, "parallelism not requested (degree < 2)")
    if dialect.rowid_column is None:
        return _serial(
            degree,
            f"dialect {dialect.name!r} has no rowid pseudo-column to partition by",
        )
    if not fragment.fragmentable or fragment.shard_query is None:
        return _serial(degree, fragment.reason, kind=fragment.kind)
    scanned = referenced_relations(fragment.shard_query)
    assert len(scanned) == 1  # fragmentable plans scan exactly one relation
    relation = next(iter(scanned))
    rowid = dialect.rowid_column.lower()
    if any(a.lower() == rowid for a in schema.relation(relation).attributes):
        return _serial(
            degree,
            f"relation {relation!r} has a real {dialect.rowid_column!r} column "
            "shadowing the pseudo-column",
            relation=relation,
            kind=fragment.kind,
        )
    if stats is None or relation not in stats:
        return _serial(
            degree,
            f"no row statistics for {relation!r}; cannot derive partition bounds",
            relation=relation,
            kind=fragment.kind,
        )
    row_count = stats[relation].row_count
    estimator = CardinalityEstimator(schema, stats, row_scale=row_scale)
    estimated = estimator.base_rows(relation)
    if estimated < limit:
        return _serial(
            degree,
            f"estimated {estimated:.0f} rows below the parallel threshold "
            f"of {limit:.0f}",
            relation=relation,
            kind=fragment.kind,
            estimated_rows=estimated,
            threshold=limit,
        )
    effective = min(degree, max(row_count, 1))
    if effective < 2:
        return _serial(
            degree,
            f"{relation!r} has too few rows ({row_count}) to partition",
            relation=relation,
            kind=fragment.kind,
            estimated_rows=estimated,
            threshold=limit,
        )
    return ParallelDecision(
        True,
        effective,
        degree,
        f"{fragment.kind} fragment over {relation!r}: estimated "
        f"{estimated:.0f} rows clear the threshold of {limit:.0f}",
        relation=relation,
        kind=fragment.kind,
        estimated_rows=estimated,
        threshold=limit,
    )


# ---------------------------------------------------------------------------
# Partition SQL
# ---------------------------------------------------------------------------


def partition_bounds(
    row_count: int, degree: int
) -> list[tuple[int | None, int | None]]:
    """*degree* disjoint, covering ``(lower, upper)`` rowid ranges.

    Bounds are half-open — ``lower <= rowid < upper`` — with the first
    lower and last upper left ``None`` (unbounded), so the split is
    correct whatever the engine's rowid base is (SQLite numbers from 1,
    DuckDB from 0) and keeps covering rows inserted after the statistics
    were collected.  Interior boundaries come from the stats row count;
    a stale count only skews the *balance* of the split, never its
    correctness.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if degree == 1:
        return [(None, None)]
    cuts = [round(index * row_count / degree) for index in range(1, degree)]
    bounds: list[tuple[int | None, int | None]] = []
    previous: int | None = None
    for cut in cuts:
        bounds.append((previous, cut))
        previous = cut
    bounds.append((previous, None))
    return bounds


def _replace_relation(query: ast.Query, old: str, new: str) -> ast.Query:
    if isinstance(query, ast.Relation):
        return ast.Relation(new) if query.name == old else query
    return ast.map_children(query, lambda child: _replace_relation(child, old, new))


def partition_statements(
    fragment: FragmentPlan,
    relation: str,
    bounds: Sequence[tuple[int | None, int | None]],
    schema: RelationalSchema,
    dialect: SqlDialect,
) -> list[str]:
    """One SQL statement per partition: the fragment body over a
    range-restricted CTE standing in for the scanned relation.

    The body is rendered once (the partitions differ only in the WHERE
    range of the prefixed CTE), against a schema extended with the CTE
    name carrying the original relation's attributes.
    """
    base = schema.relation(relation)
    extended = RelationalSchema.of(
        (*schema.relations, Relation(PARTITION_CTE, base.attributes)),
        schema.constraints,
    )
    rewritten = _replace_relation(fragment.shard_query, relation, PARTITION_CTE)
    body = to_sql_text(rewritten, extended, optimized=False, dialect=dialect)
    columns = ", ".join(dialect.quote(a) for a in base.attributes)
    rowid = dialect.quote(dialect.rowid_column)
    statements = []
    for lower, upper in bounds:
        conditions = []
        if lower is not None:
            conditions.append(f"{rowid} >= {lower}")
        if upper is not None:
            conditions.append(f"{rowid} < {upper}")
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        statements.append(
            f"WITH {dialect.quote(PARTITION_CTE)} AS "
            f"(SELECT {columns} FROM {dialect.quote(relation)}{where}) {body}"
        )
    return statements


# ---------------------------------------------------------------------------
# The partition executor
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FragmentExecutor:
    """One fragmentable plan, split into executable rowid partitions.

    Built once per (prepared query, degree) and cached alongside the
    prepared query; holds the fragment plan (whose merge rules
    :func:`~repro.sql.fragment.merge_partials` consumes), the gate's
    verdict, and the rendered per-partition SQL.  Execution mechanics —
    pooled connections, retry, budgets, spans — stay with the serving
    layer, which passes a ``run_partition(index) -> Table`` callback to
    :meth:`scatter_gather`.
    """

    fragment: FragmentPlan
    decision: ParallelDecision
    statements: tuple[str, ...]

    @classmethod
    def build(
        cls,
        fragment: FragmentPlan,
        decision: ParallelDecision,
        *,
        schema: RelationalSchema,
        stats: DatabaseStats,
        dialect: SqlDialect,
    ) -> "FragmentExecutor":
        """Derive partition bounds from the stats row count and render the
        per-partition statements for a gate-approved *decision*."""
        assert decision.parallel and decision.relation is not None
        bounds = partition_bounds(
            stats[decision.relation].row_count, decision.degree
        )
        statements = partition_statements(
            fragment, decision.relation, bounds, schema, dialect
        )
        return cls(fragment, decision, tuple(statements))

    def scatter(
        self,
        run_partition: Callable[[int], Table],
        executor: ThreadPoolExecutor | None = None,
    ) -> list[Table]:
        """Run every partition concurrently; partials in partition order."""
        partials: list[Table | None] = [None] * len(self.statements)

        def one(index: int) -> None:
            partials[index] = run_partition(index)

        run_indexed(
            len(self.statements), one, self.decision.degree, executor=executor
        )
        assert all(partial is not None for partial in partials)
        return partials  # type: ignore[return-value]

    def gather(self, partials: list[Table]) -> Table:
        """Merge per-partition partials into the query's answer.

        Reuses the shard coordinator's rules: bag union for shard-local
        fragments (DISTINCT re-applied), distributive folds and the Avg
        Sum/Count recomposition for merge-aggregable ones, ORDER
        BY/LIMIT re-applied over the merged rows.
        """
        return merge_partials(self.fragment, partials)

    def scatter_gather(
        self,
        run_partition: Callable[[int], Table],
        executor: ThreadPoolExecutor | None = None,
    ) -> Table:
        """:meth:`scatter` then :meth:`gather`, for callers without spans."""
        return self.gather(self.scatter(run_partition, executor=executor))


# ---------------------------------------------------------------------------
# Fan-out (shared by run_many batches and partition scatter)
# ---------------------------------------------------------------------------


def run_indexed(
    total: int,
    execute_one: Callable[[int], None],
    workers: int,
    executor: ThreadPoolExecutor | None = None,
) -> None:
    """Run ``execute_one(0..total-1)``, fanned across *workers* threads.

    The single batch loop behind ``GraphitiService.run_many``,
    ``ShardedGraphitiService.run_many``, and the partition scatter, so
    their semantics cannot drift: callers write results into their own
    index-addressed list (in-order by construction), every submitted call
    runs to completion even when a sibling fails, and the first failure
    (in index order) propagates.  With *executor* the work runs on the
    caller's persistent pool; otherwise a throwaway pool is used.
    ``workers == 1`` (or a single item) degenerates to an inline loop.
    """
    if total <= 0:
        return
    if workers <= 1 or total == 1:
        for index in range(total):
            execute_one(index)
        return
    if executor is None:
        with ThreadPoolExecutor(max_workers=min(workers, total)) as pool:
            _drain([pool.submit(execute_one, i) for i in range(total)])
    else:
        _drain([executor.submit(execute_one, i) for i in range(total)])


def _drain(futures: list[Future]) -> None:
    first_error: BaseException | None = None
    for future in futures:
        try:
            future.result()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            if first_error is None:
                first_error = error
    if first_error is not None:
        raise first_error


__all__ = [
    "PARALLEL_ROW_THRESHOLD",
    "PARTITION_CTE",
    "ParallelDecision",
    "FragmentExecutor",
    "partition_bounds",
    "partition_statements",
    "plan_parallelism",
    "run_indexed",
]
