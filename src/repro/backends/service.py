"""The :class:`GraphitiService` facade: schema → SDT → transpile → execute.

The service wires the whole paper pipeline behind one object so callers
(CLI, benchmarks, applications) never touch the individual passes:

* the induced relational schema and standard transformer are computed once
  per service (``infer_sdt``);
* transpilation + dialect rendering is memoised in two tiers — a
  process-local LRU keyed by ``(schema fingerprint, Cypher text, dialect,
  opt level, statistics digest)``, and an optional persistent on-disk store
  (:class:`~repro.backends.cache.PersistentQueryCache`) under the same
  logical key, so even a *cold process* skips parsing, translation,
  optimisation, and rendering for previously prepared queries;
* execution backends are resolved through the registry and served from
  per-backend :class:`~repro.backends.pool.ConnectionPool`\\ s of warmed,
  bulk-loaded connections, so one loaded dataset serves any number of
  engines — and any number of *threads* — side by side.

The service is thread-safe: the LRU, the query-statistics counters, and
the pool map are lock-protected, and every execution path checks a
connection out of a pool for exclusive use.  :meth:`GraphitiService.run_many`
fans a batch of Cypher texts across a worker-thread pool (results come back
in batch order), which is where pooled connections turn into throughput —
see ``benchmarks/bench_throughput.py`` for the tracked numbers.

The schema fingerprint in the cache key makes cache entries safe to share
between services over the *same* schema and impossible to confuse between
different ones; the statistics digest does the same for level-2 plans,
which legitimately change when fresh data changes the estimated join order.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, Sequence

from repro.common.budget import (
    BudgetTracker,
    QueryBudget,
    QueryBudgetExceeded,
)
from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.execution.datagen import MockDataGenerator
from repro.graph.schema import GraphSchema
from repro.observability.metrics import (
    RATIO_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
)
from repro.observability.tracing import NOOP_TRACER
from repro.relational.instance import Database, Table
from repro.sql import ast as sq
from repro.sql.dialect import SqlDialect, dialect_for
from repro.sql.fragment import fragment_query
from repro.sql.optimize import DEFAULT_OPT_LEVEL, OPT_LEVELS, optimize
from repro.sql.planner import PlanReport
from repro.sql.pretty import to_sql_text
from repro.sql.semantics import evaluate_query as evaluate_sql
from repro.sql.stats import DatabaseStats, collect_stats
from repro.transformer.semantics import transform_graph

from repro.backends.cache import PersistentQueryCache, cache_key
from repro.backends.executor import (
    FragmentExecutor,
    ParallelDecision,
    plan_parallelism,
    run_indexed,
)
from repro.backends.guards import CircuitBreaker, CircuitOpen, RetryPolicy
from repro.backends.pool import ConnectionPool, PoolClosed, PoolTimeout
from repro.backends.registry import available_backends

DEFAULT_BACKEND = "sqlite-memory"

#: Per-query latency samples kept for percentile reporting (most recent).
MAX_LATENCY_SAMPLES = 512


def schema_fingerprint(graph_schema: GraphSchema) -> str:
    """A stable digest of *graph_schema*'s node/edge types and keys."""
    parts = []
    for node in graph_schema.node_types:
        parts.append(f"node {node.label}({','.join(node.keys)})")
    for edge in graph_schema.edge_types:
        parts.append(
            f"edge {edge.label}({','.join(edge.keys)}):{edge.source}->{edge.target}"
        )
    canonical = "\n".join(sorted(parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def stats_digest(stats: DatabaseStats | None) -> str:
    """A stable content digest of table statistics (cache-key component).

    Processes that load the same data derive the same digest, so level-2
    plans are shareable across processes through the persistent cache;
    different data yields a different digest, invalidating exactly the
    entries whose chosen join order the new statistics could change.
    """
    if stats is None:
        return ""
    parts = []
    for name in sorted(stats):
        table = stats[name]
        distinct = ",".join(f"{c}={n}" for c, n in sorted(table.distinct.items()))
        entry = f"{name}:{table.row_count}:{distinct}"
        if getattr(table, "sampled", False):
            # Sampled NDVs are estimates, not facts — keep their plans
            # keyed apart from exact collections of the same data.
            entry += f":sampled{table.sample_size}"
        parts.append(entry)
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CacheInfo:
    """Transpilation-cache statistics (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


@dataclass
class ExecutionFeedback:
    """Observed actual row counts for one cached plan.

    Mutable on purpose: the same object lives in the LRU entry, so every
    execution of a cache-hit plan accumulates here and a later ``repro
    explain`` renders the true observed history, not just the original
    estimate.  Mutations happen under the service lock.
    """

    executions: int = 0
    total_rows: int = 0
    last_rows: int | None = None

    def observe(self, rows: int) -> None:
        self.executions += 1
        self.total_rows += rows
        self.last_rows = rows

    @property
    def mean_rows(self) -> float:
        return self.total_rows / self.executions if self.executions else 0.0

    def to_dict(self) -> dict:
        return {
            "executions": self.executions,
            "last_rows": self.last_rows,
            "mean_rows": round(self.mean_rows, 1),
        }


@dataclass
class _FeedbackDecision:
    """Per-Cypher-text adaptive-execution state (service-internal).

    ``epoch`` is a cache-key component: bumping it invalidates exactly
    this query's entries (both tiers) without touching anything else.
    ``force_recursive``/``row_scale`` are the corrections applied when the
    stats digest did not change; ``last`` summarises the most recent
    re-plan for ``repro explain``.
    """

    epoch: int = 0
    replans: int = 0
    force_recursive: bool = False
    row_scale: float = 1.0
    last: dict | None = None


@dataclass(frozen=True)
class PreparedQuery:
    """A transpiled, rendered query ready for execution.

    ``sql_ast`` is the *optimised* algebra — the reference evaluator
    materialises intermediate results, so evaluating the transpiler's raw
    one-node-per-rule nesting (cross joins under selections) would blow up
    combinatorially on anything beyond toy instances.  ``opt_level``
    records which optimizer pipeline produced it (0 raw / 1 rule rewrites /
    2 cost-based planning).
    """

    cypher_text: str
    sql_ast: sq.Query
    sql_text: str
    dialect: str
    fingerprint: str
    opt_level: int = DEFAULT_OPT_LEVEL
    #: The planner's decision record (``repro explain`` renders it).  It
    #: travels with the prepared query — through both cache tiers — so plan
    #: introspection works even when a trace shows only a cache hit.
    plan: PlanReport | None = None
    #: Observed actual rows, accumulated per execution (mutable — see
    #: :class:`ExecutionFeedback`).  The adaptive layer compares its running
    #: mean against ``plan.estimated_rows`` to decide re-planning.
    feedback: ExecutionFeedback = field(default_factory=ExecutionFeedback)
    #: The feedback epoch this entry was planned under.  Only an entry from
    #: the *current* epoch may trigger a re-plan — a stale entry observed
    #: after the plan already changed must not bump the epoch again.
    feedback_epoch: int = 0


@dataclass(frozen=True)
class QueryStat:
    """Cumulative measurement accounting for one Cypher text.

    One *execution* here is one recorded measurement: a :meth:`~GraphitiService.run`
    call contributes its single wall-clock time, a
    :meth:`~GraphitiService.time` call contributes the median of its
    repeats as one measurement (the repeats exist to stabilise that
    number, not as independent work).  ``mean_seconds`` is therefore the
    mean *per-execution* wall-clock — the typical cost of running the
    query once.  ``samples`` retains the most recent
    :data:`MAX_LATENCY_SAMPLES` measurements so throughput runs can report
    tail latency (:attr:`p50_seconds`, :attr:`p95_seconds`), not just
    totals.
    """

    cypher_text: str
    executions: int
    total_seconds: float
    last_seconds: float
    samples: tuple[float, ...] = ()

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.executions if self.executions else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained samples (0 if none)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def p50_seconds(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_seconds(self) -> float:
        return self.percentile(0.95)


class _LruCache:
    """A small, thread-safe LRU map with hit/miss accounting (stdlib only)."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: OrderedDict[object, object] = OrderedDict()

    def get(self, key: object) -> object | None:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(self.hits, self.misses, self.maxsize, len(self._entries))


class GraphitiService:
    """End-to-end query service over one graph schema.

    Typical use::

        service = GraphitiService(graph_schema)
        service.load_graph(property_graph)        # or load_database / load_mock
        table = service.run("MATCH (n:EMP) RETURN n.name")
        tables = service.run_many([q1, q2, q3, q4], workers=4)
        timings = {b: service.time(q, backend=b) for b in service.backends()}

    *pool_size* caps how many pooled connections each backend may grow to;
    :meth:`run_many` raises the cap when asked for more workers.
    *persistent_cache* enables the cross-process transpilation store: pass
    ``True`` for the default location (see
    :func:`repro.backends.cache.default_cache_dir`), a path, or a
    :class:`~repro.backends.cache.PersistentQueryCache` to share one store
    between services.
    *parallelism* (degree K >= 2) enables intra-query parallelism:
    fragmentable plans whose estimated scan clears
    *parallel_row_threshold* (default
    :data:`repro.backends.executor.PARALLEL_ROW_THRESHOLD`) are split
    into K disjoint rowid range partitions, scattered over pooled
    connections, and merged with the shard coordinator's rules — see
    :mod:`repro.backends.executor`.
    """

    def __init__(
        self,
        graph_schema: GraphSchema,
        default_backend: str = DEFAULT_BACKEND,
        cache_size: int = 128,
        batch_size: int = 1000,
        indexes: bool = True,
        opt_level: int = DEFAULT_OPT_LEVEL,
        pool_size: int = 4,
        persistent_cache: PersistentQueryCache | str | Path | bool | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        slow_query_seconds: float = 0.25,
        default_budget: QueryBudget | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_seconds: float = 5.0,
        validate_on_checkout: bool = True,
        feedback_ratio: float | None = 8.0,
        feedback_min_observations: int = 2,
        max_replans: int = 4,
        stats_sample_threshold: int | None = None,
        stats_sample_size: int | None = None,
        parallelism: int = 1,
        parallel_row_threshold: float | None = None,
    ) -> None:
        if opt_level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {opt_level!r}")
        if pool_size < 1:
            raise ValueError(f"pool_size must be >= 1, got {pool_size}")
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        self.graph_schema = graph_schema
        self.sdt = infer_sdt(graph_schema)
        self.fingerprint = schema_fingerprint(graph_schema)
        self.default_backend = default_backend
        self.batch_size = batch_size
        self.indexes = indexes
        self.opt_level = opt_level
        self.pool_size = pool_size
        self._cache = _LruCache(cache_size)
        self._persistent, self._owns_persistent = self._open_persistent(
            persistent_cache
        )
        self._database = Database(self.sdt.schema)
        self._stats: DatabaseStats | None = None
        self._stats_digest = ""
        #: Guards the pool map, loaded data swap, and query statistics.
        self._lock = threading.RLock()
        self._pools: dict[str, ConnectionPool] = {}
        self._query_stats: dict[str, QueryStat] = {}
        # Telemetry: a metrics registry (shared if the caller passes one), a
        # slow-query ring buffer, and a tracer that defaults to the no-op —
        # instrumentation is always on, and costs ~nothing until a real
        # Tracer is attached (``repro explain``, the smoke script).
        self._registry = registry if registry is not None else MetricsRegistry()
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        self.slow_queries = SlowQueryLog(threshold_seconds=slow_query_seconds)
        self._queries_total = self._registry.counter(
            "repro_queries_total", "Query executions recorded, by backend."
        )
        self._query_seconds = self._registry.histogram(
            "repro_query_seconds", "Engine execution seconds per query."
        )
        self._cache_lookups = self._registry.counter(
            "repro_transpile_cache_total",
            "Transpilation-cache lookups, by tier and result.",
        )
        # Resilience: per-call/service-default query budgets, bounded retry
        # on member death, and a per-backend circuit breaker that sheds
        # load fast while an engine is down.
        self.default_budget = default_budget
        self.retry_policy = (
            retry_policy if retry_policy is not None else RetryPolicy()
        )
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_seconds = breaker_cooldown_seconds
        self.validate_on_checkout = validate_on_checkout
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Injectable backoff sleep (tests swap in a recorder; no real waits).
        self._retry_sleep = time.sleep
        self._query_retries = self._registry.counter(
            "repro_query_retries_total",
            "Transparent retries after a pool member died mid-query.",
        )
        self._budget_exceeded = self._registry.counter(
            "repro_budget_exceeded_total",
            "Queries stopped by a resource budget, by dimension.",
        )
        self._budget_downgrades = self._registry.counter(
            "repro_budget_downgrades_total",
            "Plan downgrades attempted after a budget trip.",
        )
        self._breaker_transitions = self._registry.counter(
            "repro_breaker_transitions_total",
            "Circuit-breaker state transitions, by backend and new state.",
        )
        self._breaker_rejections = self._registry.counter(
            "repro_breaker_rejections_total",
            "Calls shed instantly because a backend's circuit was open.",
        )
        # Adaptive execution: estimate-vs-actual feedback.  A level-2 plan
        # whose running observed rows diverge from ``estimated_rows`` by at
        # least ``feedback_ratio`` (q-error, so symmetric) after
        # ``feedback_min_observations`` executions is re-planned: stats are
        # re-collected from the live data, and when that alone cannot
        # explain the miss, corrections (forced recursive traversal, a
        # base-row scale) apply under a bumped feedback epoch that
        # invalidates exactly that query's cache entries.
        if feedback_ratio is not None and feedback_ratio <= 1.0:
            raise ValueError(
                f"feedback_ratio must be > 1 (or None to disable), "
                f"got {feedback_ratio}"
            )
        self.feedback_ratio = feedback_ratio
        self.feedback_min_observations = max(feedback_min_observations, 1)
        self.max_replans = max_replans
        self.stats_sample_threshold = stats_sample_threshold
        self.stats_sample_size = stats_sample_size
        self._feedback: dict[str, _FeedbackDecision] = {}
        self._replans_total = self._registry.counter(
            "repro_plan_replans_total",
            "Feedback-triggered query re-plans, by backend and reason.",
        )
        self._estimate_error = self._registry.histogram(
            "repro_estimate_error",
            "Estimate-vs-actual q-error per observed execution.",
            buckets=RATIO_BUCKETS,
        )
        # Intra-query parallelism: fragmentable plans over large scans are
        # split into rowid range partitions and scattered over pooled
        # connections (see repro.backends.executor).  The gate's verdicts
        # and rendered partition SQL are cached per prepared query; the
        # two persistent thread pools (batch fan-out vs partition fan-out)
        # are deliberately separate so a run_many worker mid-batch can
        # never deadlock waiting for partition slots its siblings hold.
        self.parallelism = parallelism
        self.parallel_row_threshold = parallel_row_threshold
        self._parallel_states: dict[
            object, tuple[ParallelDecision, FragmentExecutor | None]
        ] = {}
        self._batch_executor: ThreadPoolExecutor | None = None
        self._batch_workers = 0
        self._partition_executor: ThreadPoolExecutor | None = None
        self._partition_workers = 0
        self._parallel_queries = self._registry.counter(
            "repro_parallel_queries_total",
            "Queries served by partition-parallel scatter, by backend and "
            "fragment kind.",
        )
        self._parallel_partitions = self._registry.histogram(
            "repro_parallel_partitions",
            "Partitions per parallel query.",
        )

    @staticmethod
    def _open_persistent(
        setting: PersistentQueryCache | str | Path | bool | None,
    ) -> tuple[PersistentQueryCache | None, bool]:
        if setting is None or setting is False:
            return None, False
        if isinstance(setting, PersistentQueryCache):
            return setting, False  # shared store: caller owns its lifetime
        if setting is True:
            return PersistentQueryCache(), True
        return PersistentQueryCache(setting), True

    # -- data --------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The currently loaded induced-schema instance."""
        return self._database

    def load_database(
        self, database: Database, stats: DatabaseStats | None = None
    ) -> None:
        """Serve queries over *database* (an induced-schema instance).

        Statistics are collected here, once, and handed down to every pool
        member — backends never re-scan the same data.  Large tables are
        reservoir sampled (see :func:`repro.sql.stats.collect_stats`; tune
        with ``stats_sample_threshold``/``stats_sample_size``).  Pass
        *stats* to supply precomputed (possibly stale) statistics instead —
        the adaptive-execution benchmark uses this to plan against numbers
        the data has outgrown and watch feedback correct them.
        """
        if database.schema.relations != self.sdt.schema.relations:
            raise ValueError(
                "database schema does not match the induced schema of this service"
            )
        if stats is None:
            stats = self._collect_stats(database)
        with self._lock:
            self._reset_pools()
            self._database = database
            self._stats = stats
            self._stats_digest = stats_digest(stats)
            # Fresh data: divergence verdicts reached on the old data no
            # longer mean anything, and neither do partition bounds.
            self._feedback.clear()
            self._parallel_states.clear()

    def _collect_stats(self, database: Database) -> DatabaseStats:
        kwargs: dict = {}
        if self.stats_sample_threshold is not None:
            kwargs["sample_threshold"] = self.stats_sample_threshold
        if self.stats_sample_size is not None:
            kwargs["sample_size"] = self.stats_sample_size
        return collect_stats(database, **kwargs)

    def refresh_stats(self) -> bool:
        """Re-collect statistics from the live data; ``True`` if the digest
        changed (which invalidates exactly the level-2 cache entries).

        Unlike :meth:`load_database` this does **not** reset the pools —
        the data inside the engines is unchanged; only the planner's
        numbers are refreshed.
        """
        with self._lock:
            database = self._database
        stats = self._collect_stats(database)
        digest = stats_digest(stats)
        with self._lock:
            changed = digest != self._stats_digest
            self._stats = stats
            self._stats_digest = digest
            if changed:
                # Parallel gate verdicts and partition bounds derive from
                # row counts; re-derive them from the fresh numbers.
                self._parallel_states.clear()
        return changed

    def load_graph(self, graph: object) -> None:
        """Serve queries over a property graph, via the standard transformer."""
        self.load_database(
            transform_graph(self.sdt.transformer, graph, self.sdt.schema)
        )

    def load_mock(self, rows_per_table: int, seed: int = 42) -> None:
        """Serve queries over generated mock data (benchmarks, demos)."""
        generator = MockDataGenerator(self.graph_schema, self.sdt, seed=seed)
        self.load_database(generator.induced_instance(rows_per_table))

    # -- transpilation (cached) --------------------------------------------

    def prepare(
        self,
        cypher_text: str,
        dialect: str | SqlDialect | None = None,
        opt_level: int | None = None,
        force_recursive: bool = False,
        depth_cap: int | None = None,
    ) -> PreparedQuery:
        """Parse, transpile, optimize, and render *cypher_text* (cached).

        Lookup order: in-memory LRU, then the persistent store (when
        enabled), then the full pipeline.  *opt_level* overrides the
        service default for this query.  The cache key includes the level
        and (at level 2) the statistics digest, since reloaded data can
        legitimately change the chosen join order.

        *force_recursive* and *depth_cap* are the budget downgrades (see
        :func:`repro.sql.optimize.optimize`); they produce distinct plans
        and therefore distinct cache entries in both tiers — a downgraded
        plan must never shadow the normal one.
        """
        if dialect is None:
            dialect = self.dialect_of(self.default_backend)
        dialect = dialect_for(dialect)
        level = self.opt_level if opt_level is None else opt_level
        if level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {level!r}")
        with self._lock:  # a racing load_database must not tear stats/digest
            stats, digest = self._stats, self._stats_digest
            decision = (
                self._feedback.get(cypher_text)
                if level >= 2 and self.feedback_ratio is not None
                else None
            )
        if level < 2:
            digest = ""
        variant = ""
        if force_recursive or depth_cap is not None:
            variant = f"fr{int(force_recursive)}:dc{depth_cap}"
        # Feedback corrections ride a dedicated cache-key component: bumping
        # the epoch re-keys exactly this query's entries in both tiers, so
        # the superseded plan can never shadow the corrected one.
        epoch = decision.epoch if decision is not None else 0
        fb_force = decision.force_recursive if decision is not None else False
        fb_scale = decision.row_scale if decision is not None else 1.0
        replan_note = decision.last if decision is not None else None
        if epoch:
            variant += f":fb{epoch}.{int(fb_force)}.{fb_scale:.4g}"
        # The parallel degree is a plan-choice input like budgets and
        # feedback: a parallel-enabled service's entries (whose PlanReport
        # records the gate's verdict) must never shadow a serial service's
        # in the shared persistent store, and vice versa.
        if self.parallelism > 1:
            variant += f":par{self.parallelism}"
        key = (self.fingerprint, cypher_text, dialect.name, level, digest, variant)
        tracer = self._tracer
        with tracer.span(
            "query.prepare", dialect=dialect.name, opt_level=level
        ) as prepare_span:
            with tracer.span("cache.lookup", tier="memory") as span:
                cached = self._cache.get(key)
                span.set("hit", cached is not None)
            self._cache_lookups.inc(
                tier="memory", result="hit" if cached is not None else "miss"
            )
            if cached is not None:
                assert isinstance(cached, PreparedQuery)
                prepare_span.set("cached", "memory")
                return cached
            if self._persistent is not None:
                disk_key = cache_key(
                    self.fingerprint, cypher_text, dialect.name, level, digest,
                    variant=variant,
                )
                with tracer.span("cache.lookup", tier="disk") as span:
                    stored = self._persistent.get(disk_key)
                    span.set("hit", isinstance(stored, PreparedQuery))
                self._cache_lookups.inc(
                    tier="disk",
                    result="hit" if isinstance(stored, PreparedQuery) else "miss",
                )
                if isinstance(stored, PreparedQuery):
                    self._cache.put(key, stored)
                    prepare_span.set("cached", "disk")
                    return stored
            prepare_span.set("cached", "no")
            with tracer.span("query.parse"):
                query = parse_cypher(cypher_text, self.graph_schema)
            with tracer.span("query.transpile"):
                raw = transpile(query, self.graph_schema, self.sdt)
            report = PlanReport()
            with tracer.span("optimize.planner", opt_level=level) as span:
                translated = optimize(
                    raw,
                    level=level,
                    schema=self.sdt.schema,
                    stats=stats,
                    report=report,
                    force_recursive=force_recursive or fb_force,
                    depth_cap=depth_cap,
                    row_scale=fb_scale,
                )
                if epoch and replan_note is not None:
                    report.feedback = dict(replan_note)
                if report.traversal_choice is not None:
                    span.set("traversals", report.traversal_choice)
                span.set("joins_planned", len(report.joins))
                if report.estimated_rows is not None:
                    span.set("estimated_rows", round(report.estimated_rows, 1))
            with tracer.span("query.render", dialect=dialect.name):
                rendered = to_sql_text(
                    translated, self.sdt.schema, optimized=False, dialect=dialect
                )
            prepared = PreparedQuery(
                cypher_text,
                translated,
                rendered,
                dialect.name,
                self.fingerprint,
                level,
                report,
                feedback_epoch=epoch,
            )
            self._cache.put(key, prepared)
            if self._persistent is not None:
                self._persistent.put(disk_key, cypher_text, prepared)
            return prepared

    def transpile_to_sql(
        self,
        cypher_text: str,
        dialect: str | SqlDialect | None = None,
        opt_level: int | None = None,
    ) -> str:
        """The rendered SQL text for *cypher_text* (cached)."""
        return self.prepare(cypher_text, dialect, opt_level=opt_level).sql_text

    def cache_info(self) -> CacheInfo:
        return self._cache.info()

    def persistent_cache_info(self) -> CacheInfo | None:
        """Hit/miss counters of the persistent store (``None`` if disabled)."""
        if self._persistent is None:
            return None
        return CacheInfo(
            self._persistent.hits,
            self._persistent.misses,
            -1,  # unbounded
            len(self._persistent),
        )

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        """Execute *cypher_text* on *backend* over the loaded data.

        Thread-safe: the query runs on a pooled connection checked out for
        exclusive use, so any number of threads may call this concurrently.

        *budget* (default: the service's ``default_budget``) bounds the
        query's rows, recursion depth, and wall-clock time; exceeding it
        raises :class:`~repro.common.budget.QueryBudgetExceeded` — after
        the service has attempted a cheaper plan, when the budget allows
        downgrading.  A member that dies mid-query is evicted and the
        query transparently retried on a healthy member (bounded by
        ``retry_policy``); a backend whose engine keeps failing trips its
        circuit breaker, shedding further calls with
        :class:`~repro.backends.guards.CircuitOpen` until a cooldown
        probe succeeds.
        """
        return self.serve(cypher_text, backend, opt_level, budget)[0]

    def serve(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> tuple[Table, PreparedQuery]:
        """Like :meth:`run`, but also returns the :class:`PreparedQuery`
        that actually served the execution — the entry whose plan and
        observed-feedback history describe *this* result, even when the
        adaptive layer re-planned the query right after it ran (``repro
        explain`` relies on this to stay truthful)."""
        name = backend or self.default_backend
        with self._tracer.span("query", backend=name, cypher=cypher_text) as span:
            result, prepared = self._serve(cypher_text, name, opt_level, budget)
            span.set("opt_level", prepared.opt_level)
            span.set("rows", len(result.rows))
            if prepared.plan is not None and prepared.plan.estimated_rows is not None:
                span.set("estimated_rows", round(prepared.plan.estimated_rows, 1))
        return result, prepared

    def _effective_budget(self, budget: QueryBudget | None) -> QueryBudget | None:
        budget = budget if budget is not None else self.default_budget
        if budget is None or budget.unlimited:
            return None
        return budget

    def breaker(self, backend: str | None = None) -> CircuitBreaker:
        """The circuit breaker guarding *backend* (created on first use).

        One breaker per backend name, shared by every query path (sync and
        async); its state transitions are counted in
        ``repro_breaker_transitions_total``.
        """
        name = backend or self.default_backend
        with self._lock:
            breaker = self._breakers.get(name)
            if breaker is None:
                breaker = CircuitBreaker(
                    backend_name=name,
                    failure_threshold=self.breaker_threshold,
                    cooldown_seconds=self.breaker_cooldown_seconds,
                    on_transition=lambda state, name=name: (
                        self._breaker_transitions.inc(backend=name, state=state)
                    ),
                )
                self._breakers[name] = breaker
            return breaker

    def _serve(
        self,
        cypher_text: str,
        name: str,
        opt_level: int | None,
        budget: QueryBudget | None,
    ) -> tuple[Table, PreparedQuery]:
        """Prepare + pooled execution with budget enforcement, transparent
        retry, circuit breaking, and the plan downgrade (shared by
        :meth:`run` and :meth:`run_many`)."""
        budget = self._effective_budget(budget)
        tracker = budget.start() if budget is not None else None
        depth_cap = (
            budget.max_depth
            if budget is not None and budget.allow_downgrade
            else None
        )
        prepared = self.prepare(
            cypher_text, self.dialect_of(name), opt_level=opt_level,
            depth_cap=depth_cap,
        )
        pool = self._pool(name)
        try:
            result = self._execute_prepared(pool, name, cypher_text, prepared, tracker)
            if depth_cap is None:
                # Depth-capped plans are budget variants — their row counts
                # say nothing about the normal plan's estimate.
                self.observe_execution(prepared, len(result.rows), name)
            return result, prepared
        except QueryBudgetExceeded as error:
            assert budget is not None and tracker is not None
            downgradable = (
                budget.allow_downgrade
                and prepared.plan is not None
                and any(
                    traversal.choice == "unrolled"
                    for traversal in prepared.plan.traversals
                )
            )
            if not downgradable:
                raise
            # Downgrade: the unrolled join chains blew the budget — re-plan
            # with the recursive CTE (incremental frontier, far smaller
            # intermediates) and retry once under the remaining budget.
            self._budget_downgrades.inc(backend=name)
            tracker.reset_work()
            with self._tracer.span(
                "query.downgrade", backend=name, reason=error.dimension
            ):
                downgraded = self.prepare(
                    cypher_text, self.dialect_of(name), opt_level=opt_level,
                    force_recursive=True, depth_cap=depth_cap,
                )
                try:
                    return (
                        self._run_prepared(
                            pool, name, cypher_text, downgraded, tracker
                        ),
                        downgraded,
                    )
                except QueryBudgetExceeded as final:
                    final.attempted_downgrade = True
                    raise

    def _execute_prepared(
        self,
        pool: ConnectionPool,
        name: str,
        cypher_text: str,
        prepared: PreparedQuery,
        tracker: BudgetTracker | None,
    ) -> Table:
        """Serial pooled execution — or the partition-parallel scatter,
        when this service's degree and the cost gate both say yes."""
        runner = self._parallel_runner(prepared)
        if runner is not None:
            return self._run_parallel(
                pool, name, cypher_text, prepared, runner, tracker
            )
        return self._run_prepared(pool, name, cypher_text, prepared, tracker)

    def execute_fragment(
        self,
        backend: str | None,
        cypher_text: str,
        prepared: PreparedQuery,
        tracker: BudgetTracker | None = None,
    ) -> Table:
        """Execute an externally prepared plan under this service's own
        parallel gate — the shard coordinator's seam: each shard serves
        its fragment through here, so a shard whose local slice is still
        large enough to clear the threshold partition-scans it."""
        name = backend or self.default_backend
        return self._execute_prepared(
            self._pool(name), name, cypher_text, prepared, tracker
        )

    def _run_prepared(
        self,
        pool: ConnectionPool,
        name: str,
        cypher_text: str,
        prepared: PreparedQuery,
        tracker: BudgetTracker | None,
        record: bool = True,
    ) -> Table:
        """One plan's pooled execution: breaker gate, checkout (bounded by
        the budget's remaining time), engine guards, damage-aware checkin,
        and bounded backoff retry when the member turns out to be dead.

        *record* is off for partition executions — the parallel runner
        accounts the query's wall clock once, not per partition."""
        breaker = self.breaker(name)
        retry = self.retry_policy
        attempt = 1
        while True:
            if tracker is not None:
                tracker.check_timeout(stage="service")
            try:
                probe = breaker.allow()
            except CircuitOpen:
                self._breaker_rejections.inc(backend=name)
                raise
            # Everything past allow() must settle the breaker or release
            # the half-open probe slot, or an exit without a verdict (pool
            # timeout, cancellation) wedges the breaker shedding forever.
            try:
                try:
                    member = pool.checkout(
                        timeout=(
                            None if tracker is None else tracker.remaining_seconds()
                        )
                    )
                except (PoolClosed, PoolTimeout):
                    raise  # pool congestion is not engine failure: no breaker charge
                except Exception:
                    # Spawning a member failed — the engine refused a fresh
                    # connection, which is exactly what the breaker watches.
                    breaker.record_failure()
                    if retry.should_retry(attempt):
                        self._query_retries.inc(backend=name)
                        self._retry_sleep(retry.delay_for(attempt))
                        attempt += 1
                        continue
                    raise
                try:
                    with self._tracer.span("execute", backend=name) as exec_span:
                        start = time.perf_counter()
                        # budget= only when bounded: keeps stubbed/monkeypatched
                        # engines with the pre-budget signature working.
                        result = (
                            member.execute(prepared.sql_text)
                            if tracker is None
                            else member.execute(prepared.sql_text, budget=tracker)
                        )
                        elapsed = time.perf_counter() - start
                        exec_span.set("rows", len(result.rows))
                except QueryBudgetExceeded as error:
                    # The guard aborted the statement, not the connection —
                    # validate on checkin so the member rejoins the idle set
                    # (never poisons the pool) and the engine is not blamed.
                    pool.checkin(member, damaged=True)
                    breaker.record_success()
                    self._budget_exceeded.inc(
                        backend=name, dimension=error.dimension
                    )
                    raise error.annotate(backend=name, cypher_text=cypher_text)
                except Exception:
                    retained = pool.checkin(member, damaged=True)
                    if retained:
                        # The member is alive: a genuine query error, not a
                        # transient engine fault — retrying cannot help, and
                        # the connection just proved healthy (the breaker
                        # watches engine health, not query validity).
                        breaker.record_success()
                        raise
                    breaker.record_failure()
                    if retry.should_retry(attempt) and not (
                        tracker is not None and tracker.timed_out()
                    ):
                        self._query_retries.inc(backend=name)
                        self._retry_sleep(retry.delay_for(attempt))
                        attempt += 1
                        continue
                    raise
                else:
                    pool.checkin(member)
                    breaker.record_success()
                    if record:
                        self._record(cypher_text, elapsed, backend=name)
                    return result
            finally:
                breaker.release_probe(probe)

    # -- intra-query parallelism (partition-parallel scans) ------------------

    def _parallel_for(
        self, prepared: PreparedQuery
    ) -> tuple[ParallelDecision, FragmentExecutor | None]:
        """The partition gate's verdict (and executor, when it opened) for
        *prepared* under this service's degree — computed once per
        prepared query and cached; records the verdict in
        ``PlanReport.parallelism`` so ``repro explain`` shows it."""
        key = (
            prepared.fingerprint,
            prepared.cypher_text,
            prepared.dialect,
            prepared.opt_level,
            self.parallelism,
        )
        with self._lock:
            state = self._parallel_states.get(key)
            stats = self._stats
            feedback = self._feedback.get(prepared.cypher_text)
            row_scale = feedback.row_scale if feedback is not None else 1.0
        if state is None:
            dialect = dialect_for(prepared.dialect)
            fragment = fragment_query(prepared.sql_ast, self.sdt.schema)
            decision = plan_parallelism(
                fragment,
                schema=self.sdt.schema,
                stats=stats,
                degree=self.parallelism,
                dialect=dialect,
                row_scale=row_scale,
                threshold=self.parallel_row_threshold,
            )
            runner = None
            if decision.parallel:
                assert stats is not None
                runner = FragmentExecutor.build(
                    fragment,
                    decision,
                    schema=self.sdt.schema,
                    stats=stats,
                    dialect=dialect,
                )
            state = (decision, runner)
            with self._lock:
                self._parallel_states[key] = state
        decision, runner = state
        # Written once per prepared query (the plan object travels with the
        # cache entry) — rebuilding the dict on every serve would tax the
        # gated-serial hot path.
        if prepared.plan is not None and prepared.plan.parallelism is None:
            prepared.plan.parallelism = decision.to_dict()
        return state

    def _parallel_runner(
        self, prepared: PreparedQuery
    ) -> FragmentExecutor | None:
        """*prepared*'s partition executor, or ``None`` to stay serial."""
        if self.parallelism < 2:
            return None
        _, runner = self._parallel_for(prepared)
        return runner

    def _run_parallel(
        self,
        pool: ConnectionPool,
        name: str,
        cypher_text: str,
        prepared: PreparedQuery,
        runner: FragmentExecutor,
        tracker: BudgetTracker | None,
        parent=None,
    ) -> Table:
        """Scatter *prepared* over rowid partitions and gather.

        Each partition runs through :meth:`_run_prepared` — the full
        breaker/retry/eviction discipline per partition, so a member
        dying mid-partition-scan is retried on a healthy member without
        failing the query.  All partitions charge the one shared
        *tracker*: the budget bounds the query, not each slice.  Wall
        clock is recorded once, against the whole query.
        """
        decision = runner.decision
        degree = decision.degree
        self._pool(name, min_capacity=degree)
        self._parallel_queries.inc(backend=name, kind=decision.kind or "unknown")
        self._parallel_partitions.observe(float(degree), backend=name)
        start = time.perf_counter()
        attributes = dict(
            backend=name,
            degree=degree,
            relation=decision.relation,
            kind=decision.kind,
        )
        # parent=None would force a root span — only re-parent explicitly
        # when the caller crossed a thread boundary (the async offload);
        # on the sync path the span attaches to the current query span.
        scan_context = (
            self._tracer.span("parallel.scan", **attributes)
            if parent is None
            else self._tracer.span("parallel.scan", parent=parent, **attributes)
        )
        with scan_context as scan_span:

            def run_partition(index: int) -> Table:
                partition = replace(prepared, sql_text=runner.statements[index])
                with self._tracer.span(
                    "parallel.partition",
                    parent=scan_span,
                    backend=name,
                    index=index,
                ) as span:
                    partial = self._run_prepared(
                        pool, name, cypher_text, partition, tracker, record=False
                    )
                    span.set("rows", len(partial.rows))
                    return partial

            partials = runner.scatter(
                run_partition, executor=self._partition_pool(degree)
            )
            with self._tracer.span(
                "parallel.gather", parent=scan_span, backend=name, partitions=degree
            ) as gather_span:
                result = runner.gather(partials)
                gather_span.set("rows", len(result.rows))
        self._record(cypher_text, time.perf_counter() - start, backend=name)
        return result

    # -- adaptive execution (estimate-vs-actual feedback) -------------------

    def observe_execution(
        self,
        prepared: PreparedQuery,
        actual_rows: int,
        backend: str | None = None,
    ) -> None:
        """Feed one execution's actual row count back to the planner.

        Accumulates on the cache entry's :class:`ExecutionFeedback` (so a
        later ``repro explain`` shows the observed history even on cache
        hits), records the q-error, and — when the running mean diverges
        from the plan's estimate by ``feedback_ratio`` or more after
        ``feedback_min_observations`` executions — re-plans the query (see
        :meth:`_replan`).  Called by the serving paths (sync and async);
        harmless to call directly.
        """
        name = backend or self.default_backend
        plan = prepared.plan
        with self._lock:
            prepared.feedback.observe(actual_rows)
            executions = prepared.feedback.executions
            mean_rows = prepared.feedback.mean_rows
            decision = self._feedback.get(prepared.cypher_text)
            current_epoch = decision.epoch if decision is not None else 0
        if (
            self.feedback_ratio is None
            or plan is None
            or plan.level < 2
            or plan.estimated_rows is None
        ):
            return
        estimate = max(float(plan.estimated_rows), 1.0)
        actual = max(float(actual_rows), 1.0)
        self._estimate_error.observe(
            max(actual / estimate, estimate / actual), backend=name
        )
        if executions < self.feedback_min_observations:
            return
        running = max(mean_rows, 1.0)
        divergence = max(running / estimate, estimate / running)
        if divergence < self.feedback_ratio:
            return
        if prepared.feedback_epoch != current_epoch:
            # A newer plan already exists; this entry is a superseded
            # straggler and must not re-plan again.
            return
        self._replan(prepared, running, divergence, name)

    def _replan(
        self,
        prepared: PreparedQuery,
        observed_rows: float,
        divergence: float,
        backend: str,
    ) -> None:
        """Correct a diverged plan: refresh stats, derive corrections, bump
        the feedback epoch, and eagerly re-prepare under the new key.

        A stats refresh whose digest changes re-keys every level-2 entry
        and usually explains the miss on its own, so corrections reset.
        When the digest did *not* change (the skew is invisible to
        row counts and NDVs) the estimator itself is corrected: a diverged
        unrolled traversal is forced recursive — the budget-downgrade
        machinery's variant, now driven by evidence instead of a blown
        budget — and otherwise observed rows scale the estimator's base
        cardinalities.
        """
        cypher_text = prepared.cypher_text
        plan = prepared.plan
        assert plan is not None and plan.estimated_rows is not None
        estimate = max(float(plan.estimated_rows), 1.0)
        reason = "underestimate" if observed_rows >= estimate else "overestimate"
        with self._lock:
            decision = self._feedback.setdefault(cypher_text, _FeedbackDecision())
            if decision.epoch != prepared.feedback_epoch:
                return  # lost the race: another thread re-planned first
            if decision.replans >= self.max_replans:
                return  # refusing to oscillate forever on noisy actuals
        with self._tracer.span(
            "optimize.feedback",
            backend=backend,
            reason=reason,
            divergence=round(divergence, 1),
        ) as span:
            stats_changed = self.refresh_stats()
            with self._lock:
                if decision.epoch != prepared.feedback_epoch:
                    return
                decision.epoch += 1
                decision.replans += 1
                if stats_changed:
                    # Fresh statistics take precedence over blind nudges.
                    decision.force_recursive = False
                    decision.row_scale = 1.0
                elif any(
                    traversal.choice == "unrolled"
                    for traversal in plan.traversals
                ):
                    # The estimator is badly wrong *in either direction*
                    # around an unrolled traversal: a skew the NDVs cannot
                    # see (hot hubs behind an average fan-out) blows up the
                    # chain's intermediates while the output stays small.
                    # The unroll decision rests on those same numbers, so
                    # take the conservative plan — the incremental frontier.
                    # No row-scale here: a correction computed against the
                    # unrolled plan's estimate is meaningless for the
                    # recursive plan it is about to produce.
                    decision.force_recursive = True
                else:
                    ratio = observed_rows / estimate
                    decision.row_scale = min(
                        max(decision.row_scale * ratio, 1.0 / 1024), 1024.0
                    )
                decision.last = {
                    "epoch": decision.epoch,
                    "reason": reason,
                    "divergence": round(divergence, 2),
                    "observed_rows": round(observed_rows, 1),
                    "previous_estimate": round(estimate, 1),
                    "stats_refreshed": stats_changed,
                    "force_recursive": decision.force_recursive,
                    "row_scale": round(decision.row_scale, 4),
                }
            self._replans_total.inc(backend=backend, reason=reason)
            span.set("epoch", decision.epoch)
            span.set("stats_refreshed", stats_changed)
            # Eager re-prepare: the next execution finds the corrected plan
            # already cached under the new epoch's key.
            self.prepare(
                cypher_text,
                self.dialect_of(backend),
                opt_level=prepared.opt_level,
            )

    def feedback_state(self, cypher_text: str) -> dict | None:
        """The adaptive layer's decision record for *cypher_text* (or
        ``None`` when no re-plan ever triggered) — introspection for tests,
        benchmarks, and ``repro explain``."""
        with self._lock:
            decision = self._feedback.get(cypher_text)
            if decision is None:
                return None
            return {
                "epoch": decision.epoch,
                "replans": decision.replans,
                "force_recursive": decision.force_recursive,
                "row_scale": decision.row_scale,
                "last": dict(decision.last) if decision.last else None,
            }

    def run_many(
        self,
        cypher_texts: Sequence[str],
        workers: int = 4,
        backend: str | None = None,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> list[Table]:
        """Execute a batch of Cypher texts concurrently; results in order.

        Fans the batch across *workers* threads, each executing on its own
        pooled connection (the pool's capacity grows to *workers* if it was
        smaller).  Transpilation happens up front on the calling thread —
        it is cached and GIL-bound anyway — so worker time is pure engine
        execution.  ``results[i]`` is the table for ``cypher_texts[i]``.

        *budget* applies per query, not to the batch: each query gets its
        own fresh tracker, and one query exceeding its budget fails the
        batch (the exception propagates) without affecting members serving
        the others.
        """
        texts = list(cypher_texts)
        if not texts:
            return []
        name = backend or self.default_backend
        workers = max(1, min(workers, len(texts)))
        with self._tracer.span(
            "query.batch", backend=name, queries=len(texts), workers=workers
        ) as batch_span:
            dialect = self.dialect_of(name)
            effective = self._effective_budget(budget)
            depth_cap = (
                effective.max_depth
                if effective is not None and effective.allow_downgrade
                else None
            )
            for text in dict.fromkeys(texts):  # warm the cache: each once
                self.prepare(text, dialect, opt_level=opt_level, depth_cap=depth_cap)
            self._pool(name, min_capacity=workers)
            results: list[Table | None] = [None] * len(texts)

            def execute_one(index: int) -> None:
                text = texts[index]
                # parent= crosses the thread boundary explicitly: each
                # worker's subtree hangs off the batch span, and the spans
                # it opens inside (pool.checkout, execute) parent under the
                # worker's own per-query span via the context variable —
                # never under another worker's.
                with self._tracer.span(
                    "query", parent=batch_span, backend=name, index=index
                ) as span:
                    table, _ = self._serve(text, name, opt_level, budget)
                    results[index] = table
                    span.set("rows", len(table.rows))

            run_indexed(
                len(texts),
                execute_one,
                workers,
                executor=None if workers == 1 else self._batch_pool(workers),
            )
        assert all(table is not None for table in results)
        return results  # type: ignore[return-value]

    def reference(
        self,
        cypher_text: str,
        opt_level: int | None = None,
        budget: QueryBudget | None = None,
    ) -> Table:
        """The reference bag-semantics evaluation of the transpiled query.

        *budget* (default: the service's ``default_budget``) bounds the
        evaluator's rows, fixpoint depth, and wall clock — the reference
        layer never downgrades plans; it raises directly.
        """
        prepared = self.prepare(cypher_text, opt_level=opt_level)
        effective = self._effective_budget(budget)
        try:
            return evaluate_sql(prepared.sql_ast, self._database, budget=effective)
        except QueryBudgetExceeded as error:
            self._budget_exceeded.inc(backend="reference", dimension=error.dimension)
            raise error.annotate(backend="reference", cypher_text=cypher_text)

    def explain(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
    ) -> str:
        name = backend or self.default_backend
        prepared = self.prepare(cypher_text, self.dialect_of(name), opt_level=opt_level)
        with self._pool(name).connection() as engine:
            return engine.explain(prepared.sql_text)

    def time(
        self,
        cypher_text: str,
        backend: str | None = None,
        repeats: int = 3,
        opt_level: int | None = None,
    ) -> float:
        """Median execution seconds of *cypher_text* on *backend*."""
        name = backend or self.default_backend
        prepared = self.prepare(cypher_text, self.dialect_of(name), opt_level=opt_level)
        with self._pool(name).connection() as engine:
            seconds = engine.time(prepared.sql_text, repeats=repeats)
        self._record(cypher_text, seconds, backend=name)
        return seconds

    # -- pooling -----------------------------------------------------------

    def pool(self, backend: str | None = None, min_capacity: int = 1) -> ConnectionPool:
        """The connection pool serving *backend* (created on first use).

        *min_capacity* raises the pool's capacity ceiling when a caller —
        :meth:`run_many`, or the async layer fanning out a batch — is about
        to drive that many connections concurrently.
        """
        return self._pool(backend or self.default_backend, min_capacity=min_capacity)

    def warm_pool(self, backend: str | None = None, members: int | None = None) -> None:
        """Eagerly spawn pool members (benchmarks: pay load cost up front)."""
        members = self.pool_size if members is None else members
        self._pool(backend or self.default_backend, min_capacity=members).warm(members)

    # -- observability -----------------------------------------------------

    @property
    def tracer(self):
        """The span producer instrumentation reports to (no-op by default)."""
        return self._tracer

    def set_tracer(self, tracer) -> None:
        """Attach *tracer* (or ``None`` for the no-op) service-wide.

        Propagates to every existing pool, so ``pool.checkout`` spans land
        in the same trees; pools created later inherit it at construction.
        """
        self._tracer = tracer if tracer is not None else NOOP_TRACER
        with self._lock:
            for pool in self._pools.values():
                pool.tracer = self._tracer

    @property
    def metrics(self) -> MetricsRegistry:
        """The metrics registry every serving-stack counter reports into."""
        return self._registry

    def pool_snapshots(self) -> dict[str, dict]:
        """Per-backend pool state, for ``--stats`` views."""
        with self._lock:
            pools = dict(self._pools)
        return {name: pool.snapshot() for name, pool in sorted(pools.items())}

    def query_stats(self) -> tuple[QueryStat, ...]:
        """Per-query execution accounting (insertion order), for ``--stats``."""
        with self._lock:
            return tuple(self._query_stats.values())

    def reset_query_stats(self) -> None:
        with self._lock:
            self._query_stats.clear()

    def record_execution(
        self, cypher_text: str, seconds: float, backend: str | None = None
    ) -> None:
        """Account one execution of *cypher_text* (thread-safe).

        Public so serving layers that execute on their own schedule — the
        async service runs queries on executor threads — feed the same
        :class:`QueryStat` accounting as :meth:`run`/:meth:`run_many`.
        """
        self._record(cypher_text, seconds, backend=backend)

    def _record(
        self, cypher_text: str, seconds: float, backend: str | None = None
    ) -> None:
        name = backend or self.default_backend
        self._queries_total.inc(backend=name)
        self._query_seconds.observe(seconds, backend=name)
        self.slow_queries.record(cypher_text, name, seconds)
        with self._lock:
            previous = self._query_stats.get(cypher_text)
            if previous is None:
                self._query_stats[cypher_text] = QueryStat(
                    cypher_text, 1, seconds, seconds, (seconds,)
                )
            else:
                samples = previous.samples + (seconds,)
                if len(samples) > MAX_LATENCY_SAMPLES:
                    samples = samples[-MAX_LATENCY_SAMPLES:]
                self._query_stats[cypher_text] = QueryStat(
                    cypher_text,
                    previous.executions + 1,
                    previous.total_seconds + seconds,
                    seconds,
                    samples,
                )

    def backends(self) -> tuple[str, ...]:
        """Backends this service could run on here (registry availability)."""
        return available_backends()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            batch, self._batch_executor = self._batch_executor, None
            partition, self._partition_executor = self._partition_executor, None
            self._batch_workers = self._partition_workers = 0
        # Shut the persistent executors down before the pools: in-flight
        # work still holds checked-out members.
        if batch is not None:
            batch.shutdown(wait=True)
        if partition is not None:
            partition.shutdown(wait=True)
        with self._lock:
            self._reset_pools()
        if self._owns_persistent and self._persistent is not None:
            self._persistent.close()

    def __enter__(self) -> "GraphitiService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _batch_pool(self, workers: int) -> ThreadPoolExecutor:
        """The persistent ``run_many`` fan-out executor, grown on demand.

        One pool for the service's lifetime (shut down in :meth:`close`)
        instead of a throwaway per batch; when a batch asks for more
        workers than the pool has, it is replaced by a larger one — the
        old pool's threads drain their queue and exit on their own.
        """
        with self._lock:
            if self._batch_executor is None or self._batch_workers < workers:
                old = self._batch_executor
                self._batch_workers = max(4, workers, self._batch_workers)
                self._batch_executor = ThreadPoolExecutor(
                    max_workers=self._batch_workers,
                    thread_name_prefix="graphiti-batch",
                )
                if old is not None:
                    old.shutdown(wait=False)
            return self._batch_executor

    def _partition_pool(self, workers: int) -> ThreadPoolExecutor:
        """The persistent partition fan-out executor, grown on demand.

        Separate from :meth:`_batch_pool` on purpose: a batch worker
        scattering partitions must never compete with (or wait behind)
        its own siblings for fan-out slots — shared pools deadlock when
        every batch thread blocks on partition futures no free thread
        can run.
        """
        with self._lock:
            if self._partition_executor is None or self._partition_workers < workers:
                old = self._partition_executor
                self._partition_workers = max(4, workers, self._partition_workers)
                self._partition_executor = ThreadPoolExecutor(
                    max_workers=self._partition_workers,
                    thread_name_prefix="graphiti-partition",
                )
                if old is not None:
                    old.shutdown(wait=False)
            return self._partition_executor

    def _pool(self, name: str, min_capacity: int = 1) -> ConnectionPool:
        with self._lock:
            pool = self._pools.get(name)
            if pool is None:
                pool = ConnectionPool(
                    name,
                    self._database,
                    capacity=max(self.pool_size, min_capacity),
                    batch_size=self.batch_size,
                    indexes=self.indexes,
                    stats=self._stats,
                    registry=self._registry,
                    tracer=self._tracer,
                    validate_on_checkout=self.validate_on_checkout,
                )
                self._pools[name] = pool
            elif pool.capacity < min_capacity:
                pool.grow_to(min_capacity)
            return pool

    def dialect_of(self, backend_name: str) -> SqlDialect:
        """The SQL dialect *backend_name*'s SQL text must be rendered in."""
        from repro.backends.registry import backend_info

        return backend_info(backend_name).backend_class.dialect

    def _reset_pools(self) -> None:
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def _loaded_backends(self) -> Iterator[str]:
        return iter(self._pools)
