"""The :class:`GraphitiService` facade: schema → SDT → transpile → execute.

The service wires the whole paper pipeline behind one object so callers
(CLI, benchmarks, applications) never touch the individual passes:

* the induced relational schema and standard transformer are computed once
  per service (``infer_sdt``);
* transpilation + dialect rendering is memoised in an LRU cache keyed by
  ``(schema fingerprint, Cypher text, dialect)`` — repeated queries on hot
  paths skip parsing, translation, optimisation, and rendering entirely;
* execution backends are resolved through the registry, created lazily per
  name, and bulk-loaded (batched) from the service's current database, so
  one loaded dataset serves any number of engines side by side.

The schema fingerprint in the cache key makes cache entries safe to share
between services over the *same* schema and impossible to confuse between
different ones (and keeps keys meaningful if an external cache store is
ever plugged in).
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile
from repro.cypher.parser import parse_cypher
from repro.execution.datagen import MockDataGenerator
from repro.graph.schema import GraphSchema
from repro.relational.instance import Database, Table
from repro.sql import ast as sq
from repro.sql.dialect import SqlDialect, dialect_for
from repro.sql.optimize import DEFAULT_OPT_LEVEL, OPT_LEVELS, optimize
from repro.sql.pretty import to_sql_text
from repro.sql.semantics import evaluate_query as evaluate_sql
from repro.sql.stats import DatabaseStats, collect_stats
from repro.transformer.semantics import transform_graph

from repro.backends.base import ExecutionBackend
from repro.backends.registry import available_backends, load_backend

DEFAULT_BACKEND = "sqlite-memory"


def schema_fingerprint(graph_schema: GraphSchema) -> str:
    """A stable digest of *graph_schema*'s node/edge types and keys."""
    parts = []
    for node in graph_schema.node_types:
        parts.append(f"node {node.label}({','.join(node.keys)})")
    for edge in graph_schema.edge_types:
        parts.append(
            f"edge {edge.label}({','.join(edge.keys)}):{edge.source}->{edge.target}"
        )
    canonical = "\n".join(sorted(parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CacheInfo:
    """Transpilation-cache statistics (mirrors ``functools.lru_cache``)."""

    hits: int
    misses: int
    maxsize: int
    currsize: int


@dataclass(frozen=True)
class PreparedQuery:
    """A transpiled, rendered query ready for execution.

    ``sql_ast`` is the *optimised* algebra — the reference evaluator
    materialises intermediate results, so evaluating the transpiler's raw
    one-node-per-rule nesting (cross joins under selections) would blow up
    combinatorially on anything beyond toy instances.  ``opt_level``
    records which optimizer pipeline produced it (0 raw / 1 rule rewrites /
    2 cost-based planning).
    """

    cypher_text: str
    sql_ast: sq.Query
    sql_text: str
    dialect: str
    fingerprint: str
    opt_level: int = DEFAULT_OPT_LEVEL


@dataclass(frozen=True)
class QueryStat:
    """Cumulative measurement accounting for one Cypher text.

    One *execution* here is one recorded measurement: a :meth:`~GraphitiService.run`
    call contributes its single wall-clock time, a
    :meth:`~GraphitiService.time` call contributes the median of its
    repeats as one measurement (the repeats exist to stabilise that
    number, not as independent work).  ``mean_seconds`` is therefore the
    mean *per-execution* wall-clock — the typical cost of running the
    query once.
    """

    cypher_text: str
    executions: int
    total_seconds: float
    last_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.executions if self.executions else 0.0


class _LruCache:
    """A small LRU map with hit/miss accounting (no external deps)."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[object, object] = OrderedDict()

    def get(self, key: object) -> object | None:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: object, value: object) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> CacheInfo:
        return CacheInfo(self.hits, self.misses, self.maxsize, len(self._entries))


class GraphitiService:
    """End-to-end query service over one graph schema.

    Typical use::

        service = GraphitiService(graph_schema)
        service.load_graph(property_graph)        # or load_database / load_mock
        table = service.run("MATCH (n:EMP) RETURN n.name")
        timings = {b: service.time(q, backend=b) for b in service.backends()}
    """

    def __init__(
        self,
        graph_schema: GraphSchema,
        default_backend: str = DEFAULT_BACKEND,
        cache_size: int = 128,
        batch_size: int = 1000,
        indexes: bool = True,
        opt_level: int = DEFAULT_OPT_LEVEL,
    ) -> None:
        if opt_level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {opt_level!r}")
        self.graph_schema = graph_schema
        self.sdt = infer_sdt(graph_schema)
        self.fingerprint = schema_fingerprint(graph_schema)
        self.default_backend = default_backend
        self.batch_size = batch_size
        self.indexes = indexes
        self.opt_level = opt_level
        self._cache = _LruCache(cache_size)
        self._database = Database(self.sdt.schema)
        self._backends: dict[str, ExecutionBackend] = {}
        self._stats: DatabaseStats | None = None
        #: Bumped on every data load; part of the cache key at level 2,
        #: where fresh statistics can legitimately change the chosen plan.
        self._stats_epoch = 0
        self._query_stats: dict[str, QueryStat] = {}

    # -- data --------------------------------------------------------------

    @property
    def database(self) -> Database:
        """The currently loaded induced-schema instance."""
        return self._database

    def load_database(self, database: Database) -> None:
        """Serve queries over *database* (an induced-schema instance)."""
        if database.schema.relations != self.sdt.schema.relations:
            raise ValueError(
                "database schema does not match the induced schema of this service"
            )
        self._reset_backends()
        self._database = database
        self._stats = collect_stats(database)
        self._stats_epoch += 1

    def load_graph(self, graph: object) -> None:
        """Serve queries over a property graph, via the standard transformer."""
        self.load_database(
            transform_graph(self.sdt.transformer, graph, self.sdt.schema)
        )

    def load_mock(self, rows_per_table: int, seed: int = 42) -> None:
        """Serve queries over generated mock data (benchmarks, demos)."""
        generator = MockDataGenerator(self.graph_schema, self.sdt, seed=seed)
        self.load_database(generator.induced_instance(rows_per_table))

    # -- transpilation (cached) --------------------------------------------

    def prepare(
        self,
        cypher_text: str,
        dialect: str | SqlDialect | None = None,
        opt_level: int | None = None,
    ) -> PreparedQuery:
        """Parse, transpile, optimize, and render *cypher_text* (LRU-cached).

        *opt_level* overrides the service default for this query.  The cache
        key includes the level and (at level 2) the statistics epoch, since
        reloaded data can legitimately change the chosen join order.
        """
        if dialect is None:
            dialect = self._dialect_of(self.default_backend)
        dialect = dialect_for(dialect)
        level = self.opt_level if opt_level is None else opt_level
        if level not in OPT_LEVELS:
            raise ValueError(f"unknown optimization level {level!r}")
        epoch = self._stats_epoch if level >= 2 else 0
        key = (self.fingerprint, cypher_text, dialect.name, level, epoch)
        cached = self._cache.get(key)
        if cached is not None:
            assert isinstance(cached, PreparedQuery)
            return cached
        query = parse_cypher(cypher_text, self.graph_schema)
        translated = optimize(
            transpile(query, self.graph_schema, self.sdt),
            level=level,
            schema=self.sdt.schema,
            stats=self._stats,
        )
        rendered = to_sql_text(
            translated, self.sdt.schema, optimized=False, dialect=dialect
        )
        prepared = PreparedQuery(
            cypher_text, translated, rendered, dialect.name, self.fingerprint, level
        )
        self._cache.put(key, prepared)
        return prepared

    def transpile_to_sql(
        self,
        cypher_text: str,
        dialect: str | SqlDialect | None = None,
        opt_level: int | None = None,
    ) -> str:
        """The rendered SQL text for *cypher_text* (LRU-cached)."""
        return self.prepare(cypher_text, dialect, opt_level=opt_level).sql_text

    def cache_info(self) -> CacheInfo:
        return self._cache.info()

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- execution ---------------------------------------------------------

    def run(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
    ) -> Table:
        """Execute *cypher_text* on *backend* over the loaded data."""
        engine = self._backend(backend or self.default_backend)
        prepared = self.prepare(cypher_text, engine.dialect, opt_level=opt_level)
        start = time.perf_counter()
        result = engine.execute(prepared.sql_text)
        self._record(cypher_text, time.perf_counter() - start)
        return result

    def reference(self, cypher_text: str, opt_level: int | None = None) -> Table:
        """The reference bag-semantics evaluation of the transpiled query."""
        prepared = self.prepare(cypher_text, opt_level=opt_level)
        return evaluate_sql(prepared.sql_ast, self._database)

    def explain(
        self,
        cypher_text: str,
        backend: str | None = None,
        opt_level: int | None = None,
    ) -> str:
        engine = self._backend(backend or self.default_backend)
        prepared = self.prepare(cypher_text, engine.dialect, opt_level=opt_level)
        return engine.explain(prepared.sql_text)

    def time(
        self,
        cypher_text: str,
        backend: str | None = None,
        repeats: int = 3,
        opt_level: int | None = None,
    ) -> float:
        """Median execution seconds of *cypher_text* on *backend*."""
        engine = self._backend(backend or self.default_backend)
        prepared = self.prepare(cypher_text, engine.dialect, opt_level=opt_level)
        seconds = engine.time(prepared.sql_text, repeats=repeats)
        self._record(cypher_text, seconds)
        return seconds

    # -- observability -----------------------------------------------------

    def query_stats(self) -> tuple[QueryStat, ...]:
        """Per-query execution accounting (insertion order), for ``--stats``."""
        return tuple(self._query_stats.values())

    def reset_query_stats(self) -> None:
        self._query_stats.clear()

    def _record(self, cypher_text: str, seconds: float) -> None:
        previous = self._query_stats.get(cypher_text)
        if previous is None:
            self._query_stats[cypher_text] = QueryStat(cypher_text, 1, seconds, seconds)
        else:
            self._query_stats[cypher_text] = QueryStat(
                cypher_text,
                previous.executions + 1,
                previous.total_seconds + seconds,
                seconds,
            )

    def backends(self) -> tuple[str, ...]:
        """Backends this service could run on here (registry availability)."""
        return available_backends()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self._reset_backends()

    def __enter__(self) -> "GraphitiService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _backend(self, name: str) -> ExecutionBackend:
        engine = self._backends.get(name)
        if engine is None:
            engine = load_backend(
                name,
                self._database,
                batch_size=self.batch_size,
                indexes=self.indexes,
                stats=dict(self._stats) if self._stats is not None else None,
            )
            self._backends[name] = engine
        return engine

    def _dialect_of(self, backend_name: str) -> SqlDialect:
        from repro.backends.registry import backend_info

        return backend_info(backend_name).backend_class.dialect

    def _reset_backends(self) -> None:
        for engine in self._backends.values():
            engine.close()
        self._backends.clear()

    def _loaded_backends(self) -> Iterator[str]:
        return iter(self._backends)
