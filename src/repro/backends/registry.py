"""Backend registry and factory.

Engines self-register (at import of :mod:`repro.backends`) under a stable
name; everything downstream — the :class:`~repro.backends.service.GraphitiService`,
the CLI's ``run --backend=...`` / ``bench-backends`` subcommands, and the
cross-backend equivalence tests — resolves engines purely through this
registry, so adding an engine is one module plus one
:func:`register_backend` call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Type

from repro.relational.instance import Database
from repro.relational.schema import RelationalSchema

from repro.backends.base import BackendUnavailable, ExecutionBackend


@dataclass(frozen=True)
class BackendInfo:
    """One registry entry: the backend class plus display metadata."""

    name: str
    backend_class: Type[ExecutionBackend]
    description: str = ""

    @property
    def available(self) -> bool:
        return self.backend_class.is_available()


_REGISTRY: dict[str, BackendInfo] = {}


def register_backend(
    backend_class: Type[ExecutionBackend], description: str = ""
) -> Type[ExecutionBackend]:
    """Register *backend_class* under its ``name`` (usable as a decorator)."""
    name = backend_class.name
    if not name or name == "abstract":
        raise ValueError(f"backend class {backend_class!r} needs a concrete name")
    _REGISTRY[name] = BackendInfo(name, backend_class, description)
    return backend_class


def backend_info(name: str) -> BackendInfo:
    """Registry entry for *name* (raises ``KeyError``-style on unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise BackendUnavailable(
            f"unknown backend {name!r} (registered: {known})"
        ) from None


def registered_backends() -> tuple[str, ...]:
    """Names of all registered backends, available or not, sorted."""
    return tuple(sorted(_REGISTRY))


def available_backends() -> tuple[str, ...]:
    """Names of the backends that can actually run here, sorted."""
    return tuple(sorted(n for n, i in _REGISTRY.items() if i.available))


def create_backend(name: str, schema: RelationalSchema) -> ExecutionBackend:
    """Instantiate (but do not connect) the backend registered as *name*.

    Raises :class:`BackendUnavailable` when the engine is unregistered or
    cannot run in this environment.
    """
    info = backend_info(name)
    if not info.available:
        raise BackendUnavailable(
            f"backend {name!r} is not available in this environment "
            f"(is its package installed?)"
        )
    return info.backend_class(schema)


def load_backend(
    name: str,
    database: Database,
    batch_size: int = 1000,
    indexes: bool = True,
    stats: "dict | None" = None,
) -> ExecutionBackend:
    """Create, connect, and bulk-load a backend from *database*.

    The convenience path used by benchmarks and one-shot runs: schema DDL,
    batched loading, and (by default) PK/FK indexes in one call.  The caller
    owns the returned backend and must ``close()`` it (or use it as a
    context manager).  *stats* short-circuits the backend's own statistics
    pass when the caller already collected them for *database*.
    """
    backend = create_backend(name, database.schema)
    backend.connect()
    try:
        backend.bulk_load(database, batch_size=batch_size, stats=stats)
        if indexes:
            backend.create_indexes()
    except Exception:
        backend.close()
        raise
    return backend
