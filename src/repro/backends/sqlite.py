"""SQLite execution backends: in-memory and file-backed.

SQLite ships with CPython, so these two backends are always available and
serve as the reference engines for cross-backend equivalence tests.  The
file-backed variant exists because its performance profile differs (page
cache, fsync on commit) — useful as a second data point in
``bench-backends`` — and because it demonstrates backends that own on-disk
state they must clean up on ``close``.

Connections are opened with ``check_same_thread=False`` so a pooled backend
can be checked out by whichever worker thread is free; the pool guarantees
one thread at a time per member, which is the actual safety requirement.
Pooling strategies differ by storage:

* ``sqlite-file`` clones cheaply — extra pool members are additional
  read connections to the primary member's database file (SQLite allows
  any number of concurrent readers);
* ``sqlite-memory`` cannot share a plain ``:memory:`` database between
  connections, so it reports ``clone_for_pool() -> None`` and the pool
  falls back to per-worker clone loading (each member gets its own
  loaded copy — embarrassingly parallel reads at the cost of memory).
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
import time

from repro.common.budget import BudgetTracker
from repro.relational.schema import RelationalSchema
from repro.sql.dialect import SQLITE

from repro.backends.base import DbApiBackend, ExecutionBackend
from repro.backends.registry import register_backend


class _ProgressDeadlineGuard:
    """A sqlite progress-handler deadline: aborts the running statement
    once the wall clock passes the budget's deadline.

    SQLite calls the handler every ``_OPS_INTERVAL`` virtual-machine
    instructions; returning non-zero aborts the statement with
    ``OperationalError: interrupted`` — the *statement*, not the
    connection, which stays fully usable (this is what keeps a tripped
    budget from poisoning the pool member).
    """

    #: VM instructions between clock checks — coarse enough to stay under
    #: the guard-overhead budget, fine enough for sub-millisecond response.
    _OPS_INTERVAL = 4000

    def __init__(self, connection: sqlite3.Connection, deadline: float) -> None:
        self.tripped = False
        self._connection = connection
        self._deadline = deadline
        connection.set_progress_handler(self._tick, self._OPS_INTERVAL)

    def _tick(self) -> int:
        if time.monotonic() > self._deadline:
            self.tripped = True
            return 1
        return 0

    def cancel(self) -> None:
        self._connection.set_progress_handler(None, 0)


class _SqliteBackend(DbApiBackend):
    """Shared SQLite behaviour; subclasses pick the database location."""

    dialect = SQLITE

    def _database_path(self) -> str:
        return ":memory:"

    def _open_connection(self) -> sqlite3.Connection:
        # check_same_thread=False: members of a ConnectionPool migrate
        # between worker threads (never concurrently — the pool serialises
        # checkout/checkin), which the default same-thread guard would veto.
        return sqlite3.connect(self._database_path(), check_same_thread=False)

    def _install_budget_guard(self, tracker: BudgetTracker):
        deadline = tracker.deadline()
        if deadline is None:
            return None
        return _ProgressDeadlineGuard(self.connection, deadline)


@register_backend
class SqliteMemoryBackend(_SqliteBackend):
    """An in-memory SQLite instance — the default, fastest-startup engine."""

    name = "sqlite-memory"


@register_backend
class SqliteFileBackend(_SqliteBackend):
    """A file-backed SQLite instance.

    Uses *path* when given; otherwise a temporary file that is deleted on
    ``close``.
    """

    name = "sqlite-file"

    def __init__(self, schema: RelationalSchema, path: str | None = None) -> None:
        super().__init__(schema)
        self._owns_file = path is None
        if path is None:
            descriptor, path = tempfile.mkstemp(prefix="graphiti-", suffix=".sqlite")
            os.close(descriptor)
        self.path = path

    def _database_path(self) -> str:
        return self.path

    def clone_for_pool(self) -> ExecutionBackend | None:
        """Another read connection to the same database file.

        The clone does not own the file (the primary's ``close`` removes
        it), skips DDL (the schema already exists on disk), and shares the
        primary's already-collected table statistics instead of rescanning
        the data.
        """
        clone = SqliteFileBackend(self.schema, path=self.path)
        clone.connect()
        clone._schema_created = True
        clone._table_stats = self._table_stats
        clone._stats_source = self._stats_source
        return clone

    def close(self) -> None:
        super().close()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)
