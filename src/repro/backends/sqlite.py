"""SQLite execution backends: in-memory and file-backed.

SQLite ships with CPython, so these two backends are always available and
serve as the reference engines for cross-backend equivalence tests.  The
file-backed variant exists because its performance profile differs (page
cache, fsync on commit) — useful as a second data point in
``bench-backends`` — and because it demonstrates backends that own on-disk
state they must clean up on ``close``.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile

from repro.relational.schema import RelationalSchema
from repro.sql.dialect import SQLITE

from repro.backends.base import DbApiBackend
from repro.backends.registry import register_backend


class _SqliteBackend(DbApiBackend):
    """Shared SQLite behaviour; subclasses pick the database location."""

    dialect = SQLITE

    def _database_path(self) -> str:
        return ":memory:"

    def _open_connection(self) -> sqlite3.Connection:
        return sqlite3.connect(self._database_path())


@register_backend
class SqliteMemoryBackend(_SqliteBackend):
    """An in-memory SQLite instance — the default, fastest-startup engine."""

    name = "sqlite-memory"


@register_backend
class SqliteFileBackend(_SqliteBackend):
    """A file-backed SQLite instance.

    Uses *path* when given; otherwise a temporary file that is deleted on
    ``close``.
    """

    name = "sqlite-file"

    def __init__(self, schema: RelationalSchema, path: str | None = None) -> None:
        super().__init__(schema)
        self._owns_file = path is None
        if path is None:
            descriptor, path = tempfile.mkstemp(prefix="graphiti-", suffix=".sqlite")
            os.close(descriptor)
        self.path = path

    def _database_path(self) -> str:
        return self.path

    def close(self) -> None:
        super().close()
        if self._owns_file and os.path.exists(self.path):
            os.unlink(self.path)
