"""Per-backend connection pooling for concurrent query serving.

A :class:`ConnectionPool` owns up to *capacity* warmed, schema-loaded
:class:`~repro.backends.base.ExecutionBackend` members for one engine and
one loaded database.  The first member (the *primary*) is created eagerly
at construction — connect, DDL, single-transaction bulk load, indexes — so
the pool is immediately serviceable; further members are spawned lazily,
only when a checkout finds no idle member and the pool is below capacity.

Growth prefers :meth:`~repro.backends.base.ExecutionBackend.clone_for_pool`
on the primary — extra read connections to a shared database file
(``sqlite-file``) or extra cursors into a shared in-memory engine
(``duckdb``) — and falls back to per-worker clone loading (a fresh
bulk-loaded member, as ``sqlite-memory`` needs) when the engine cannot
share storage.  Either way every member carries the same pre-collected
table statistics; the pool never re-scans the source data.

Checkout/checkin follow the classic discipline: a member is used by at
most one thread at a time, ``checkout`` blocks (with optional timeout)
when all members are busy and the pool is at capacity, and the
:meth:`connection` context manager guarantees checkin on all paths.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.relational.instance import Database
from repro.sql.stats import TableStats

from repro.backends.base import ExecutionBackend
from repro.backends.registry import load_backend


class PoolClosed(RuntimeError):
    """Checkout attempted on a closed pool."""


class PoolTimeout(RuntimeError):
    """Checkout timed out waiting for a free member."""


class ConnectionPool:
    """A pool of warmed, schema-loaded backends for one engine + dataset."""

    def __init__(
        self,
        backend_name: str,
        database: Database,
        capacity: int = 4,
        batch_size: int = 1000,
        indexes: bool = True,
        stats: dict[str, TableStats] | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.backend_name = backend_name
        self._database = database
        self._batch_size = batch_size
        self._indexes = indexes
        self._stats = stats
        self._capacity = capacity
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._idle: list[ExecutionBackend] = []
        self._spawning = 0
        self._size = 0
        self._checked_out = 0
        self._closed = False
        # Serialises clone_for_pool calls on the template: a backend is a
        # single connection and must never be driven from two threads.
        self._clone_lock = threading.Lock()
        # Warm the primary eagerly: its load pays the one-time DDL +
        # single-transaction bulk load.  Engines whose storage is shareable
        # keep it as a *template* that is never handed out — clones are
        # always stamped from a connection no worker thread is using.
        # Non-shareable engines put the primary straight into rotation.
        primary = self._load_member()
        first_clone = primary.clone_for_pool()
        if first_clone is None:
            self._template: ExecutionBackend | None = None
            self._size = 1
            self._idle.append(primary)
        else:
            self._template = primary
            self._size = 1
            self._idle.append(first_clone)

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of members the pool may grow to."""
        return self._capacity

    @property
    def size(self) -> int:
        """Members created so far (idle + checked out)."""
        with self._lock:
            return self._size

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._checked_out

    # -- sizing ------------------------------------------------------------

    def grow_to(self, capacity: int) -> None:
        """Raise the capacity ceiling (never shrinks, never spawns)."""
        with self._lock:
            self._capacity = max(self._capacity, capacity)

    def warm(self, members: int) -> None:
        """Eagerly spawn until at least ``min(members, capacity)`` exist.

        Benchmarks call this before timing so member creation (which for
        clone-loading engines repeats the bulk load) does not count against
        the first concurrent batch.
        """
        while True:
            with self._lock:
                if self._closed:
                    raise PoolClosed(f"pool for {self.backend_name!r} is closed")
                target = min(members, self._capacity)
                if self._size + self._spawning >= target:
                    return
                self._spawning += 1
            self._spawn_reserved()

    # -- checkout / checkin ------------------------------------------------

    def checkout(self, timeout: float | None = None) -> ExecutionBackend:
        """A member for exclusive use; blocks while at capacity and busy."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                if self._closed:
                    raise PoolClosed(f"pool for {self.backend_name!r} is closed")
                if self._idle:
                    member = self._idle.pop()
                    self._checked_out += 1
                    return member
                if self._size + self._spawning < self._capacity:
                    self._spawning += 1
                    break
                # A real deadline, not a per-wakeup timeout: a waiter that
                # keeps being notified but loses the race to a faster
                # thread must still time out after *timeout* seconds total.
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise PoolTimeout(
                        f"no free {self.backend_name!r} member within {timeout}s "
                        f"(capacity {self._capacity})"
                    )
                self._available.wait(remaining)
        member = self._spawn_reserved(checkout=True)
        return member

    def checkin(self, member: ExecutionBackend) -> None:
        """Return *member* to the idle set (closes it if the pool closed)."""
        with self._available:
            self._checked_out -= 1
            if self._closed:
                self._size -= 1
                closing = member
            else:
                self._idle.append(member)
                closing = None
            self._available.notify()
        if closing is not None:
            closing.close()
            self._teardown_template_if_due()

    @contextmanager
    def connection(self, timeout: float | None = None) -> Iterator[ExecutionBackend]:
        """``with pool.connection() as engine: engine.execute(...)``."""
        member = self.checkout(timeout=timeout)
        try:
            yield member
        finally:
            self.checkin(member)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close idle members and refuse new checkouts.

        Members currently checked out are closed as they are checked back
        in, so no connection is ever torn down under a running query; the
        template (owner of any shared storage) is closed only once the
        last outstanding member has returned.
        """
        with self._available:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._size -= len(idle)
            self._available.notify_all()
        for member in idle:
            member.close()
        self._teardown_template_if_due()

    def _teardown_template_if_due(self) -> None:
        """Close the template once it can no longer be needed.

        The template owns any shared storage (the database file, the parent
        in-memory connection), so it must outlive every member *and* every
        in-flight spawn; the last of close()/checkin()/_spawn_reserved() to
        observe the closed, fully drained pool tears it down.
        """
        template = None
        with self._available:
            if (
                self._closed
                and self._checked_out == 0
                and self._spawning == 0
                and self._template is not None
            ):
                template, self._template = self._template, None
        if template is not None:
            with self._clone_lock:  # never under an in-flight clone
                template.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _load_member(self) -> ExecutionBackend:
        return load_backend(
            self.backend_name,
            self._database,
            batch_size=self._batch_size,
            indexes=self._indexes,
            stats=self._stats,
        )

    def _spawn_reserved(self, checkout: bool = False) -> ExecutionBackend:
        """Create the member a caller reserved a slot for (``_spawning``)."""
        member: ExecutionBackend | None = None
        discard = False
        try:
            if self._template is not None:
                with self._clone_lock:
                    template = self._template  # may have been taken meanwhile
                    member = template.clone_for_pool() if template else None
            if member is None:
                member = self._load_member()
        finally:
            # The member's fate is decided under the lock — a close() racing
            # with this spawn either sees the member in the pool's books and
            # handles it, or we discard it ourselves, never both.
            with self._available:
                self._spawning -= 1
                if member is None:
                    # Spawn failed: wake a waiter so it can reserve the slot
                    # (or observe the pool's closure) instead of hanging.
                    self._available.notify()
                elif self._closed:
                    discard = True
                else:
                    self._size += 1
                    if checkout:
                        self._checked_out += 1
                    else:
                        self._idle.append(member)
                        self._available.notify()
        if discard:
            member.close()
            self._teardown_template_if_due()
            raise PoolClosed(f"pool for {self.backend_name!r} is closed")
        assert member is not None
        return member
