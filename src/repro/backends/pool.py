"""Per-backend connection pooling for concurrent query serving.

A :class:`ConnectionPool` owns up to *capacity* warmed, schema-loaded
:class:`~repro.backends.base.ExecutionBackend` members for one engine and
one loaded database.  The first member (the *primary*) is created eagerly
at construction — connect, DDL, single-transaction bulk load, indexes — so
the pool is immediately serviceable; further members are spawned lazily,
only when a checkout finds no idle member and the pool is below capacity.

Growth prefers :meth:`~repro.backends.base.ExecutionBackend.clone_for_pool`
on the primary — extra read connections to a shared database file
(``sqlite-file``) or extra cursors into a shared in-memory engine
(``duckdb``) — and falls back to per-worker clone loading (a fresh
bulk-loaded member, as ``sqlite-memory`` needs) when the engine cannot
share storage.  Either way every member carries the same pre-collected
table statistics; the pool never re-scans the source data.

Checkout/checkin follow the classic discipline: a member is used by at
most one thread at a time, ``checkout`` blocks (with optional timeout)
when all members are busy and the pool is at capacity, and the
:meth:`connection` context manager guarantees checkin on all paths.

Async callers coexist with sync ones on the same pool through a
non-blocking protocol instead of the blocking ``checkout``:

* :meth:`try_checkout` pops an idle member or returns ``None`` without
  ever blocking;
* :meth:`try_reserve` + :meth:`spawn_reserved` split lazy growth into a
  lock-only reservation and the expensive member creation, so an event
  loop can reserve instantly and run the (blocking) spawn in an executor;
* :meth:`add_waiter` registers a wakeup callback fired whenever a member
  becomes available (checkin, fresh spawn) or the pool closes — an
  asyncio caller points it at ``loop.call_soon_threadsafe(event.set)``
  and awaits the event instead of blocking a worker thread.

Waiter callbacks must be cheap and non-blocking (they may run on whichever
thread checks a member in); exceptions they raise are swallowed so a dead
event loop can never break another caller's checkin.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import NOOP_TRACER
from repro.relational.instance import Database
from repro.sql.stats import TableStats

from repro.backends.base import ExecutionBackend
from repro.backends.registry import load_backend


class PoolClosed(RuntimeError):
    """Checkout attempted on a closed pool."""


class PoolTimeout(RuntimeError):
    """Checkout timed out waiting for a free member.

    Carries the pool's state at the moment of the timeout, so the message
    (and the structured attributes, for programmatic handlers) answer the
    operational question directly: was the pool undersized (``capacity``
    all ``in_use``), or starved by a stampede (many ``waiters``)?
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        capacity: int | None = None,
        in_use: int | None = None,
        idle: int | None = None,
        waiters: int | None = None,
        waited_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.capacity = capacity
        self.in_use = in_use
        self.idle = idle
        self.waiters = waiters
        self.waited_seconds = waited_seconds


class _PoolMetrics:
    """The pool's registry instruments, labelled by backend name."""

    def __init__(self, registry: MetricsRegistry, backend_name: str) -> None:
        self.backend = backend_name
        self.checkouts = registry.counter(
            "repro_pool_checkouts_total", "Pool checkouts completed."
        )
        self.timeouts = registry.counter(
            "repro_pool_timeouts_total", "Pool checkouts that timed out."
        )
        self.spawns = registry.counter(
            "repro_pool_spawns_total", "Pool members created."
        )
        self.wait_seconds = registry.histogram(
            "repro_pool_checkout_wait_seconds",
            "Seconds a checkout waited for an exclusive member.",
        )
        self.size = registry.gauge(
            "repro_pool_size", "Pool members created (idle + in use)."
        )
        self.in_use = registry.gauge(
            "repro_pool_in_use", "Pool members currently checked out."
        )
        self.waiters = registry.gauge(
            "repro_pool_waiters", "Callers currently waiting for a member."
        )
        self.validation_failures = registry.counter(
            "repro_pool_validation_failures_total",
            "Members that failed a liveness probe (checkout or damaged checkin).",
        )
        self.evictions = registry.counter(
            "repro_pool_evictions_total",
            "Broken members evicted (closed and removed) from the pool.",
        )

    def checkout(self, waited_seconds: float) -> None:
        self.checkouts.inc(backend=self.backend)
        self.wait_seconds.observe(waited_seconds, backend=self.backend)

    def timeout(self) -> None:
        self.timeouts.inc(backend=self.backend)

    def spawned(self) -> None:
        self.spawns.inc(backend=self.backend)

    def validation_failed(self) -> None:
        self.validation_failures.inc(backend=self.backend)

    def evicted(self) -> None:
        self.evictions.inc(backend=self.backend)

    def state(self, size: int, in_use: int, waiters: int) -> None:
        self.size.set(size, backend=self.backend)
        self.in_use.set(in_use, backend=self.backend)
        self.waiters.set(waiters, backend=self.backend)


class ConnectionPool:
    """A pool of warmed, schema-loaded backends for one engine + dataset."""

    def __init__(
        self,
        backend_name: str,
        database: Database,
        capacity: int = 4,
        batch_size: int = 1000,
        indexes: bool = True,
        stats: dict[str, TableStats] | None = None,
        registry: MetricsRegistry | None = None,
        tracer=None,
        validate_on_checkout: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.backend_name = backend_name
        #: Liveness-probe idle members before handing them out; a member
        #: that fails is evicted and the checkout moves on to the next one
        #: (or spawns a replacement).  The probe is a single ``SELECT 1``;
        #: benchmarks may turn it off to measure its cost.
        self.validate_on_checkout = validate_on_checkout
        #: Span producer for ``pool.checkout`` spans; mutable so a service
        #: can attach a real tracer to an already-built pool (``repro
        #: explain`` swaps tracers per query).
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self._metrics = _PoolMetrics(registry, backend_name) if registry else None
        self._database = database
        self._batch_size = batch_size
        self._indexes = indexes
        self._stats = stats
        self._capacity = capacity
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._idle: list[ExecutionBackend] = []
        self._spawning = 0
        self._size = 0
        self._checked_out = 0
        #: Sync callers currently blocked inside :meth:`checkout`'s wait.
        self._blocked = 0
        self._closed = False
        #: Async wakeup callbacks, insertion-ordered (FIFO fairness).
        self._waiters: OrderedDict[int, Callable[[], None]] = OrderedDict()
        self._waiter_token = 0
        # Serialises clone_for_pool calls on the template: a backend is a
        # single connection and must never be driven from two threads.
        self._clone_lock = threading.Lock()
        # Warm the primary eagerly: its load pays the one-time DDL +
        # single-transaction bulk load.  Engines whose storage is shareable
        # keep it as a *template* that is never handed out — clones are
        # always stamped from a connection no worker thread is using.
        # Non-shareable engines put the primary straight into rotation.
        primary = self._load_member()
        first_clone = primary.clone_for_pool()
        if first_clone is None:
            self._template: ExecutionBackend | None = None
            self._size = 1
            self._idle.append(primary)
        else:
            self._template = primary
            self._size = 1
            self._idle.append(first_clone)

    # -- introspection -----------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of members the pool may grow to."""
        return self._capacity

    @property
    def size(self) -> int:
        """Members created so far (idle + checked out)."""
        with self._lock:
            return self._size

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._checked_out

    # -- sizing ------------------------------------------------------------

    def grow_to(self, capacity: int) -> None:
        """Raise the capacity ceiling (never shrinks, never spawns)."""
        with self._lock:
            self._capacity = max(self._capacity, capacity)

    def warm(self, members: int) -> None:
        """Eagerly spawn until at least ``min(members, capacity)`` exist.

        Benchmarks call this before timing so member creation (which for
        clone-loading engines repeats the bulk load) does not count against
        the first concurrent batch.
        """
        while True:
            with self._lock:
                if self._closed:
                    raise PoolClosed(f"pool for {self.backend_name!r} is closed")
                target = min(members, self._capacity)
                if self._size + self._spawning >= target:
                    return
                self._spawning += 1
            self._spawn_reserved()

    # -- checkout / checkin ------------------------------------------------

    def checkout(self, timeout: float | None = None) -> ExecutionBackend:
        """A member for exclusive use; blocks while at capacity and busy.

        Idle members are liveness-probed before being handed out (see
        ``validate_on_checkout``): a dead member — its engine connection
        died while it sat idle — is evicted, freeing its capacity slot,
        and the checkout retries with the next idle member or a fresh
        spawn.  The probe runs outside the pool lock so a slow one never
        serialises other checkouts.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        started = time.perf_counter()
        with self.tracer.span("pool.checkout", backend=self.backend_name) as span:
            spawned = False
            while True:
                member = None
                with self._available:
                    while True:
                        if self._closed:
                            raise PoolClosed(
                                f"pool for {self.backend_name!r} is closed"
                            )
                        if self._idle:
                            member = self._idle.pop()
                            self._checked_out += 1
                            break
                        if self._size + self._spawning < self._capacity:
                            self._spawning += 1
                            spawned = True
                            break
                        # A real deadline, not a per-wakeup timeout: a waiter
                        # that keeps being notified but loses the race to a
                        # faster thread must still time out after *timeout*
                        # seconds total.
                        remaining = (
                            None if deadline is None else deadline - time.monotonic()
                        )
                        if remaining is not None and remaining <= 0:
                            raise self._timeout_locked(
                                timeout, time.perf_counter() - started
                            )
                        self._blocked += 1
                        try:
                            self._available.wait(remaining)
                        finally:
                            self._blocked -= 1
                if member is None:
                    member = self._spawn_reserved(checkout=True)
                elif not self._admit(member):
                    continue  # dead member evicted; retry under the deadline
                self._note_checkout(time.perf_counter() - started, span, spawned)
                return member

    def _note_checkout(self, waited: float, span, spawned: bool) -> None:
        """Account one successful checkout (metrics + span attributes)."""
        span.set("waited_ms", round(waited * 1000.0, 3))
        span.set("spawned", spawned)
        if self._metrics is not None:
            self._metrics.checkout(waited)
            self._update_state_gauges()

    def _timeout_locked(self, timeout: float | None, waited: float) -> PoolTimeout:
        """The diagnostic timeout error; caller holds the pool lock."""
        waiters = self._blocked + len(self._waiters)
        if self._metrics is not None:
            self._metrics.timeout()
        return PoolTimeout(
            f"no free {self.backend_name!r} member within {timeout}s: "
            f"capacity {self._capacity}, {self._checked_out} in use, "
            f"{len(self._idle)} idle, {waiters} waiter(s), "
            f"waited {waited:.3f}s",
            backend=self.backend_name,
            capacity=self._capacity,
            in_use=self._checked_out,
            idle=len(self._idle),
            waiters=waiters,
            waited_seconds=waited,
        )

    def timeout_error(self, timeout: float | None, waited: float) -> PoolTimeout:
        """A :class:`PoolTimeout` carrying this pool's current diagnostics.

        For external waiting disciplines — the async service awaits an
        event instead of blocking in :meth:`checkout`, but its timeout
        should explain the pool state just the same.
        """
        with self._lock:
            return self._timeout_locked(timeout, waited)

    def snapshot(self) -> dict:
        """Point-in-time pool state (introspection / ``--stats`` views)."""
        with self._lock:
            return {
                "backend": self.backend_name,
                "capacity": self._capacity,
                "size": self._size,
                "idle": len(self._idle),
                "in_use": self._checked_out,
                "waiters": self._blocked + len(self._waiters),
                "closed": self._closed,
            }

    def _update_state_gauges(self) -> None:
        # Advisory gauge refresh: reads are GIL-atomic ints, and the gauges
        # describe a moving target anyway — not worth holding the pool lock.
        if self._metrics is not None:
            self._metrics.state(
                self._size,
                self._checked_out,
                self._blocked + len(self._waiters),
            )

    # -- non-blocking protocol (async callers) -----------------------------

    def try_checkout(self) -> ExecutionBackend | None:
        """An idle member, or ``None`` — never blocks, never spawns.

        The async half of :meth:`checkout`: an event loop polls this on its
        own thread, falling back to :meth:`try_reserve` (grow) and then to
        :meth:`add_waiter` (wait without blocking) when it returns ``None``.

        Applies the same liveness validation as :meth:`checkout` — a dead
        idle member is evicted and the next one tried.
        """
        while True:
            with self._lock:
                if self._closed:
                    raise PoolClosed(f"pool for {self.backend_name!r} is closed")
                if not self._idle:
                    return None
                member = self._idle.pop()
                self._checked_out += 1
            if self._admit(member):
                return member

    def try_reserve(self) -> bool:
        """Reserve a growth slot if the pool is below capacity (lock-only).

        A ``True`` return obliges the caller to call :meth:`spawn_reserved`
        exactly once — typically from an executor thread, since member
        creation is blocking (connect, and for clone-loading engines a full
        bulk load).
        """
        with self._lock:
            if self._closed:
                raise PoolClosed(f"pool for {self.backend_name!r} is closed")
            if self._size + self._spawning < self._capacity:
                self._spawning += 1
                return True
            return False

    def spawn_reserved(self) -> ExecutionBackend:
        """Create (and check out) the member a :meth:`try_reserve` promised."""
        return self._spawn_reserved(checkout=True)

    def cancel_reservation(self) -> None:
        """Release a :meth:`try_reserve` slot whose spawn will never run.

        For callers that dispatch :meth:`spawn_reserved` indirectly (an
        executor) and can fail *between* reserving and spawning — e.g. the
        dispatch was cancelled while still queued.  Without this the
        reserved slot would count against capacity forever.  Must not be
        called once :meth:`spawn_reserved` has started: that method
        releases the slot itself on every path.
        """
        with self._available:
            self._spawning -= 1
            self._available.notify()
            wake = self._pop_waiters(1)
        self._fire_waiters(wake)
        self._teardown_template_if_due()

    def add_waiter(self, callback: Callable[[], None]) -> int:
        """Register *callback* to fire when a member may be available.

        Fired (at most once per registration per event) on checkin, on a
        fresh member entering the idle set, on a failed spawn releasing its
        slot, and on pool close.  A wakeup is a *hint*, not a grant: the
        woken caller must retry :meth:`try_checkout` and may lose the race
        to a blocking ``checkout`` — re-registering is the correct response.
        Returns a token for :meth:`remove_waiter`.
        """
        with self._lock:
            self._waiter_token += 1
            self._waiters[self._waiter_token] = callback
            return self._waiter_token

    def remove_waiter(self, token: int) -> bool:
        """Deregister a waiter callback (idempotent).

        Returns ``True`` if the callback was still registered; ``False``
        means it had already been popped for firing — i.e. this waiter
        consumed (or is about to receive) a wakeup hint.  A caller exiting
        exceptionally on ``False`` should pass the hint on with
        :meth:`wake_waiter`, or the freed member it advertises may strand.
        """
        with self._lock:
            return self._waiters.pop(token, None) is not None

    def wake_waiter(self) -> None:
        """Re-fire one waiter wakeup.

        Used by a woken caller that cannot act on its hint (timed out,
        cancelled) to hand the hint to the next waiter in line.
        """
        with self._lock:
            wake = self._pop_waiters(1)
        self._fire_waiters(wake)

    def _pop_waiters(self, count: int | None = None) -> list[Callable[[], None]]:
        """Detach up to *count* waiter callbacks (all if ``None``); caller
        must hold the lock and fire them *after* releasing it."""
        popped: list[Callable[[], None]] = []
        while self._waiters and (count is None or len(popped) < count):
            _, callback = self._waiters.popitem(last=False)
            popped.append(callback)
        return popped

    @staticmethod
    def _fire_waiters(callbacks: list[Callable[[], None]]) -> None:
        for callback in callbacks:
            try:
                callback()
            except Exception:  # a dead loop must not break this checkin
                pass

    def checkin(self, member: ExecutionBackend, damaged: bool = False) -> bool:
        """Return *member* to the idle set (closes it if the pool closed).

        *damaged* marks a member whose last use raised an engine exception:
        it is liveness-probed before reuse, and one whose connection died
        is evicted — closed, its capacity slot freed for a respawn —
        instead of poisoning the next caller.  Returns ``True`` when the
        member was retained, ``False`` when it was evicted.
        """
        if damaged and not self._member_alive(member):
            self._discard_checked_out(member)
            return False
        with self._available:
            self._checked_out -= 1
            if self._closed:
                self._size -= 1
                closing = member
            else:
                self._idle.append(member)
                closing = None
            self._available.notify()
            wake = self._pop_waiters(1)
        self._fire_waiters(wake)
        self._update_state_gauges()
        if closing is not None:
            closing.close()
            self._teardown_template_if_due()
        return True

    @contextmanager
    def connection(self, timeout: float | None = None) -> Iterator[ExecutionBackend]:
        """``with pool.connection() as engine: engine.execute(...)``.

        A body that raises checks the member in as *damaged*, so a
        connection the exception killed is evicted instead of reused.
        """
        member = self.checkout(timeout=timeout)
        try:
            yield member
        except BaseException:
            self.checkin(member, damaged=True)
            raise
        else:
            self.checkin(member)

    # -- member health -----------------------------------------------------

    def _member_alive(self, member: ExecutionBackend) -> bool:
        """Liveness-probe *member*, counting failures in the metrics."""
        try:
            alive = member.ping()
        except Exception:
            alive = False
        if not alive and self._metrics is not None:
            self._metrics.validation_failed()
        return alive

    def _admit(self, member: ExecutionBackend) -> bool:
        """Validate a just-checked-out idle member; evict if dead."""
        if not self.validate_on_checkout:
            return True
        if self._member_alive(member):
            return True
        self._discard_checked_out(member)
        return False

    def _discard_checked_out(self, member: ExecutionBackend) -> None:
        """Evict a currently-checked-out member: close it and free its
        capacity slot (waking a waiter, which may now reserve a spawn)."""
        with self._available:
            self._checked_out -= 1
            self._size -= 1
            if self._metrics is not None:
                self._metrics.evicted()
            self._available.notify()
            wake = self._pop_waiters(1)
        self._fire_waiters(wake)
        self._update_state_gauges()
        try:
            member.close()
        except Exception:
            pass
        self._teardown_template_if_due()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close idle members and refuse new checkouts.

        Members currently checked out are closed as they are checked back
        in, so no connection is ever torn down under a running query; the
        template (owner of any shared storage) is closed only once the
        last outstanding member has returned.
        """
        with self._available:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._size -= len(idle)
            self._available.notify_all()
            wake = self._pop_waiters()
        self._fire_waiters(wake)
        for member in idle:
            member.close()
        self._teardown_template_if_due()

    def _teardown_template_if_due(self) -> None:
        """Close the template once it can no longer be needed.

        The template owns any shared storage (the database file, the parent
        in-memory connection), so it must outlive every member *and* every
        in-flight spawn; the last of close()/checkin()/_spawn_reserved() to
        observe the closed, fully drained pool tears it down.
        """
        template = None
        with self._available:
            if (
                self._closed
                and self._checked_out == 0
                and self._spawning == 0
                and self._template is not None
            ):
                template, self._template = self._template, None
        if template is not None:
            with self._clone_lock:  # never under an in-flight clone
                template.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _load_member(self) -> ExecutionBackend:
        return load_backend(
            self.backend_name,
            self._database,
            batch_size=self._batch_size,
            indexes=self._indexes,
            stats=self._stats,
        )

    def _spawn_reserved(self, checkout: bool = False) -> ExecutionBackend:
        """Create the member a caller reserved a slot for (``_spawning``)."""
        member: ExecutionBackend | None = None
        discard = False
        wake: list[Callable[[], None]] = []
        try:
            if self._template is not None:
                with self._clone_lock:
                    template = self._template  # may have been taken meanwhile
                    member = template.clone_for_pool() if template else None
            if member is None:
                member = self._load_member()
        finally:
            # The member's fate is decided under the lock — a close() racing
            # with this spawn either sees the member in the pool's books and
            # handles it, or we discard it ourselves, never both.
            with self._available:
                self._spawning -= 1
                if member is None:
                    # Spawn failed: wake a waiter so it can reserve the slot
                    # (or observe the pool's closure) instead of hanging.
                    self._available.notify()
                    wake = self._pop_waiters(1)
                elif self._closed:
                    discard = True
                else:
                    self._size += 1
                    if self._metrics is not None:
                        self._metrics.spawned()
                    if checkout:
                        self._checked_out += 1
                    else:
                        self._idle.append(member)
                        self._available.notify()
                        wake = self._pop_waiters(1)
            self._fire_waiters(wake)
            self._update_state_gauges()
        if discard:
            member.close()
            self._teardown_template_if_due()
            raise PoolClosed(f"pool for {self.backend_name!r} is closed")
        assert member is not None
        return member
