"""Serving-layer fault guards: bounded retry and per-backend circuit breaking.

Two small, deterministic-under-test primitives the service composes around
pool checkout + engine execution:

* :class:`RetryPolicy` — bounded retry with exponential backoff and
  decorrelating jitter for *transient* failures (a member whose connection
  died mid-query, a spawn that failed).  The clockwork is injectable
  (``rng``, ``sleep``) so tests run instantly and assert exact schedules.

* :class:`CircuitBreaker` — the classic three-state machine.  CLOSED
  passes traffic and counts consecutive failures; at ``failure_threshold``
  it OPENs and sheds load instantly (:class:`CircuitOpen`) instead of
  making every caller wait out a dead engine's timeouts; after
  ``cooldown_seconds`` it admits one probe (HALF_OPEN) whose outcome
  either re-CLOSEs or re-OPENs the circuit.  The clock is injectable for
  the same reason.

Neither primitive knows about metrics; the service wires breaker
transitions into its registry via the ``on_transition`` callback so these
stay dependency-free and reusable.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable


class CircuitOpen(RuntimeError):
    """Load shed: the backend's circuit breaker is open.

    Raised *before* any pool or engine work happens, so callers fail in
    microseconds while the engine is known-dead.  Carries when the next
    probe will be admitted.
    """

    def __init__(
        self,
        message: str,
        *,
        backend: str | None = None,
        failures: int | None = None,
        retry_after_seconds: float | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.failures = failures
        self.retry_after_seconds = retry_after_seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + jitter.

    ``max_attempts`` counts total tries (1 = no retry).  Delay before
    retry *n* (1-based) is ``base_delay * multiplier**(n-1)``, capped at
    ``max_delay``, with up to ``jitter`` of itself subtracted at random —
    decorrelating a thundering herd of workers that all lost members to
    the same engine crash.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")

    def should_retry(self, attempt: int) -> bool:
        """Whether to try again after 1-based try *attempt* failed."""
        return attempt < self.max_attempts

    def delay_for(
        self, attempt: int, rng: Callable[[], float] = random.random
    ) -> float:
        """Backoff before the retry that follows 1-based try *attempt*."""
        delay = min(
            self.base_delay * self.multiplier ** (attempt - 1), self.max_delay
        )
        return delay * (1.0 - self.jitter * rng())


#: No sleeping, one try — for tests and latency-critical callers.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay=0.0)


class CircuitBreaker:
    """A per-backend three-state circuit breaker (thread-safe).

    States: ``"closed"`` (normal traffic; consecutive failures counted),
    ``"open"`` (every :meth:`allow` raises :class:`CircuitOpen` until the
    cooldown passes), ``"half_open"`` (exactly one probe call admitted;
    its success re-closes the circuit, its failure re-opens it and
    restarts the cooldown).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        backend_name: str = "",
        failure_threshold: int = 5,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.backend_name = backend_name
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.clock = clock
        self.on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._probe_token = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> int | None:
        """Admit one call or raise :class:`CircuitOpen` (load shed).

        Returns a probe token when this call holds the single half-open
        probe slot (``None`` otherwise).  The holder must settle the probe
        — :meth:`record_success` or :meth:`record_failure` — or hand the
        token to :meth:`release_probe` from a ``finally``, so a probe that
        exits without a verdict (pool timeout, cancellation, a query-level
        error) frees the slot instead of wedging the breaker HALF_OPEN
        with every later :meth:`allow` shed forever.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return None
            elapsed = self.clock() - self._opened_at
            if self._state == self.OPEN and elapsed >= self.cooldown_seconds:
                self._transition(self.HALF_OPEN)
            if self._state == self.HALF_OPEN and not self._probing:
                self._probing = True  # exactly one concurrent probe
                self._probe_token += 1
                return self._probe_token
            remaining = max(self.cooldown_seconds - elapsed, 0.0)
            raise CircuitOpen(
                f"circuit for backend {self.backend_name!r} is open after "
                f"{self._failures} consecutive failure(s); "
                f"next probe in {remaining:.3f}s",
                backend=self.backend_name,
                failures=self._failures,
                retry_after_seconds=remaining,
            )

    def release_probe(self, token: int | None) -> None:
        """Free the half-open probe slot if the probe identified by *token*
        never reached a verdict.

        Safe to call unconditionally from a ``finally``: it is a no-op when
        *token* is ``None``, after the probe was settled by
        :meth:`record_success`/:meth:`record_failure`, and when a newer
        probe holds the slot (the token match keeps a stale release from
        freeing someone else's probe).
        """
        if token is None:
            return
        with self._lock:
            if self._probing and token == self._probe_token:
                self._probing = False

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN:
                # The probe failed: back to shedding for a full cooldown.
                self._probing = False
                self._opened_at = self.clock()
                self._transition(self.OPEN)
            elif (
                self._state == self.CLOSED
                and self._failures >= self.failure_threshold
            ):
                self._opened_at = self.clock()
                self._transition(self.OPEN)

    def _transition(self, state: str) -> None:
        # Caller holds the lock; the callback must therefore be cheap and
        # never call back into the breaker.
        self._state = state
        if self.on_transition is not None:
            try:
                self.on_transition(state)
            except Exception:
                pass
