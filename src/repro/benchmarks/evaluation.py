"""Experiment runners regenerating the paper's tables.

Each ``table*`` function returns the rows of the corresponding table in the
paper's evaluation section; the pytest-benchmark files under ``benchmarks/``
and the EXPERIMENTS.md generator both call into here.

* Table 1 — benchmark statistics (AST sizes, transformer sizes)
* Table 2 — bounded equivalence checking (VeriEQL-substitute backend)
* Table 3 — full verification (Mediator-substitute backend)
* Table 4 — execution time of transpiled vs manual SQL (SQLite substrate)
* Table 5 — OpenCypherTranspiler baseline comparison
* §6.3    — transpilation latency statistics
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.baselines import BaselineStatus, transpile_baseline
from repro.benchmarks.spec import Benchmark
from repro.benchmarks.suite import CATEGORY_COUNTS, benchmarks_by_category
from repro.checkers.base import Verdict
from repro.checkers.bounded import BoundedChecker
from repro.checkers.deductive import DeductiveChecker
from repro.checkers.generation import InstanceGenerator, collect_constant_seeds
from repro.core.counterexample import lift_counterexample
from repro.core.equivalence import check_equivalence
from repro.core.sdt import infer_sdt
from repro.core.transpile import transpile
from repro.cypher.analysis import ast_size as cypher_size
from repro.cypher.semantics import evaluate_query as evaluate_cypher
from repro.execution.datagen import MockDataGenerator
from repro.backends.registry import load_backend
from repro.relational.instance import tables_equivalent
from repro.sql.analysis import ast_size as sql_size
from repro.sql.pretty import to_sql_text
from repro.sql.semantics import evaluate_query as evaluate_sql
from repro.transformer.residual import residual_transformer

CATEGORIES = list(CATEGORY_COUNTS)


# ---------------------------------------------------------------------------
# Table 1 — benchmark statistics
# ---------------------------------------------------------------------------


@dataclass
class Table1Row:
    dataset: str
    count: int
    sql_min: int
    sql_max: int
    sql_avg: float
    sql_med: float
    cypher_min: int
    cypher_max: int
    cypher_avg: float
    cypher_med: float
    tf_min: int
    tf_max: int
    tf_avg: float
    tf_med: float

    def format(self) -> str:
        return (
            f"{self.dataset:15} {self.count:4}  "
            f"SQL[{self.sql_min}-{self.sql_max} avg {self.sql_avg:.1f} med {self.sql_med:.0f}]  "
            f"Cypher[{self.cypher_min}-{self.cypher_max} avg {self.cypher_avg:.1f} "
            f"med {self.cypher_med:.0f}]  "
            f"Transformer[{self.tf_min}-{self.tf_max} avg {self.tf_avg:.1f} med {self.tf_med:.0f}]"
        )


def table1_statistics() -> list[Table1Row]:
    """Per-category AST-size statistics (paper Table 1)."""
    rows = []
    all_sql: list[int] = []
    all_cypher: list[int] = []
    all_tf: list[int] = []
    for category, benchmarks in benchmarks_by_category().items():
        sql_sizes = [sql_size(b.sql_query) for b in benchmarks]
        cypher_sizes = [cypher_size(b.cypher_query) for b in benchmarks]
        tf_sizes = [b.transformer_size for b in benchmarks]
        all_sql.extend(sql_sizes)
        all_cypher.extend(cypher_sizes)
        all_tf.extend(tf_sizes)
        rows.append(_table1_row(category, sql_sizes, cypher_sizes, tf_sizes))
    rows.append(_table1_row("Total", all_sql, all_cypher, all_tf))
    return rows


def _table1_row(name: str, sql, cypher, tf) -> Table1Row:
    return Table1Row(
        name,
        len(sql),
        min(sql),
        max(sql),
        statistics.mean(sql),
        statistics.median(sql),
        min(cypher),
        max(cypher),
        statistics.mean(cypher),
        statistics.median(cypher),
        min(tf),
        max(tf),
        statistics.mean(tf),
        statistics.median(tf),
    )


# ---------------------------------------------------------------------------
# Table 2 — bounded equivalence checking
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    dataset: str
    count: int
    non_equivalent: int
    avg_checked_bound: float
    avg_refutation_seconds: float | None

    def format(self) -> str:
        refute = (
            f"{self.avg_refutation_seconds:.2f}s"
            if self.avg_refutation_seconds is not None
            else "N/A"
        )
        return (
            f"{self.dataset:15} {self.count:4}  non-equiv {self.non_equivalent:3}  "
            f"avg bound {self.avg_checked_bound:5.1f}  avg refutation {refute}"
        )


def table2_bounded(
    max_bound: int = 4,
    samples_per_bound: int = 250,
    time_budget_seconds: float = 6.0,
    seed: int = 11,
) -> list[Table2Row]:
    """Bounded equivalence checking over all 410 benchmarks (paper Table 2)."""
    checker = BoundedChecker(
        max_bound=max_bound,
        samples_per_bound=samples_per_bound,
        time_budget_seconds=time_budget_seconds,
        seed=seed,
    )
    rows = []
    total = Table2Row("Total", 0, 0, 0.0, None)
    total_bounds: list[int] = []
    total_refutes: list[float] = []
    for category, benchmarks in benchmarks_by_category().items():
        non_equivalent = 0
        bounds: list[int] = []
        refute_times: list[float] = []
        for benchmark in benchmarks:
            result = check_equivalence(
                benchmark.graph_schema,
                benchmark.cypher_query,
                benchmark.relational_schema,
                benchmark.sql_query,
                benchmark.transformer,
                checker,
            )
            if result.verdict is Verdict.NOT_EQUIVALENT:
                non_equivalent += 1
                refute_times.append(result.outcome.elapsed_seconds)
            else:
                bounds.append(result.outcome.checked_bound)
        rows.append(
            Table2Row(
                category,
                len(benchmarks),
                non_equivalent,
                statistics.mean(bounds) if bounds else 0.0,
                statistics.mean(refute_times) if refute_times else None,
            )
        )
        total.count += len(benchmarks)
        total.non_equivalent += non_equivalent
        total_bounds.extend(bounds)
        total_refutes.extend(refute_times)
    total.avg_checked_bound = statistics.mean(total_bounds) if total_bounds else 0.0
    total.avg_refutation_seconds = (
        statistics.mean(total_refutes) if total_refutes else None
    )
    rows.append(total)
    return rows


# ---------------------------------------------------------------------------
# Table 3 — full verification
# ---------------------------------------------------------------------------


@dataclass
class Table3Row:
    dataset: str
    count: int
    supported: int
    verified: int
    unknown: int
    avg_seconds: float | None

    def format(self) -> str:
        avg = f"{self.avg_seconds:.2f}s" if self.avg_seconds is not None else "N/A"
        return (
            f"{self.dataset:15} {self.count:4}  supported {self.supported:3}  "
            f"verified {self.verified:3}  unknown {self.unknown:3}  avg {avg}"
        )


def table3_deductive(time_budget_seconds: float = 10.0) -> list[Table3Row]:
    """Full verification with the deductive backend (paper Table 3)."""
    checker = DeductiveChecker(time_budget_seconds=time_budget_seconds)
    rows = []
    total = Table3Row("Total", 0, 0, 0, 0, None)
    total_times: list[float] = []
    for category, benchmarks in benchmarks_by_category().items():
        supported = verified = unknown = 0
        times: list[float] = []
        for benchmark in benchmarks:
            result = check_equivalence(
                benchmark.graph_schema,
                benchmark.cypher_query,
                benchmark.relational_schema,
                benchmark.sql_query,
                benchmark.transformer,
                checker,
            )
            if result.verdict is Verdict.UNSUPPORTED:
                continue
            supported += 1
            times.append(result.outcome.elapsed_seconds)
            if result.verdict is Verdict.EQUIVALENT:
                verified += 1
            else:
                unknown += 1
        rows.append(
            Table3Row(
                category,
                len(benchmarks),
                supported,
                verified,
                unknown,
                statistics.mean(times) if times else None,
            )
        )
        total.count += len(benchmarks)
        total.supported += supported
        total.verified += verified
        total.unknown += unknown
        total_times.extend(times)
    total.avg_seconds = statistics.mean(total_times) if total_times else None
    rows.append(total)
    return rows


# ---------------------------------------------------------------------------
# Transpilation latency (Section 6.3, first experiment)
# ---------------------------------------------------------------------------


@dataclass
class TranspilationStats:
    count: int
    avg_ms: float
    median_ms: float
    max_ms: float

    def format(self) -> str:
        return (
            f"transpiled {self.count} queries: avg {self.avg_ms:.2f} ms, "
            f"median {self.median_ms:.2f} ms, max {self.max_ms:.2f} ms"
        )


def transpilation_speed() -> TranspilationStats:
    """Per-query transpilation latency over all 410 benchmarks."""
    samples: list[float] = []
    for benchmarks in benchmarks_by_category().values():
        for benchmark in benchmarks:
            sdt = infer_sdt(benchmark.graph_schema)
            start = time.perf_counter()
            transpile(benchmark.cypher_query, benchmark.graph_schema, sdt)
            samples.append((time.perf_counter() - start) * 1000.0)
    return TranspilationStats(
        len(samples),
        statistics.mean(samples),
        statistics.median(samples),
        max(samples),
    )


# ---------------------------------------------------------------------------
# Table 4 — execution time of transpiled vs manual SQL
# ---------------------------------------------------------------------------


@dataclass
class Table4Row:
    dataset: str
    count: int
    avg_transpiled_seconds: float
    avg_manual_seconds: float
    transpiled_faster: float  # fraction
    slower_within_1_1: float
    slower_within_1_2: float
    slower_beyond_1_2: float

    def format(self) -> str:
        return (
            f"{self.dataset:15} {self.count:3}  "
            f"avg exec transpiled {self.avg_transpiled_seconds * 1000:.1f} ms / "
            f"manual {self.avg_manual_seconds * 1000:.1f} ms  "
            f"faster {self.transpiled_faster:.1%}  "
            f"(1x,1.1x] {self.slower_within_1_1:.1%}  "
            f"(1.1x,1.2x] {self.slower_within_1_2:.1%}  "
            f"(1.2x,inf) {self.slower_beyond_1_2:.1%}"
        )


def table4_execution(
    rows_per_table: int = 2000, repeats: int = 3
) -> list[Table4Row]:
    """Execution-time comparison on mock instances (paper Table 4).

    The paper uses the 45 StackOverflow + Tutorial + Academic benchmarks at
    10k-1M rows; the default scale here is smaller so the harness stays
    laptop-friendly — pass a larger ``rows_per_table`` to push toward the
    paper's scale.
    """
    rows = []
    all_ratios: list[float] = []
    all_transpiled: list[float] = []
    all_manual: list[float] = []
    for category in ("StackOverflow", "Tutorial", "Academic"):
        ratios: list[float] = []
        transpiled_times: list[float] = []
        manual_times: list[float] = []
        for benchmark in benchmarks_by_category()[category]:
            timing = _execute_pair(benchmark, rows_per_table, repeats)
            if timing is None:
                continue
            transpiled_seconds, manual_seconds = timing
            transpiled_times.append(transpiled_seconds)
            manual_times.append(manual_seconds)
            ratios.append(transpiled_seconds / max(manual_seconds, 1e-9))
        rows.append(_table4_row(category, ratios, transpiled_times, manual_times))
        all_ratios.extend(ratios)
        all_transpiled.extend(transpiled_times)
        all_manual.extend(manual_times)
    rows.append(_table4_row("Total", all_ratios, all_transpiled, all_manual))
    return rows


def _table4_row(name, ratios, transpiled_times, manual_times) -> Table4Row:
    count = len(ratios)
    faster = sum(1 for r in ratios if r <= 1.0)
    within_1_1 = sum(1 for r in ratios if 1.0 < r <= 1.1)
    within_1_2 = sum(1 for r in ratios if 1.1 < r <= 1.2)
    beyond = sum(1 for r in ratios if r > 1.2)
    return Table4Row(
        name,
        count,
        statistics.mean(transpiled_times) if transpiled_times else 0.0,
        statistics.mean(manual_times) if manual_times else 0.0,
        faster / count if count else 0.0,
        within_1_1 / count if count else 0.0,
        within_1_2 / count if count else 0.0,
        beyond / count if count else 0.0,
    )


def _execute_pair(
    benchmark: Benchmark, rows_per_table: int, repeats: int
) -> tuple[float, float] | None:
    """Median SQLite times for (transpiled on induced, manual on target)."""
    sdt = infer_sdt(benchmark.graph_schema)
    transpiled = transpile(benchmark.cypher_query, benchmark.graph_schema, sdt)
    residual = residual_transformer(benchmark.transformer, sdt.transformer)
    generator = MockDataGenerator(benchmark.graph_schema, sdt)
    induced, target = generator.paired_instances(
        rows_per_table, residual, benchmark.relational_schema
    )
    transpiled_text = to_sql_text(transpiled, sdt.schema)
    # load_backend batches the inserts and indexes declared PK/FK columns,
    # so both sides run over comparably indexed stores and every connection
    # is released between benchmark iterations.
    with load_backend("sqlite-memory", induced) as induced_backend:
        transpiled_seconds = induced_backend.time(transpiled_text, repeats)
    with load_backend("sqlite-memory", target) as target_backend:
        manual_seconds = target_backend.time(benchmark.sql_text, repeats)
    return transpiled_seconds, manual_seconds


# ---------------------------------------------------------------------------
# Table 5 — OpenCypherTranspiler baseline
# ---------------------------------------------------------------------------


@dataclass
class Table5Row:
    dataset: str
    count: int
    unsupported: int
    syntax_errors: int
    incorrect: int
    correct: int

    def format(self) -> str:
        return (
            f"{self.dataset:15} {self.count:4}  unsupported {self.unsupported:3}  "
            f"synerr {self.syntax_errors:2}  incorrect {self.incorrect:2}  "
            f"correct {self.correct:3}"
        )


def table5_baseline(differential_samples: int = 60, seed: int = 5) -> list[Table5Row]:
    """OpenCypherTranspiler behaviour over all 410 Cypher queries (Table 5)."""
    rows = []
    total = Table5Row("Total", 0, 0, 0, 0, 0)
    for category, benchmarks in benchmarks_by_category().items():
        row = Table5Row(category, len(benchmarks), 0, 0, 0, 0)
        for benchmark in benchmarks:
            verdict = classify_baseline(benchmark, differential_samples, seed)
            if verdict == "unsupported":
                row.unsupported += 1
            elif verdict == "syntax-error":
                row.syntax_errors += 1
            elif verdict == "incorrect":
                row.incorrect += 1
            else:
                row.correct += 1
        rows.append(row)
        total.count += row.count
        total.unsupported += row.unsupported
        total.syntax_errors += row.syntax_errors
        total.incorrect += row.incorrect
        total.correct += row.correct
    rows.append(total)
    return rows


def classify_baseline(benchmark: Benchmark, samples: int, seed: int) -> str:
    """unsupported / syntax-error / incorrect / correct for one query."""
    sdt = infer_sdt(benchmark.graph_schema)
    result = transpile_baseline(benchmark.cypher_query, benchmark.graph_schema, sdt)
    if result.status is BaselineStatus.UNSUPPORTED:
        return "unsupported"
    if result.status is BaselineStatus.SYNTAX_ERROR:
        return "syntax-error"
    assert result.query is not None
    seeds = collect_constant_seeds([result.query], [])
    generator = InstanceGenerator(sdt.schema, seeds=seeds)
    generator.rng.seed(seed)
    from repro.common.errors import GraphitiError

    for _ in range(samples):
        induced = generator.random_instance(3)
        if induced.constraint_violation() is not None:
            continue
        try:
            graph = lift_counterexample(benchmark.graph_schema, sdt, induced)
            expected = evaluate_cypher(benchmark.cypher_query, graph)
            actual = evaluate_sql(result.query, induced)
        except GraphitiError:
            continue
        if not tables_equivalent(expected, actual):
            return "incorrect"
    return "correct"
