"""The 410-benchmark evaluation suite (paper Section 6, Table 1).

The paper's benchmarks come from StackOverflow posts, tutorials, academic
papers, the VeriEQL and Mediator evaluation sets, and GPT-generated
translations.  Those artefacts are not redistributable, so this package
regenerates a suite with the same *per-category counts* (12 / 26 / 7 / 60 /
100 / 205), the same planted-bug distribution (34 non-equivalent pairs: 3
"wild" + 4 manual + 27 GPT), and the paper's own published examples seeded
as curated benchmarks (the Section-2 motivating example, the Neo4j-tutorial
bug, and the VeriEQL-category bug from Appendix D).
"""

from repro.benchmarks.spec import Benchmark, Universe
from repro.benchmarks.suite import benchmark_suite, benchmarks_by_category, CATEGORY_COUNTS

__all__ = [
    "Benchmark",
    "Universe",
    "benchmark_suite",
    "benchmarks_by_category",
    "CATEGORY_COUNTS",
]
