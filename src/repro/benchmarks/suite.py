"""Assembly of the 410-benchmark suite.

Category counts follow the paper's Table 1 exactly (12 StackOverflow, 26
Tutorial, 7 Academic, 60 VeriEQL, 100 Mediator, 205 GPT-Translate), the
planted non-equivalences follow Table 2 (1 + 1 + 1 + 4 + 0 + 27 = 34,
i.e. 3 "wild" + 4 manual + 27 GPT), the deductive-fragment membership
follows Table 3 (0/0/1/1/100/94 supported per category), and the baseline
behaviour profile follows Table 5.  The composition is deterministic:
every benchmark is generated from a per-index seeded RNG.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.benchmarks import templates as T
from repro.benchmarks.curated import curated_benchmarks
from repro.benchmarks.spec import Benchmark, Universe
from repro.benchmarks.universes import (
    COMPANY,
    COMPANY_MERGED,
    LIBRARY,
    MOVIES,
    SOCIAL,
    STORE,
    UNIVERSITY,
)

CATEGORY_COUNTS = {
    "StackOverflow": 12,
    "Tutorial": 26,
    "Academic": 7,
    "VeriEQL": 60,
    "Mediator": 100,
    "GPT-Translate": 205,
}

ALL = (COMPANY, COMPANY_MERGED, SOCIAL, STORE, MOVIES, UNIVERSITY, LIBRARY)
CHAINABLE = (SOCIAL, STORE, LIBRARY)
EDGE_TABLE = (COMPANY, SOCIAL, STORE, MOVIES, UNIVERSITY, LIBRARY)
NOT_MERGED = EDGE_TABLE


@dataclass(frozen=True)
class _Entry:
    """One recipe line: template × repetition over a universe pool."""

    template: Callable
    count: int
    universes: tuple[Universe, ...]
    kwargs: dict | None = None


_RECIPES: dict[str, list[_Entry]] = {
    "StackOverflow": [
        _Entry(T.t_scan_filter, 1, ALL),
        _Entry(T.t_agg_numeric, 1, ALL, {"function": "Sum"}),
        _Entry(T.t_optional, 1, CHAINABLE),
        _Entry(T.b_optional_as_inner, 1, CHAINABLE),
        _Entry(T.t_agg_count, 3, ALL),
        _Entry(T.t_exists, 2, NOT_MERGED),
        _Entry(T.t_orderby, 3, ALL),
    ],
    "Tutorial": [
        _Entry(T.t_two_hop, 1, CHAINABLE),
        _Entry(T.t_agg_numeric, 1, ALL, {"function": "Sum"}),
        _Entry(T.t_agg_numeric, 1, ALL, {"function": "Avg"}),
        _Entry(T.t_agg_numeric, 1, ALL, {"function": "Min"}),
        _Entry(T.t_agg_numeric, 1, ALL, {"function": "Max"}),
        _Entry(T.t_optional, 3, CHAINABLE),
        _Entry(T.t_arith_predicate, 2, ALL),
        _Entry(T.t_agg_count, 5, ALL),
        _Entry(T.t_exists, 4, NOT_MERGED),
        _Entry(T.t_orderby, 5, ALL),
    ],
    "Academic": [
        _Entry(T.t_agg_numeric, 1, ALL, {"function": "Avg"}),
        _Entry(T.t_agg_count, 2, ALL),
        _Entry(T.t_exists, 1, NOT_MERGED),
        _Entry(T.t_orderby, 1, ALL),
    ],
    "VeriEQL": [
        _Entry(T.b_wrong_group_key, 1, ALL),
        _Entry(T.b_count_star_vs_nullable, 1, CHAINABLE),
        _Entry(T.b_double_count, 1, EDGE_TABLE),
        _Entry(T.t_triple_pattern_in, 1, (MOVIES,)),
        _Entry(T.t_agg_numeric, 4, ALL, {"function": "Sum"}),
        _Entry(T.t_agg_numeric, 3, ALL, {"function": "Max"}),
        _Entry(T.t_optional, 4, CHAINABLE),
        _Entry(T.t_arith_predicate, 3, ALL),
        _Entry(T.t_agg_count, 14, ALL),
        _Entry(T.t_exists, 14, NOT_MERGED),
        _Entry(T.t_orderby, 13, ALL),
    ],
    "Mediator": [
        _Entry(T.t_multimatch, 27, ALL),
        _Entry(T.t_with_rename, 25, ALL),
        _Entry(T.t_union, 13, ALL),
        _Entry(T.t_union, 12, ALL, {"bag": True}),
        _Entry(T.t_multimatch_unknown, 12, ALL),
        _Entry(T.t_with_unknown, 11, ALL),
    ],
    "GPT-Translate": [
        _Entry(T.t_scan_filter, 20, ALL),
        _Entry(T.t_two_hop, 15, CHAINABLE),
        _Entry(T.t_distinct, 10, ALL),
        _Entry(T.t_head_arith, 10, ALL),
        _Entry(T.t_union, 9, ALL),
        _Entry(T.t_multimatch, 9, ALL),
        _Entry(T.t_implied_conjunct, 10, ALL),
        _Entry(T.t_head_identity_arith, 9, ALL),
        _Entry(T.b_wrong_constant, 1, ALL),
        _Entry(T.b_reversed_follow, 1, (SOCIAL,)),
        _Entry(T.b_optional_as_inner, 7, CHAINABLE),
        _Entry(T.b_double_count, 6, EDGE_TABLE),
        _Entry(T.b_wrong_group_key, 4, ALL),
        _Entry(T.b_count_star_vs_nullable, 4, CHAINABLE),
        _Entry(T.b_orderby_direction, 4, ALL),
        _Entry(T.t_triple_pattern_in, 1, (SOCIAL,)),
        _Entry(T.t_optional_into, 2, NOT_MERGED),
        _Entry(T.t_agg_count, 26, ALL),
        _Entry(T.t_exists, 25, NOT_MERGED),
        _Entry(T.t_orderby, 25, ALL),
        _Entry(T.t_agg_numeric, 4, ALL, {"function": "Avg"}),
        _Entry(T.t_optional, 3, CHAINABLE),
    ],
}


@lru_cache(maxsize=1)
def benchmark_suite() -> tuple[Benchmark, ...]:
    """The full, deterministic 410-benchmark suite."""
    benchmarks: list[Benchmark] = list(curated_benchmarks())
    for category, entries in _RECIPES.items():
        for entry_index, entry in enumerate(entries, start=1):
            for repetition in range(entry.count):
                seed_material = (
                    f"{category}:{entry_index}:{entry.template.__name__}:{repetition}"
                )
                rng = random.Random(zlib.crc32(seed_material.encode()))
                universe = entry.universes[repetition % len(entry.universes)]
                kwargs = entry.kwargs or {}
                built = entry.template(universe, rng, **kwargs)
                benchmarks.append(
                    Benchmark(
                        id=(
                            f"{category.lower()}/e{entry_index:02d}-"
                            f"{entry.template.__name__}-{repetition + 1}"
                        ),
                        category=category,
                        universe=universe,
                        cypher_text=built.cypher_text,
                        sql_text=built.sql_text,
                        expected_equivalent=built.expected_equivalent,
                        bug_class=built.bug_class,
                        features=frozenset(built.features),
                        notes=built.notes,
                    )
                )
    ordered = sorted(benchmarks, key=lambda b: (list(CATEGORY_COUNTS).index(b.category), b.id))
    counts: dict[str, int] = {}
    for benchmark in ordered:
        counts[benchmark.category] = counts.get(benchmark.category, 0) + 1
    assert counts == CATEGORY_COUNTS, f"suite miscounted: {counts}"
    return tuple(ordered)


def benchmarks_by_category() -> dict[str, list[Benchmark]]:
    grouped: dict[str, list[Benchmark]] = {name: [] for name in CATEGORY_COUNTS}
    for benchmark in benchmark_suite():
        grouped[benchmark.category].append(benchmark)
    return grouped
