"""Benchmark universes: domain schemas with their relational mappings.

Six generated-benchmark domains plus the curated SemMedDB domain from the
paper's motivating example.  Within each graph schema property keys are
globally unique (the paper's assumption); target relational schemas vary
between *edge-table* designs (an edge type becomes its own table) and
*merged* designs (an edge type becomes a foreign-key column), exercising
non-trivial residual transformers.
"""

from __future__ import annotations

from repro.benchmarks.spec import EdgeTableMap, MergedEdgeMap, NodeMap, Universe
from repro.graph.schema import EdgeType, GraphSchema, NodeType
from repro.relational.schema import (
    ForeignKey,
    IntegrityConstraints,
    NotNull,
    PrimaryKey,
    Relation,
    RelationalSchema,
)


def _schema(relations, pks, fks=(), nns=()):
    return RelationalSchema.of(
        relations,
        IntegrityConstraints(
            tuple(PrimaryKey(r, a) for r, a in pks),
            tuple(ForeignKey(r, a, r2, a2) for r, a, r2, a2 in fks),
            tuple(NotNull(r, a) for r, a in nns),
        ),
    )


# ---------------------------------------------------------------------------
# company — EMP/DEPT with an edge table
# ---------------------------------------------------------------------------

COMPANY = Universe(
    name="company",
    graph_schema=GraphSchema.of(
        [
            NodeType("EMP", ("eid", "ename", "salary")),
            NodeType("DEPT", ("dno", "dname", "budget")),
        ],
        [EdgeType("WORK_AT", "EMP", "DEPT", ("wid",))],
    ),
    relational_schema=_schema(
        [
            Relation("emp", ("emp_id", "emp_name", "emp_salary")),
            Relation("dept", ("dept_no", "dept_name", "dept_budget")),
            Relation("works", ("w_id", "w_emp", "w_dept")),
        ],
        pks=[("emp", "emp_id"), ("dept", "dept_no"), ("works", "w_id")],
        fks=[
            ("works", "w_emp", "emp", "emp_id"),
            ("works", "w_dept", "dept", "dept_no"),
        ],
        nns=[("works", "w_emp"), ("works", "w_dept")],
    ),
    transformer_text="""
        EMP(eid, ename, salary) -> emp(eid, ename, salary)
        DEPT(dno, dname, budget) -> dept(dno, dname, budget)
        WORK_AT(wid, src, tgt) -> works(wid, src, tgt)
    """,
    nodes={
        "EMP": NodeMap("EMP", "emp", {"eid": "emp_id", "ename": "emp_name", "salary": "emp_salary"}),
        "DEPT": NodeMap("DEPT", "dept", {"dno": "dept_no", "dname": "dept_name", "budget": "dept_budget"}),
    },
    edges={
        "WORK_AT": EdgeTableMap("WORK_AT", "works", {"wid": "w_id"}, "w_emp", "w_dept"),
    },
)


# ---------------------------------------------------------------------------
# company_merged — same graph schema, edge folded into emp.deptno
# ---------------------------------------------------------------------------

COMPANY_MERGED = Universe(
    name="company_merged",
    graph_schema=GraphSchema.of(
        [
            NodeType("WORKER", ("woid", "woname", "wosalary")),
            NodeType("UNIT", ("uno", "uname_", "ubudget")),
        ],
        [EdgeType("BELONGS_TO", "WORKER", "UNIT", ("bid",))],
    ),
    relational_schema=_schema(
        [
            # Keyed by the *edge* id so parallel BELONGS_TO edges keep their
            # multiplicity (the transformer derives a set of facts; keying on
            # worker_id would silently collapse duplicates).
            Relation(
                "worker",
                ("worker_rec", "worker_id", "worker_name", "worker_salary", "worker_unit"),
            ),
            Relation("unit", ("unit_no", "unit_name", "unit_budget")),
        ],
        pks=[("worker", "worker_rec"), ("unit", "unit_no")],
        fks=[("worker", "worker_unit", "unit", "unit_no")],
        nns=[("worker", "worker_unit")],
    ),
    transformer_text="""
        WORKER(id, name, sal), BELONGS_TO(bid, id, uno) -> worker(bid, id, name, sal, uno)
        UNIT(uno, uname, budget) -> unit(uno, uname, budget)
    """,
    nodes={
        "WORKER": NodeMap(
            "WORKER",
            "worker",
            {"woid": "worker_id", "woname": "worker_name", "wosalary": "worker_salary"},
        ),
        "UNIT": NodeMap(
            "UNIT", "unit", {"uno": "unit_no", "uname_": "unit_name", "ubudget": "unit_budget"}
        ),
    },
    edges={"BELONGS_TO": MergedEdgeMap("BELONGS_TO", "source", "worker_unit")},
)


# ---------------------------------------------------------------------------
# social — USER/POST with FOLLOWS (self-loop), WROTE, LIKES edge tables
# ---------------------------------------------------------------------------

SOCIAL = Universe(
    name="social",
    graph_schema=GraphSchema.of(
        [
            NodeType("USER", ("uid", "uname", "age")),
            NodeType("POST", ("pid", "title", "score")),
        ],
        [
            EdgeType("FOLLOWS", "USER", "USER", ("fid",)),
            EdgeType("WROTE", "USER", "POST", ("wrid",)),
            EdgeType("LIKES", "USER", "POST", ("lkid",)),
        ],
    ),
    relational_schema=_schema(
        [
            Relation("users", ("u_id", "u_name", "u_age")),
            Relation("posts", ("p_id", "p_title", "p_score")),
            Relation("follows", ("f_id", "f_src", "f_dst")),
            Relation("wrote", ("wr_id", "wr_user", "wr_post")),
            Relation("likes", ("lk_id", "lk_user", "lk_post")),
        ],
        pks=[
            ("users", "u_id"),
            ("posts", "p_id"),
            ("follows", "f_id"),
            ("wrote", "wr_id"),
            ("likes", "lk_id"),
        ],
        fks=[
            ("follows", "f_src", "users", "u_id"),
            ("follows", "f_dst", "users", "u_id"),
            ("wrote", "wr_user", "users", "u_id"),
            ("wrote", "wr_post", "posts", "p_id"),
            ("likes", "lk_user", "users", "u_id"),
            ("likes", "lk_post", "posts", "p_id"),
        ],
        nns=[
            ("follows", "f_src"),
            ("follows", "f_dst"),
            ("wrote", "wr_user"),
            ("wrote", "wr_post"),
            ("likes", "lk_user"),
            ("likes", "lk_post"),
        ],
    ),
    transformer_text="""
        USER(uid, uname, age) -> users(uid, uname, age)
        POST(pid, title, score) -> posts(pid, title, score)
        FOLLOWS(fid, src, dst) -> follows(fid, src, dst)
        WROTE(wrid, src, dst) -> wrote(wrid, src, dst)
        LIKES(lkid, src, dst) -> likes(lkid, src, dst)
    """,
    nodes={
        "USER": NodeMap("USER", "users", {"uid": "u_id", "uname": "u_name", "age": "u_age"}),
        "POST": NodeMap("POST", "posts", {"pid": "p_id", "title": "p_title", "score": "p_score"}),
    },
    edges={
        "FOLLOWS": EdgeTableMap("FOLLOWS", "follows", {"fid": "f_id"}, "f_src", "f_dst"),
        "WROTE": EdgeTableMap("WROTE", "wrote", {"wrid": "wr_id"}, "wr_user", "wr_post"),
        "LIKES": EdgeTableMap("LIKES", "likes", {"lkid": "lk_id"}, "lk_user", "lk_post"),
    },
)


# ---------------------------------------------------------------------------
# store — CUSTOMER → ORDERS → PRODUCT (chainable), mixed design
# ---------------------------------------------------------------------------

STORE = Universe(
    name="store",
    graph_schema=GraphSchema.of(
        [
            NodeType("CUSTOMER", ("custid", "custname", "region")),
            NodeType("ORDER_", ("ordid", "total", "year")),
            NodeType("PRODUCT", ("prodid", "prodname", "price")),
        ],
        [
            EdgeType("PLACED", "CUSTOMER", "ORDER_", ("plid",)),
            EdgeType("CONTAINS", "ORDER_", "PRODUCT", ("ctid", "qty")),
        ],
    ),
    relational_schema=_schema(
        [
            Relation("customers", ("c_id", "c_name", "c_region")),
            Relation("orders", ("o_id", "o_total", "o_year")),
            Relation("products", ("pr_id", "pr_name", "pr_price")),
            Relation("placements", ("pl_id", "pl_cust", "pl_order")),
            Relation("order_items", ("oi_id", "oi_qty", "oi_order", "oi_product")),
        ],
        pks=[
            ("customers", "c_id"),
            ("orders", "o_id"),
            ("products", "pr_id"),
            ("placements", "pl_id"),
            ("order_items", "oi_id"),
        ],
        fks=[
            ("placements", "pl_cust", "customers", "c_id"),
            ("placements", "pl_order", "orders", "o_id"),
            ("order_items", "oi_order", "orders", "o_id"),
            ("order_items", "oi_product", "products", "pr_id"),
        ],
        nns=[
            ("placements", "pl_cust"),
            ("placements", "pl_order"),
            ("order_items", "oi_order"),
            ("order_items", "oi_product"),
        ],
    ),
    transformer_text="""
        CUSTOMER(cid, cname, region) -> customers(cid, cname, region)
        ORDER_(oid, total, year) -> orders(oid, total, year)
        PLACED(plid, cid, oid) -> placements(plid, cid, oid)
        PRODUCT(prid, prname, price) -> products(prid, prname, price)
        CONTAINS(ctid, qty, oid, prid) -> order_items(ctid, qty, oid, prid)
    """,
    nodes={
        "CUSTOMER": NodeMap(
            "CUSTOMER", "customers", {"custid": "c_id", "custname": "c_name", "region": "c_region"}
        ),
        "ORDER_": NodeMap(
            "ORDER_", "orders", {"ordid": "o_id", "total": "o_total", "year": "o_year"}
        ),
        "PRODUCT": NodeMap(
            "PRODUCT", "products", {"prodid": "pr_id", "prodname": "pr_name", "price": "pr_price"}
        ),
    },
    edges={
        "PLACED": EdgeTableMap("PLACED", "placements", {"plid": "pl_id"}, "pl_cust", "pl_order"),
        "CONTAINS": EdgeTableMap(
            "CONTAINS", "order_items", {"ctid": "oi_id", "qty": "oi_qty"}, "oi_order", "oi_product"
        ),
    },
)


# ---------------------------------------------------------------------------
# movies — ACTOR/MOVIE/DIRECTOR with edge properties
# ---------------------------------------------------------------------------

MOVIES = Universe(
    name="movies",
    graph_schema=GraphSchema.of(
        [
            NodeType("ACTOR", ("aid", "aname", "awards")),
            NodeType("MOVIE", ("mid", "mtitle", "myear")),
            NodeType("DIRECTOR", ("did", "dname_", "oscars")),
        ],
        [
            EdgeType("ACTS_IN", "ACTOR", "MOVIE", ("acid", "fee")),
            EdgeType("DIRECTS", "DIRECTOR", "MOVIE", ("dirid",)),
        ],
    ),
    relational_schema=_schema(
        [
            Relation("actors", ("a_id", "a_name", "a_awards")),
            Relation("movies", ("m_id", "m_title", "m_year")),
            Relation("directors", ("d_id", "d_name", "d_oscars")),
            Relation("casting", ("cast_id", "cast_fee", "cast_actor", "cast_movie")),
            Relation("directing", ("dir_id", "dir_director", "dir_movie")),
        ],
        pks=[
            ("actors", "a_id"),
            ("movies", "m_id"),
            ("directors", "d_id"),
            ("casting", "cast_id"),
            ("directing", "dir_id"),
        ],
        fks=[
            ("casting", "cast_actor", "actors", "a_id"),
            ("casting", "cast_movie", "movies", "m_id"),
            ("directing", "dir_director", "directors", "d_id"),
            ("directing", "dir_movie", "movies", "m_id"),
        ],
        nns=[
            ("casting", "cast_actor"),
            ("casting", "cast_movie"),
            ("directing", "dir_director"),
            ("directing", "dir_movie"),
        ],
    ),
    transformer_text="""
        ACTOR(aid, aname, awards) -> actors(aid, aname, awards)
        MOVIE(mid, mtitle, myear) -> movies(mid, mtitle, myear)
        DIRECTOR(did, dname, oscars) -> directors(did, dname, oscars)
        ACTS_IN(acid, fee, src, dst) -> casting(acid, fee, src, dst)
        DIRECTS(dirid, src, dst) -> directing(dirid, src, dst)
    """,
    nodes={
        "ACTOR": NodeMap("ACTOR", "actors", {"aid": "a_id", "aname": "a_name", "awards": "a_awards"}),
        "MOVIE": NodeMap("MOVIE", "movies", {"mid": "m_id", "mtitle": "m_title", "myear": "m_year"}),
        "DIRECTOR": NodeMap(
            "DIRECTOR", "directors", {"did": "d_id", "dname_": "d_name", "oscars": "d_oscars"}
        ),
    },
    edges={
        "ACTS_IN": EdgeTableMap(
            "ACTS_IN", "casting", {"acid": "cast_id", "fee": "cast_fee"}, "cast_actor", "cast_movie"
        ),
        "DIRECTS": EdgeTableMap(
            "DIRECTS", "directing", {"dirid": "dir_id"}, "dir_director", "dir_movie"
        ),
    },
)


# ---------------------------------------------------------------------------
# university — STUDENT/COURSE with a graded enrollment edge
# ---------------------------------------------------------------------------

UNIVERSITY = Universe(
    name="university",
    graph_schema=GraphSchema.of(
        [
            NodeType("STUDENT", ("stid", "stname", "gpa")),
            NodeType("COURSE", ("crsid", "crsname", "credits")),
        ],
        [EdgeType("ENROLLED", "STUDENT", "COURSE", ("enid", "grade"))],
    ),
    relational_schema=_schema(
        [
            Relation("students", ("s_id", "s_name", "s_gpa")),
            Relation("courses", ("crs_id", "crs_name", "crs_credits")),
            Relation("enrollment", ("e_id", "e_grade", "e_student", "e_course")),
        ],
        pks=[("students", "s_id"), ("courses", "crs_id"), ("enrollment", "e_id")],
        fks=[
            ("enrollment", "e_student", "students", "s_id"),
            ("enrollment", "e_course", "courses", "crs_id"),
        ],
        nns=[("enrollment", "e_student"), ("enrollment", "e_course")],
    ),
    transformer_text="""
        STUDENT(stid, stname, gpa) -> students(stid, stname, gpa)
        COURSE(crsid, crsname, credits) -> courses(crsid, crsname, credits)
        ENROLLED(enid, grade, src, dst) -> enrollment(enid, grade, src, dst)
    """,
    nodes={
        "STUDENT": NodeMap(
            "STUDENT", "students", {"stid": "s_id", "stname": "s_name", "gpa": "s_gpa"}
        ),
        "COURSE": NodeMap(
            "COURSE", "courses", {"crsid": "crs_id", "crsname": "crs_name", "credits": "crs_credits"}
        ),
    },
    edges={
        "ENROLLED": EdgeTableMap(
            "ENROLLED", "enrollment", {"enid": "e_id", "grade": "e_grade"}, "e_student", "e_course"
        ),
    },
)


# ---------------------------------------------------------------------------
# library — BOOK/READER/BRANCH, three-node chain via edge tables
# ---------------------------------------------------------------------------

LIBRARY = Universe(
    name="library",
    graph_schema=GraphSchema.of(
        [
            NodeType("READER", ("rdid", "rdname", "fines")),
            NodeType("BOOK", ("bkid", "bktitle", "pages")),
            NodeType("BRANCH", ("brid", "brname", "city")),
        ],
        [
            EdgeType("BORROWED", "READER", "BOOK", ("bwid", "weeks")),
            EdgeType("HELD_AT", "BOOK", "BRANCH", ("haid",)),
        ],
    ),
    relational_schema=_schema(
        [
            Relation("readers", ("rd_id", "rd_name", "rd_fines")),
            Relation("books", ("bk_id", "bk_title", "bk_pages")),
            Relation("branches", ("br_id", "br_name", "br_city")),
            Relation("loans", ("ln_id", "ln_weeks", "ln_reader", "ln_book")),
            Relation("holdings", ("h_id", "h_book", "h_branch")),
        ],
        pks=[
            ("readers", "rd_id"),
            ("books", "bk_id"),
            ("branches", "br_id"),
            ("loans", "ln_id"),
            ("holdings", "h_id"),
        ],
        fks=[
            ("loans", "ln_reader", "readers", "rd_id"),
            ("loans", "ln_book", "books", "bk_id"),
            ("holdings", "h_book", "books", "bk_id"),
            ("holdings", "h_branch", "branches", "br_id"),
        ],
        nns=[
            ("loans", "ln_reader"),
            ("loans", "ln_book"),
            ("holdings", "h_book"),
            ("holdings", "h_branch"),
        ],
    ),
    transformer_text="""
        READER(rdid, rdname, fines) -> readers(rdid, rdname, fines)
        BOOK(bkid, bktitle, pages) -> books(bkid, bktitle, pages)
        BRANCH(brid, brname, city) -> branches(brid, brname, city)
        BORROWED(bwid, weeks, src, dst) -> loans(bwid, weeks, src, dst)
        HELD_AT(haid, src, dst) -> holdings(haid, src, dst)
    """,
    nodes={
        "READER": NodeMap("READER", "readers", {"rdid": "rd_id", "rdname": "rd_name", "fines": "rd_fines"}),
        "BOOK": NodeMap("BOOK", "books", {"bkid": "bk_id", "bktitle": "bk_title", "pages": "bk_pages"}),
        "BRANCH": NodeMap("BRANCH", "branches", {"brid": "br_id", "brname": "br_name", "city": "br_city"}),
    },
    edges={
        "BORROWED": EdgeTableMap(
            "BORROWED", "loans", {"bwid": "ln_id", "weeks": "ln_weeks"}, "ln_reader", "ln_book"
        ),
        "HELD_AT": EdgeTableMap("HELD_AT", "holdings", {"haid": "h_id"}, "h_book", "h_branch"),
    },
)


#: Universes used by the generated benchmark families.
GENERATED_UNIVERSES: tuple[Universe, ...] = (
    COMPANY,
    COMPANY_MERGED,
    SOCIAL,
    STORE,
    MOVIES,
    UNIVERSITY,
    LIBRARY,
)
