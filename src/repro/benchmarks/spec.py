"""Benchmark and universe data structures.

A *universe* bundles a graph schema, a target relational schema, the
database transformer connecting them, and enough naming metadata to render
SQL text for a path through the graph (either via an edge table or via a
foreign-key column folded into the source node's table).

A *benchmark* is one (Cypher, SQL, transformer) triple with its ground
truth (equivalent or planted-bug class) and feature tags used by the
experiment harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.cypher import ast as cy
from repro.cypher.parser import parse_cypher
from repro.graph.schema import GraphSchema
from repro.relational.schema import RelationalSchema
from repro.sql import ast as sq
from repro.sql.parser import parse_sql
from repro.transformer.dsl import Transformer
from repro.transformer.parser import parse_transformer


@dataclass(frozen=True)
class NodeMap:
    """How a node label appears in the target relational schema."""

    label: str
    table: str
    columns: dict[str, str]  # property key → column name

    def column(self, key: str) -> str:
        return self.columns[key]


@dataclass(frozen=True)
class EdgeTableMap:
    """An edge label stored as its own table with SRC/TGT columns."""

    label: str
    table: str
    columns: dict[str, str]  # property key → column name
    src_column: str
    tgt_column: str


@dataclass(frozen=True)
class MergedEdgeMap:
    """An edge label folded into one endpoint's table as a FK column.

    ``fk_side`` names the endpoint whose table carries the column:
    ``"source"`` means the source node's table holds a FK to the target's
    key; ``"target"`` the reverse.  The carrying table only holds rows for
    nodes that *have* the edge (the transformer's join semantics), so
    generated queries always traverse the edge.
    """

    label: str
    fk_side: str  # "source" | "target"
    fk_column: str


@dataclass(frozen=True)
class Universe:
    """A reusable benchmark domain."""

    name: str
    graph_schema: GraphSchema
    relational_schema: RelationalSchema
    transformer_text: str
    nodes: dict[str, NodeMap]
    edges: dict[str, EdgeTableMap | MergedEdgeMap]

    def node(self, label: str) -> NodeMap:
        return self.nodes[label]

    def edge(self, label: str) -> EdgeTableMap | MergedEdgeMap:
        return self.edges[label]

    @cached_property
    def transformer(self) -> Transformer:
        return parse_transformer(self.transformer_text)


@dataclass
class Benchmark:
    """One evaluation benchmark."""

    id: str
    category: str
    universe: Universe
    cypher_text: str
    sql_text: str
    expected_equivalent: bool = True
    bug_class: str | None = None
    features: frozenset[str] = field(default_factory=frozenset)
    notes: str = ""

    @property
    def graph_schema(self) -> GraphSchema:
        return self.universe.graph_schema

    @property
    def relational_schema(self) -> RelationalSchema:
        return self.universe.relational_schema

    @property
    def transformer(self) -> Transformer:
        return self.universe.transformer

    @cached_property
    def cypher_query(self) -> cy.Query:
        return parse_cypher(self.cypher_text, self.graph_schema)

    @cached_property
    def sql_query(self) -> sq.Query:
        return parse_sql(self.sql_text)

    @property
    def transformer_size(self) -> int:
        return len(self.transformer)
