"""Parameterised benchmark templates.

Each template builds one (Cypher, SQL) pair over a universe, equivalent by
construction unless a *bug* is planted.  Templates tag their output with
feature strings the experiment harnesses read:

``agg``          aggregation (GROUP BY on the SQL side)
``opt``          OPTIONAL MATCH / outer join
``orderby``      ORDER BY
``exists``       EXISTS subpattern / IN subquery
``union``        UNION or UNION ALL
``distinct``     duplicate elimination
``multimatch``   several MATCH clauses (shared-variable join)
``with``         a WITH pipeline
``arith``        arithmetic in predicates
``headarith``    arithmetic in the RETURN list only
``inlist``       multi-value IN lists
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.benchmarks.spec import EdgeTableMap, MergedEdgeMap, NodeMap, Universe


@dataclass
class BuiltQuery:
    """A rendered benchmark body, pre-Benchmark packaging."""

    cypher_text: str
    sql_text: str
    features: set[str] = field(default_factory=set)
    expected_equivalent: bool = True
    bug_class: str | None = None
    notes: str = ""


# ---------------------------------------------------------------------------
# Path rendering machinery
# ---------------------------------------------------------------------------


@dataclass
class PathBuild:
    """Aliases and join conditions for one rendered path."""

    universe: Universe
    cypher_pattern: str
    node_vars: list[tuple[str, NodeMap]]  # (variable, node map) per node
    edge_vars: list[tuple[str, object]]  # (variable, edge map) per edge
    from_items: list[str]
    join_conditions: list[str]

    def node_ref(self, index: int, key: str) -> tuple[str, str]:
        """(cypher_ref, sql_ref) for property *key* of the index-th node."""
        variable, node_map = self.node_vars[index]
        return f"{variable}.{key}", f"{variable}.{node_map.column(key)}"

    def edge_ref(self, index: int, key: str) -> tuple[str, str]:
        variable, edge_map = self.edge_vars[index]
        assert isinstance(edge_map, EdgeTableMap), "merged edges carry no usable props"
        return f"{variable}.{key}", f"{variable}.{edge_map.columns[key]}"

    @property
    def sql_from(self) -> str:
        return ", ".join(self.from_items)

    def sql_where(self, extra: list[str]) -> str:
        conditions = self.join_conditions + extra
        if not conditions:
            return ""
        return " WHERE " + " AND ".join(conditions)


def build_path(universe: Universe, edge_labels: list[str], prefix: str = "") -> PathBuild:
    """Render a forward path through *edge_labels* (each src → tgt)."""
    schema = universe.graph_schema
    node_vars: list[tuple[str, NodeMap]] = []
    edge_vars: list[tuple[str, object]] = []
    from_items: list[str] = []
    join_conditions: list[str] = []
    chunks: list[str] = []

    first_edge = schema.edge_type(edge_labels[0])
    labels = [first_edge.source]
    for edge_label in edge_labels:
        labels.append(schema.edge_type(edge_label).target)

    for position, label in enumerate(labels):
        variable = f"{prefix}n{position}"
        node_map = universe.node(label)
        node_vars.append((variable, node_map))
        from_items.append(f"{node_map.table} AS {variable}")
        chunks.append(f"({variable}:{label})")
        if position < len(edge_labels):
            edge_label = edge_labels[position]
            edge_variable = f"{prefix}e{position}"
            edge_map = universe.edge(edge_label)
            edge_vars.append((edge_variable, edge_map))
            chunks.append(f"-[{edge_variable}:{edge_label}]->")

    # SQL side: join conditions per hop.
    for position, edge_label in enumerate(edge_labels):
        edge_type = schema.edge_type(edge_label)
        source_var, source_map = node_vars[position]
        target_var, target_map = node_vars[position + 1]
        source_pk = source_map.column(schema.node_type(edge_type.source).default_key)
        target_pk = target_map.column(schema.node_type(edge_type.target).default_key)
        edge_variable, edge_map = edge_vars[position]
        if isinstance(edge_map, EdgeTableMap):
            from_items.insert(
                from_items.index(f"{target_map.table} AS {target_var}"),
                f"{edge_map.table} AS {edge_variable}",
            )
            join_conditions.append(
                f"{edge_variable}.{edge_map.src_column} = {source_var}.{source_pk}"
            )
            join_conditions.append(
                f"{edge_variable}.{edge_map.tgt_column} = {target_var}.{target_pk}"
            )
        else:
            assert isinstance(edge_map, MergedEdgeMap)
            if edge_map.fk_side == "source":
                join_conditions.append(
                    f"{source_var}.{edge_map.fk_column} = {target_var}.{target_pk}"
                )
            else:
                join_conditions.append(
                    f"{target_var}.{edge_map.fk_column} = {source_var}.{source_pk}"
                )

    # Merged edges contribute no FROM item; drop their aliases from SQL only.
    return PathBuild(
        universe=universe,
        cypher_pattern="".join(chunks),
        node_vars=node_vars,
        edge_vars=edge_vars,
        from_items=from_items,
        join_conditions=join_conditions,
    )


def _single_edges(universe: Universe) -> list[str]:
    return [e.label for e in universe.graph_schema.edge_types]


def _chains(universe: Universe) -> list[list[str]]:
    """Two-hop edge chains available in the universe."""
    chains = []
    for first in universe.graph_schema.edge_types:
        for second in universe.graph_schema.edge_types:
            if first.target == second.source:
                chains.append([first.label, second.label])
    return chains


def complete_node_labels(universe: Universe) -> set[str]:
    """Labels whose target table holds *every* node of that label.

    A node table that carries a merged edge's foreign key only holds nodes
    that have the edge, so bare ``MATCH (n:L)`` queries over such labels are
    not translatable to a plain table scan.
    """
    partial: set[str] = set()
    for label, edge_map in universe.edges.items():
        if isinstance(edge_map, MergedEdgeMap):
            edge_type = universe.graph_schema.edge_type(label)
            carrier = (
                edge_type.source if edge_map.fk_side == "source" else edge_type.target
            )
            partial.add(carrier)
    return {n.label for n in universe.graph_schema.node_types} - partial


def _numeric_key(node_map: NodeMap, universe: Universe) -> str:
    """A non-key numeric property of the node (last declared key)."""
    node_type = universe.graph_schema.node_type(node_map.label)
    return node_type.keys[-1]


def _name_key(node_map: NodeMap, universe: Universe) -> str:
    node_type = universe.graph_schema.node_type(node_map.label)
    return node_type.keys[1]


# ---------------------------------------------------------------------------
# Equivalent templates
# ---------------------------------------------------------------------------


def t_scan_filter(universe: Universe, rng: random.Random) -> BuiltQuery:
    """One-hop path, constant filter, two-column projection (SPJ)."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    constant = rng.randint(1, 5)
    cy_filter, sql_filter = path.node_ref(0, _numeric_key(path.node_vars[0][1], universe))
    cy_a, sql_a = path.node_ref(0, _name_key(path.node_vars[0][1], universe))
    cy_b, sql_b = path.node_ref(1, _name_key(path.node_vars[1][1], universe))
    cypher = (
        f"MATCH {path.cypher_pattern} WHERE {cy_filter} = {constant} "
        f"RETURN {cy_a} AS left_out, {cy_b} AS right_out"
    )
    sql = (
        f"SELECT {sql_a} AS left_out, {sql_b} AS right_out FROM {path.sql_from}"
        f"{path.sql_where([f'{sql_filter} = {constant}'])}"
    )
    return BuiltQuery(cypher, sql, set())


def t_two_hop(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Two-hop chain with endpoint projection."""
    chains = _chains(universe)
    chain = rng.choice(chains)
    path = build_path(universe, chain)
    cy_a, sql_a = path.node_ref(0, _name_key(path.node_vars[0][1], universe))
    cy_c, sql_c = path.node_ref(2, _name_key(path.node_vars[2][1], universe))
    cypher = f"MATCH {path.cypher_pattern} RETURN {cy_a} AS first_out, {cy_c} AS last_out"
    sql = (
        f"SELECT {sql_a} AS first_out, {sql_c} AS last_out FROM {path.sql_from}"
        f"{path.sql_where([])}"
    )
    return BuiltQuery(cypher, sql, set())


def t_multimatch(
    universe: Universe, rng: random.Random, implied_conjunct: bool = False
) -> BuiltQuery:
    """Two MATCH clauses sharing a variable vs a SQL self-join on the PK.

    With ``implied_conjunct`` the SQL side carries a redundant (implied)
    filter conjunct, turning the pair into an equivalent-but-structurally-
    unprovable benchmark (deductive verdict: Unknown).
    """
    edge = rng.choice(_single_edges(universe))
    schema = universe.graph_schema
    edge_type = schema.edge_type(edge)
    path1 = build_path(universe, [edge], prefix="a")
    path2 = build_path(universe, [edge], prefix="b")
    # Share the *target* node: rename b-side target variable to a-side's.
    shared_var, shared_map = path1.node_vars[1]
    other_var, _ = path2.node_vars[1]
    pattern2 = path2.cypher_pattern.replace(f"({other_var}:", f"({shared_var}:")
    cy_a, sql_a = path1.node_ref(0, _name_key(path1.node_vars[0][1], universe))
    cy_b, sql_b = path2.node_ref(0, _name_key(path2.node_vars[0][1], universe))
    # Idiomatic SQL scans the shared table ONCE — the transpiled query joins
    # two copies on their primary key, so verifying this pair exercises the
    # deductive backend's PK self-join collapse.
    conditions = path1.join_conditions + [
        c.replace(f"{other_var}.", f"{shared_var}.") for c in path2.join_conditions
    ]
    from2 = [
        item for item in path2.from_items if not item.endswith(f" AS {other_var}")
    ]
    where_clause = ""
    features = {"multimatch"}
    notes = ""
    if implied_conjunct:
        cy_x, sql_x = path1.node_ref(0, _numeric_key(path1.node_vars[0][1], universe))
        low = rng.randint(2, 5)
        high = low + rng.randint(1, 4)
        where_clause = f" WHERE {cy_x} < {low}"
        conditions.append(f"{sql_x} < {low}")
        conditions.append(f"{sql_x} < {high}")
        features.add("unknown-by-design")
        notes = "equivalent via implied conjunct over a multi-MATCH pair"
    cypher = (
        f"MATCH {path1.cypher_pattern} MATCH {pattern2}{where_clause} "
        f"RETURN {cy_a} AS one_name, {cy_b} AS two_name"
    )
    sql = (
        f"SELECT {sql_a} AS one_name, {sql_b} AS two_name "
        f"FROM {path1.sql_from}, {', '.join(from2)} WHERE "
        + " AND ".join(conditions)
    )
    return BuiltQuery(cypher, sql, features, notes=notes)


def t_with_rename(universe: Universe, rng: random.Random) -> BuiltQuery:
    """A WITH pipeline that renames/keeps variables (featherweight WITH).

    For edge-table universes the hand-written SQL elides the source node's
    table: the edge's NOT-NULL foreign key guarantees exactly one matching
    source row, so the join is redundant — the idiom that exercises the
    deductive backend's FK lookup elimination.
    """
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    src_var = path.node_vars[0][0]
    tgt_var, tgt_map = path.node_vars[1]
    key = _name_key(tgt_map, universe)
    _, sql_ref = path.node_ref(1, key)
    cypher = (
        f"MATCH {path.cypher_pattern} WITH {tgt_var} AS kept "
        f"RETURN kept.{key} AS kept_out"
    )
    edge_map = universe.edge(edge)
    if isinstance(edge_map, EdgeTableMap):
        from_items = [
            item for item in path.from_items if not item.endswith(f" AS {src_var}")
        ]
        conditions = [
            c for c in path.join_conditions if not c.split(" = ")[1].startswith(f"{src_var}.")
        ]
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        sql = f"SELECT {sql_ref} AS kept_out FROM {', '.join(from_items)}{where}"
    else:
        sql = f"SELECT {sql_ref} AS kept_out FROM {path.sql_from}{path.sql_where([])}"
    return BuiltQuery(cypher, sql, {"with"})


def t_distinct(universe: Universe, rng: random.Random) -> BuiltQuery:
    """DISTINCT projection of one endpoint."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    cy_b, sql_b = path.node_ref(1, _name_key(path.node_vars[1][1], universe))
    cypher = f"MATCH {path.cypher_pattern} RETURN DISTINCT {cy_b} AS only_out"
    sql = f"SELECT DISTINCT {sql_b} AS only_out FROM {path.sql_from}{path.sql_where([])}"
    return BuiltQuery(cypher, sql, {"distinct"})


def t_union(universe: Universe, rng: random.Random, bag: bool = False) -> BuiltQuery:
    """Union of two constant filters over the same path shape."""
    edge = rng.choice(_single_edges(universe))
    low = rng.randint(1, 3)
    high = low + rng.randint(1, 3)
    path1 = build_path(universe, [edge], prefix="u")
    path2 = build_path(universe, [edge], prefix="v")
    key = _numeric_key(path1.node_vars[0][1], universe)
    name = _name_key(path1.node_vars[1][1], universe)
    cy_f1, sql_f1 = path1.node_ref(0, key)
    cy_o1, sql_o1 = path1.node_ref(1, name)
    cy_f2, sql_f2 = path2.node_ref(0, key)
    cy_o2, sql_o2 = path2.node_ref(1, name)
    keyword = "UNION ALL" if bag else "UNION"
    cypher = (
        f"MATCH {path1.cypher_pattern} WHERE {cy_f1} = {low} RETURN {cy_o1} AS out_col "
        f"{keyword} "
        f"MATCH {path2.cypher_pattern} WHERE {cy_f2} = {high} RETURN {cy_o2} AS out_col"
    )
    sql = (
        f"SELECT {sql_o1} AS out_col FROM {path1.sql_from}"
        f"{path1.sql_where([f'{sql_f1} = {low}'])} "
        f"{keyword} "
        f"SELECT {sql_o2} AS out_col FROM {path2.sql_from}"
        f"{path2.sql_where([f'{sql_f2} = {high}'])}"
    )
    return BuiltQuery(cypher, sql, {"union"})


def t_head_arith(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Arithmetic in the RETURN list only (deductive-fragment friendly)."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    key = _numeric_key(path.node_vars[1][1], universe)
    cy_v, sql_v = path.node_ref(1, key)
    offset = rng.randint(1, 9)
    cypher = f"MATCH {path.cypher_pattern} RETURN {cy_v} + {offset} AS bumped"
    sql = f"SELECT {sql_v} + {offset} AS bumped FROM {path.sql_from}{path.sql_where([])}"
    return BuiltQuery(cypher, sql, {"headarith"})


def t_agg_count(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Group one endpoint, count paths."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    cy_g, sql_g = path.node_ref(1, _name_key(path.node_vars[1][1], universe))
    cypher = f"MATCH {path.cypher_pattern} RETURN {cy_g} AS grp, Count(*) AS cnt"
    sql = (
        f"SELECT {sql_g} AS grp, COUNT(*) AS cnt FROM {path.sql_from}"
        f"{path.sql_where([])} GROUP BY {sql_g}"
    )
    return BuiltQuery(cypher, sql, {"agg"})


def t_agg_numeric(universe: Universe, rng: random.Random, function: str = "Sum") -> BuiltQuery:
    """SUM/AVG/MIN/MAX of a numeric property grouped by an endpoint."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    cy_g, sql_g = path.node_ref(1, _name_key(path.node_vars[1][1], universe))
    cy_v, sql_v = path.node_ref(0, _numeric_key(path.node_vars[0][1], universe))
    cypher = (
        f"MATCH {path.cypher_pattern} RETURN {cy_g} AS grp, {function}({cy_v}) AS val"
    )
    sql = (
        f"SELECT {sql_g} AS grp, {function.upper()}({sql_v}) AS val "
        f"FROM {path.sql_from}{path.sql_where([])} GROUP BY {sql_g}"
    )
    return BuiltQuery(cypher, sql, {"agg"})


def t_optional(universe: Universe, rng: random.Random) -> BuiltQuery:
    """MATCH one hop + OPTIONAL MATCH a second hop vs chained LEFT JOINs.

    The LEFT JOIN chain (edge table, then endpoint table) is equivalent to
    the one-hop optional pattern *given the induced foreign-key constraints*
    (a matched edge always has its endpoint): exactly the reasoning the
    paper applies to its Appendix-D tutorial example.  Needs a two-hop
    chain; only chainable universes qualify.
    """
    chain = rng.choice(_chains(universe))
    first = build_path(universe, [chain[0]])
    schema = universe.graph_schema
    second_type = schema.edge_type(chain[1])
    mid_var, mid_map = first.node_vars[1]
    last_label = second_type.target
    last_map = universe.node(last_label)
    edge_map = universe.edge(chain[1])
    mid_pk = mid_map.column(schema.node_type(second_type.source).default_key)
    last_pk = last_map.column(schema.node_type(last_label).default_key)
    cy_a, sql_a = first.node_ref(0, _name_key(first.node_vars[0][1], universe))
    name_last = _name_key(last_map, universe)
    cypher = (
        f"MATCH {first.cypher_pattern} "
        f"OPTIONAL MATCH ({mid_var}:{mid_map.label})-[oe:{chain[1]}]->(n2:{last_label}) "
        f"RETURN {cy_a} AS base_out, n2.{name_last} AS opt_out"
    )
    if isinstance(edge_map, EdgeTableMap):
        left_joins = (
            f"LEFT JOIN {edge_map.table} AS oe "
            f"ON oe.{edge_map.src_column} = {mid_var}.{mid_pk} "
            f"LEFT JOIN {last_map.table} AS n2 "
            f"ON oe.{edge_map.tgt_column} = n2.{last_pk}"
        )
    elif edge_map.fk_side == "source":
        left_joins = (
            f"LEFT JOIN {last_map.table} AS n2 "
            f"ON {mid_var}.{edge_map.fk_column} = n2.{last_pk}"
        )
    else:
        left_joins = (
            f"LEFT JOIN {last_map.table} AS n2 "
            f"ON n2.{edge_map.fk_column} = {mid_var}.{mid_pk}"
        )
    base_where = (
        " WHERE " + " AND ".join(first.join_conditions)
        if first.join_conditions
        else ""
    )
    sql = (
        f"SELECT {sql_a} AS base_out, n2.{last_map.column(name_last)} AS opt_out "
        f"FROM {first.sql_from} {left_joins}{base_where}"
    )
    return BuiltQuery(cypher, sql, {"opt"})


def t_orderby(universe: Universe, rng: random.Random) -> BuiltQuery:
    """ORDER BY with a LIMIT, keyed on the node's (unique) identity key.

    Ordering by the primary key makes tied rows *identical* rows, so the
    list-semantics comparison of Definition 4.4's footnote stays
    well-defined regardless of how either engine breaks ties.
    """
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    schema = universe.graph_schema
    node_map = path.node_vars[0][1]
    pk_key = schema.node_type(node_map.label).default_key
    cy_k, sql_k = path.node_ref(0, pk_key)
    cy_n, sql_n = path.node_ref(0, _name_key(node_map, universe))
    limit = rng.randint(2, 8)
    cypher = (
        f"MATCH {path.cypher_pattern} RETURN {cy_n} AS who, {cy_k} AS ord_key "
        f"ORDER BY ord_key DESC LIMIT {limit}"
    )
    sql = (
        f"SELECT {sql_n} AS who, {sql_k} AS ord_key FROM {path.sql_from}"
        f"{path.sql_where([])} ORDER BY ord_key DESC LIMIT {limit}"
    )
    return BuiltQuery(cypher, sql, {"orderby"})


def t_exists(universe: Universe, rng: random.Random) -> BuiltQuery:
    """EXISTS subpattern vs IN-subquery (the Appendix-C idiom)."""
    schema = universe.graph_schema
    eligible = [
        e.label
        for e in schema.edge_types
        if e.source in complete_node_labels(universe)
    ]
    edge = rng.choice(eligible)
    edge_type = schema.edge_type(edge)
    source_map = universe.node(edge_type.source)
    path = build_path(universe, [edge], prefix="x")
    source_var = path.node_vars[0][0]
    pk_key = schema.node_type(edge_type.source).default_key
    name_key = _name_key(source_map, universe)
    pk_col = source_map.column(pk_key)
    sub_path = build_path(universe, [edge], prefix="s")
    sub_src_var = sub_path.node_vars[0][0]
    cypher = (
        f"MATCH ({source_var}:{edge_type.source}) "
        f"WHERE EXISTS {{ MATCH ({source_var}:{edge_type.source})"
        f"{sub_path.cypher_pattern.split(')', 1)[1]} }} "
        f"RETURN {source_var}.{name_key} AS who"
    )
    sub_conditions = [
        c.replace(f"{sub_src_var}.", f"{source_var}__i.") for c in sub_path.join_conditions
    ]
    sub_from = [
        item.replace(f" AS {sub_src_var}", f" AS {source_var}__i")
        for item in sub_path.from_items
    ]
    sql = (
        f"SELECT {source_var}.{name_key and source_map.column(name_key)} AS who "
        f"FROM {source_map.table} AS {source_var} "
        f"WHERE {source_var}.{pk_col} IN ("
        f"SELECT {source_var}__i.{pk_col} FROM {', '.join(sub_from)}"
        + (" WHERE " + " AND ".join(sub_conditions) if sub_conditions else "")
        + ")"
    )
    return BuiltQuery(cypher, sql, {"exists"})


def t_arith_predicate(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Arithmetic inside WHERE (outside the deductive fragment)."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    cy_x, sql_x = path.node_ref(0, _numeric_key(path.node_vars[0][1], universe))
    cy_y, sql_y = path.node_ref(1, _numeric_key(path.node_vars[1][1], universe))
    cy_n, sql_n = path.node_ref(0, _name_key(path.node_vars[0][1], universe))
    bump = rng.randint(1, 4)
    cypher = (
        f"MATCH {path.cypher_pattern} WHERE {cy_x} + {bump} < {cy_y} "
        f"RETURN {cy_n} AS who"
    )
    sql = (
        f"SELECT {sql_n} AS who FROM {path.sql_from}"
        f"{path.sql_where([f'{sql_x} + {bump} < {sql_y}'])}"
    )
    return BuiltQuery(cypher, sql, {"arith"})


def t_implied_conjunct(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Genuinely equivalent, structurally different: ``x < c`` vs
    ``x < c AND x < c'`` with ``c < c'`` — the deductive backend answers
    Unknown (condition multisets differ) exactly like Mediator's failed
    invariant inference."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    cy_x, sql_x = path.node_ref(0, _numeric_key(path.node_vars[0][1], universe))
    cy_n, sql_n = path.node_ref(1, _name_key(path.node_vars[1][1], universe))
    low = rng.randint(2, 5)
    high = low + rng.randint(1, 5)
    cypher = (
        f"MATCH {path.cypher_pattern} WHERE {cy_x} < {low} RETURN {cy_n} AS out_col"
    )
    sql = (
        f"SELECT {sql_n} AS out_col FROM {path.sql_from}"
        f"{path.sql_where([f'{sql_x} < {low}', f'{sql_x} < {high}'])}"
    )
    return BuiltQuery(
        cypher,
        sql,
        {"unknown-by-design"},
        notes="equivalent via implied conjunct; structural proof must fail",
    )


def t_head_identity_arith(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Genuinely equivalent: ``x`` vs ``x + 0`` in the head → Unknown."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    cy_x, sql_x = path.node_ref(0, _numeric_key(path.node_vars[0][1], universe))
    cypher = f"MATCH {path.cypher_pattern} RETURN {cy_x} AS val"
    sql = f"SELECT {sql_x} + 0 AS val FROM {path.sql_from}{path.sql_where([])}"
    return BuiltQuery(
        cypher,
        sql,
        {"unknown-by-design", "headarith"},
        notes="equivalent via x + 0 = x; structural proof must fail",
    )


def t_optional_into(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Bare node MATCH plus an OPTIONAL MATCH pointing *into* it.

    This is the Appendix E example-3 shape: the optional pattern's arrow
    ends at the previously bound variable.  The pair is equivalent; the
    OpenCypherTranspiler baseline mistranslates it (wrong join direction).
    """
    schema = universe.graph_schema
    eligible = [
        e.label
        for e in schema.edge_types
        if isinstance(universe.edge(e.label), EdgeTableMap)
        and e.target in complete_node_labels(universe)
    ]
    edge = rng.choice(eligible)
    edge_type = schema.edge_type(edge)
    edge_map = universe.edge(edge)
    assert isinstance(edge_map, EdgeTableMap)
    target_map = universe.node(edge_type.target)
    source_map = universe.node(edge_type.source)
    target_pk = target_map.column(schema.node_type(edge_type.target).default_key)
    source_pk = source_map.column(schema.node_type(edge_type.source).default_key)
    t_name = _name_key(target_map, universe)
    s_name = _name_key(source_map, universe)
    cypher = (
        f"MATCH (t:{edge_type.target}) "
        f"OPTIONAL MATCH (s:{edge_type.source})-[oe:{edge}]->(t) "
        f"RETURN t.{t_name} AS t_out, s.{s_name} AS s_out"
    )
    sql = (
        f"SELECT t.{target_map.column(t_name)} AS t_out, "
        f"s.{source_map.column(s_name)} AS s_out "
        f"FROM {target_map.table} AS t "
        f"LEFT JOIN {edge_map.table} AS oe ON oe.{edge_map.tgt_column} = t.{target_pk} "
        f"LEFT JOIN {source_map.table} AS s ON oe.{edge_map.src_column} = s.{source_pk}"
    )
    return BuiltQuery(cypher, sql, {"opt", "backwards-optional"})


def t_triple_pattern_in(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Three comma patterns + IN list + IS NOT NULL (App. E example 2 shape).

    Equivalent pair; the baseline emits syntactically invalid SQL for it.
    """
    complete = sorted(complete_node_labels(universe))
    first = complete[0]
    second = complete[-1]
    schema = universe.graph_schema
    first_map = universe.node(first)
    second_map = universe.node(second)
    first_pk = schema.node_type(first).default_key
    second_pk = schema.node_type(second).default_key
    second_num = _numeric_key(second_map, universe)
    first_name = _name_key(first_map, universe)
    low, high = 1, rng.randint(2, 4)
    cypher = (
        f"MATCH (x:{first}), (u:{second}), (v:{second}) "
        f"WHERE x.{first_pk} = u.{second_pk} AND x.{first_pk} = v.{second_pk} "
        f"AND u.{second_num} IN [{low}, {high}] AND v.{second_num} IS NOT NULL "
        f"RETURN DISTINCT x.{first_pk} AS xid, x.{first_name} AS xname"
    )
    sql = (
        f"SELECT DISTINCT x.{first_map.column(first_pk)} AS xid, "
        f"x.{first_map.column(first_name)} AS xname "
        f"FROM {first_map.table} AS x, {second_map.table} AS u, {second_map.table} AS v "
        f"WHERE x.{first_map.column(first_pk)} = u.{second_map.column(second_pk)} "
        f"AND x.{first_map.column(first_pk)} = v.{second_map.column(second_pk)} "
        f"AND u.{second_map.column(second_num)} IN ({low}, {high}) "
        f"AND v.{second_map.column(second_num)} IS NOT NULL"
    )
    return BuiltQuery(cypher, sql, {"multimatch", "inlist", "distinct"})


def t_multimatch_unknown(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Multi-MATCH pair whose SQL carries an implied extra conjunct —
    genuinely equivalent, structural proof fails (Unknown)."""
    return t_multimatch(universe, rng, implied_conjunct=True)


def t_with_unknown(universe: Universe, rng: random.Random) -> BuiltQuery:
    """WITH pipeline whose SQL head adds ``+ 0`` — equivalent, Unknown."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    tgt_var, tgt_map = path.node_vars[1]
    key = _numeric_key(tgt_map, universe)
    _, sql_ref = path.node_ref(1, key)
    cypher = (
        f"MATCH {path.cypher_pattern} WITH {tgt_var} AS kept "
        f"RETURN kept.{key} AS kept_val"
    )
    sql = f"SELECT {sql_ref} + 0 AS kept_val FROM {path.sql_from}{path.sql_where([])}"
    return BuiltQuery(
        cypher,
        sql,
        {"with", "unknown-by-design", "headarith"},
        notes="equivalent via x + 0 = x over a WITH pipeline",
    )


# ---------------------------------------------------------------------------
# Bug templates (planted non-equivalences)
# ---------------------------------------------------------------------------


def b_orderby_direction(universe: Universe, rng: random.Random) -> BuiltQuery:
    """ORDER BY direction flipped on the SQL side (with a LIMIT it bites)."""
    built = t_orderby(universe, rng)
    built.sql_text = built.sql_text.replace("ORDER BY ord_key DESC", "ORDER BY ord_key ASC")
    built.expected_equivalent = False
    built.bug_class = "orderby-direction"
    return built


def b_wrong_constant(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Cypher filters on c, SQL on c+1 (GPT off-by-one bug class)."""
    built = t_scan_filter(universe, rng)
    constant = _first_int(built.sql_text)
    built.sql_text = built.sql_text.replace(f"= {constant}", f"= {constant + 1}", 1)
    built.expected_equivalent = False
    built.bug_class = "wrong-constant"
    return built


def b_missing_distinct(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Cypher deduplicates, SQL forgets DISTINCT."""
    built = t_distinct(universe, rng)
    built.sql_text = built.sql_text.replace("SELECT DISTINCT", "SELECT", 1)
    built.expected_equivalent = False
    built.bug_class = "missing-distinct"
    return built


def b_union_vs_union_all(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Cypher UNION (dedup) vs SQL UNION ALL."""
    built = t_union(universe, rng, bag=False)
    built.sql_text = built.sql_text.replace("UNION", "UNION ALL", 1)
    built.expected_equivalent = False
    built.bug_class = "union-vs-union-all"
    return built


def b_reversed_follow(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Self-loop edge traversed backwards on the SQL side (social only).

    The projection is deliberately *asymmetric* (source name, target age):
    with a symmetric projection the reversal would merely transpose the two
    output columns, which Definition 4.4's column bijection forgives.
    """
    path = build_path(universe, ["FOLLOWS"])
    cy_a, sql_a = path.node_ref(0, "uname")
    cy_b, sql_b = path.node_ref(1, "age")
    cypher = f"MATCH {path.cypher_pattern} RETURN {cy_a} AS src_name, {cy_b} AS dst_age"
    conditions = [
        c.replace(".f_src", ".__tmp__").replace(".f_dst", ".f_src").replace(".__tmp__", ".f_dst")
        for c in path.join_conditions
    ]
    sql = (
        f"SELECT {sql_a} AS src_name, {sql_b} AS dst_age FROM {path.sql_from}"
        f" WHERE {' AND '.join(conditions)}"
    )
    return BuiltQuery(cypher, sql, set(), expected_equivalent=False, bug_class="reversed-edge")


def b_optional_as_inner(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Cypher OPTIONAL MATCH translated as an inner join (drops null rows)."""
    built = t_optional(universe, rng)
    built.sql_text = built.sql_text.replace("LEFT JOIN", "JOIN")
    built.expected_equivalent = False
    built.bug_class = "optional-as-inner"
    return built


def b_double_count(universe: Universe, rng: random.Random) -> BuiltQuery:
    """The motivating-example bug: WITH + re-MATCH double counts paths
    relative to the SQL IN-subquery formulation (Section 2).

    Only edge-table hops can fan out (a merged edge is capped at one per
    carrying row by that table's primary key), so the edge choice is
    restricted accordingly — otherwise the "bug" would not be one.
    """
    candidates = [
        edge_type.label
        for edge_type in universe.graph_schema.edge_types
        if isinstance(universe.edge(edge_type.label), EdgeTableMap)
    ]
    chain = [rng.choice(candidates)]
    schema = universe.graph_schema
    first_label = schema.edge_type(chain[0]).source
    mid_label = schema.edge_type(chain[0]).target
    source_map = universe.node(first_label)
    mid_map = universe.node(mid_label)
    pk_key = schema.node_type(first_label).default_key
    mid_pk_key = schema.node_type(mid_label).default_key
    constant = rng.randint(1, 3)
    forward = build_path(universe, [chain[0]], prefix="f")
    back = build_path(universe, [chain[0]], prefix="g")
    f_src, f_mid = forward.node_vars[0][0], forward.node_vars[1][0]
    g_src, g_mid = back.node_vars[0][0], back.node_vars[1][0]
    back_pattern = back.cypher_pattern.replace(f"({g_mid}:", f"({f_mid}:")
    cy_out = f"{g_src}.{_name_key(source_map, universe)}"
    cypher = (
        f"MATCH {forward.cypher_pattern} WHERE {f_src}.{pk_key} = {constant} "
        f"WITH {f_mid} "
        f"MATCH {back_pattern} "
        f"RETURN {cy_out} AS who, Count(*) AS cnt"
    )
    mid_pk_col = mid_map.column(mid_pk_key)
    src_pk_col = source_map.column(pk_key)
    g_name_col = source_map.column(_name_key(source_map, universe))
    inner_conditions = [
        c for c in forward.join_conditions
    ] + [f"{f_src}.{src_pk_col} = {constant}"]
    outer_conditions = list(back.join_conditions)
    mid_expr = _mid_sql_ref(universe, chain[0], back, mid_map, mid_pk_col)
    inner_mid_expr = _mid_sql_ref(universe, chain[0], forward, mid_map, mid_pk_col)
    sql = (
        f"SELECT {g_src}.{g_name_col} AS who, COUNT(*) AS cnt "
        f"FROM {', '.join(back.from_items)} "
        f"WHERE {' AND '.join(outer_conditions)} AND {mid_expr} IN ("
        f"SELECT {inner_mid_expr} FROM {', '.join(forward.from_items)} "
        f"WHERE {' AND '.join(inner_conditions)}) "
        f"GROUP BY {g_src}.{g_name_col}"
    )
    return BuiltQuery(
        cypher,
        sql,
        {"agg", "with", "exists"},
        expected_equivalent=False,
        bug_class="double-count",
        notes="WITH pipeline re-matches and multiplies counts (paper Section 2)",
    )


def _mid_sql_ref(universe, edge_label, path, mid_map, mid_pk_col) -> str:
    """SQL reference to the shared middle node's key within a one-hop path."""
    mid_var = path.node_vars[1][0]
    return f"{mid_var}.{mid_pk_col}"


def b_wrong_group_key(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Aggregation grouped by a different column than the Cypher query."""
    edge = rng.choice(_single_edges(universe))
    path = build_path(universe, [edge])
    cy_g, sql_g = path.node_ref(1, _name_key(path.node_vars[1][1], universe))
    _, sql_other = path.node_ref(1, _numeric_key(path.node_vars[1][1], universe))
    cypher = f"MATCH {path.cypher_pattern} RETURN {cy_g} AS grp, Count(*) AS cnt"
    sql = (
        f"SELECT {sql_g} AS grp, COUNT(*) AS cnt FROM {path.sql_from}"
        f"{path.sql_where([])} GROUP BY {sql_other}"
    )
    return BuiltQuery(
        cypher, sql, {"agg"}, expected_equivalent=False, bug_class="wrong-group-key"
    )


def b_count_star_vs_nullable(universe: Universe, rng: random.Random) -> BuiltQuery:
    """Count(*) vs COUNT(nullable column) after an optional match."""
    built = t_optional(universe, rng)
    # Replace projection with counts: Cypher counts rows, SQL counts the
    # nullable optional column — they differ when the optional side is null.
    cypher_lines = built.cypher_text.rsplit("RETURN", 1)[0]
    sql_head, sql_tail = built.sql_text.split(" FROM ", 1)
    base_out = sql_head.split("SELECT ", 1)[1].split(" AS base_out")[0]
    opt_out = sql_head.split(", ", 1)[1].split(" AS opt_out")[0]
    cy_base = built.cypher_text.rsplit("RETURN ", 1)[1].split(" AS base_out")[0]
    cypher = f"{cypher_lines}RETURN {cy_base} AS grp, Count(*) AS cnt"
    sql = (
        f"SELECT {base_out} AS grp, COUNT({opt_out}) AS cnt FROM {sql_tail} "
        f"GROUP BY {base_out}"
    )
    return BuiltQuery(
        cypher,
        sql,
        {"agg", "opt"},
        expected_equivalent=False,
        bug_class="count-star-vs-column",
    )


def _first_int(text: str) -> int:
    import re

    match = re.search(r"= (\d+)", text)
    assert match is not None
    return int(match.group(1))
